"""Tests for datasets, loaders and transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Compose, DataLoader, MaskResistDataset, RandomFlip, RandomRotate90


def make_dataset(n=10, size=16, pixel_size=8.0):
    rng = np.random.default_rng(0)
    masks = (rng.random((n, size, size)) > 0.8).astype(float)
    resists = (rng.random((n, size, size)) > 0.8).astype(float)
    return MaskResistDataset(masks, resists, name="toy", pixel_size=pixel_size)


def test_dataset_adds_channel_axis():
    ds = make_dataset()
    assert ds.masks.shape == (10, 1, 16, 16)
    assert ds.resists.shape == (10, 1, 16, 16)
    assert len(ds) == 10


def test_dataset_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        MaskResistDataset(np.zeros((3, 8, 8)), np.zeros((4, 8, 8)))


def test_dataset_indexing_returns_pairs():
    ds = make_dataset()
    mask, resist = ds[3]
    assert mask.shape == (1, 16, 16)
    np.testing.assert_allclose(mask, ds.masks[3])
    np.testing.assert_allclose(resist, ds.resists[3])


def test_tile_area_computation():
    ds = make_dataset(size=128, pixel_size=8.0)   # 1024 nm tile
    assert ds.tile_area_um2 == pytest.approx(1.024**2)


def test_split_partitions_dataset():
    ds = make_dataset(n=20)
    train, test = ds.split(0.75, rng=np.random.default_rng(1))
    assert len(train) == 15 and len(test) == 5
    with pytest.raises(ValueError):
        ds.split(1.5)


def test_dataset_save_load_roundtrip(tmp_path):
    ds = make_dataset()
    path = ds.save(tmp_path / "toy.npz")
    loaded = MaskResistDataset.load(path)
    np.testing.assert_allclose(loaded.masks, ds.masks)
    np.testing.assert_allclose(loaded.resists, ds.resists)
    assert loaded.name == "toy"
    assert loaded.pixel_size == 8.0


def test_dataloader_batches_cover_dataset():
    ds = make_dataset(n=10)
    loader = DataLoader(ds, batch_size=4, shuffle=False)
    batches = list(loader)
    assert len(loader) == 3
    assert [b[0].shape[0] for b in batches] == [4, 4, 2]
    stacked = np.concatenate([b[0] for b in batches])
    np.testing.assert_allclose(stacked, ds.masks)


def test_dataloader_drop_last():
    loader = DataLoader(make_dataset(n=10), batch_size=4, shuffle=False, drop_last=True)
    assert len(loader) == 2
    assert all(batch[0].shape[0] == 4 for batch in loader)


def test_dataloader_shuffles_between_epochs():
    ds = make_dataset(n=8)
    loader = DataLoader(ds, batch_size=8, shuffle=True, rng=np.random.default_rng(3))
    first = next(iter(loader))[0]
    second = next(iter(loader))[0]
    assert not np.allclose(first, second)


def test_dataloader_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        DataLoader(make_dataset(), batch_size=0)


def test_random_flip_keeps_pairs_aligned():
    ds = make_dataset(n=4)
    transform = RandomFlip(probability=1.0)
    masks, resists = transform(ds.masks, ds.resists, np.random.default_rng(0))
    # Flipping both H and V with probability 1 is a deterministic transform.
    np.testing.assert_allclose(masks, ds.masks[:, :, ::-1, ::-1])
    np.testing.assert_allclose(resists, ds.resists[:, :, ::-1, ::-1])


def test_random_rotate_preserves_content():
    ds = make_dataset(n=4)
    masks, resists = RandomRotate90()(ds.masks, ds.resists, np.random.default_rng(0))
    assert masks.shape == ds.masks.shape
    np.testing.assert_allclose(masks.sum(), ds.masks.sum())
    np.testing.assert_allclose(resists.sum(), ds.resists.sum())


def test_compose_applies_all():
    ds = make_dataset(n=2)
    transform = Compose(RandomFlip(probability=1.0), RandomFlip(probability=1.0))
    masks, _ = transform(ds.masks, ds.resists, np.random.default_rng(0))
    # Two full flips cancel out.
    np.testing.assert_allclose(masks, ds.masks)
