"""Tests for the synthetic benchmark dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BenchmarkConfig, build_benchmark, build_large_tile_benchmark
from repro.litho import LithoSimulator


@pytest.fixture(scope="module")
def simulator():
    return LithoSimulator(pixel_size=16.0, num_kernels=8, kernel_support=25)


@pytest.fixture(scope="module")
def small_config():
    return BenchmarkConfig(
        benchmark="ispd2019", num_train=4, num_test=2, image_size=64, pixel_size=16.0, seed=3
    )


@pytest.fixture(scope="module")
def bench_data(small_config, simulator):
    return build_benchmark(small_config, simulator)


def test_benchmark_split_sizes(bench_data, small_config):
    assert len(bench_data.train) == small_config.num_train
    assert len(bench_data.test) == small_config.num_test
    assert bench_data.train.image_size == small_config.image_size
    assert bench_data.name == "ispd2019"


def test_benchmark_masks_binary_and_nonempty(bench_data):
    masks = bench_data.train.masks
    assert set(np.unique(masks)).issubset({0.0, 1.0})
    assert masks.sum(axis=(1, 2, 3)).min() > 0


def test_benchmark_resists_are_printable_labels(bench_data):
    resists = bench_data.train.resists
    assert set(np.unique(resists)).issubset({0.0, 1.0})
    # At least some tiles print something (rule-based OPC upsizes the vias).
    assert resists.sum() > 0


def test_benchmark_is_reproducible(small_config, simulator):
    again = build_benchmark(small_config, simulator)
    first = build_benchmark(small_config, simulator)
    np.testing.assert_allclose(first.train.masks, again.train.masks)
    np.testing.assert_allclose(first.test.resists, again.test.resists)


def test_benchmark_rejects_pixel_size_mismatch(small_config):
    wrong = LithoSimulator(pixel_size=8.0, num_kernels=8, kernel_support=25)
    with pytest.raises(ValueError):
        build_benchmark(small_config, wrong)


def test_benchmark_opc_mode_none(simulator):
    config = BenchmarkConfig(
        benchmark="ispd2019", num_train=2, num_test=1, image_size=64, pixel_size=16.0,
        opc_mode="none", use_srafs=False,
    )
    data = build_benchmark(config, simulator)
    # Without correction the raw via masks barely print.
    assert data.train.masks.sum() > 0


def test_benchmark_unknown_opc_mode(simulator):
    config = BenchmarkConfig(opc_mode="bogus", image_size=64, pixel_size=16.0, num_train=1, num_test=1)
    with pytest.raises(ValueError):
        build_benchmark(config, simulator)


def test_metal_benchmark_differs_from_via(simulator):
    via = build_benchmark(
        BenchmarkConfig(benchmark="ispd2019", num_train=2, num_test=1, image_size=64, pixel_size=16.0),
        simulator,
    )
    metal = build_benchmark(
        BenchmarkConfig(benchmark="iccad2013", num_train=2, num_test=1, image_size=64, pixel_size=16.0),
        simulator,
    )
    # Metal tiles carry long wires: much higher pattern density than via tiles.
    assert metal.train.masks.mean() > via.train.masks.mean()


def test_large_tile_benchmark_scale(simulator):
    config = BenchmarkConfig(
        benchmark="ispd2019", num_train=1, num_test=1, image_size=64, pixel_size=16.0, seed=5
    )
    large = build_large_tile_benchmark(config, simulator, num_tiles=2, scale=2)
    assert len(large) == 2
    assert large.image_size == 128
    assert large.masks.sum() > 0
    assert large.tile_area_um2 == pytest.approx((128 * 16.0 / 1000.0) ** 2)
