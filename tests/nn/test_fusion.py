"""Equivalence suite for the fused inference graph compiler.

The contract pinned here: for **every** model in the registry (and for every
chain geometry the models use — odd sizes, stride/padding corners, batch
sizes 1/2/4), the compiled fused graph produces the same outputs as the
unfused eval path to within 1e-12, while the training path of the source
model is left bit-for-bit untouched by compilation.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

from repro import nn
from repro.core import DOINN, DOINNConfig
from repro.core.paths import VGGBlock
from repro.nn import (
    BatchNorm2d,
    CompiledChain,
    Conv2d,
    FusedInferenceGraph,
    FusionFallbackWarning,
    Identity,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    compile_model,
    eval_mode,
    no_grad,
)
from repro.nn import functional as F
from repro.nn.backends import BackendWorkspace, fft_conv_transpose_bn_act, get_backend
from repro.nn.fusion import FusedConvBNAct, FusedConvTranspose, build_chain

TOL = dict(rtol=1e-12, atol=1e-12)


def _eval_forward(model, x: np.ndarray) -> np.ndarray:
    with eval_mode(model), no_grad():
        return model(Tensor(x)).numpy()


def _randomize_bn(bn: BatchNorm2d, rng: np.random.Generator) -> None:
    """Non-trivial eval statistics so the fold is actually exercised."""
    bn.gamma.data = rng.uniform(0.5, 1.5, bn.num_features)
    bn.beta.data = rng.uniform(-0.5, 0.5, bn.num_features)
    bn.running_mean[...] = rng.uniform(-1.0, 1.0, bn.num_features)
    bn.running_var[...] = rng.uniform(0.25, 2.0, bn.num_features)


# --------------------------------------------------------------------- #
# conv_bn_act kernel vs the unfused three-pass path
# --------------------------------------------------------------------- #
# (kernel, stride, padding, activation) — stride/padding corners plus every
# activation the fused graphs emit.
_KERNEL_CONFIGS = [
    (3, 1, 1, "leaky_relu"),
    (3, 1, 0, "relu"),
    (4, 2, 1, "leaky_relu"),
    (3, 2, 0, "tanh"),
    (1, 1, 0, "identity"),
    (2, 2, 1, "relu"),
]


@pytest.mark.parametrize("k,stride,padding,activation", _KERNEL_CONFIGS)
@pytest.mark.parametrize("size", [(9, 9), (11, 7)])  # odd / rectangular sizes
def test_conv_bn_act_matches_unfused_passes(rng, k, stride, padding, activation, size):
    h, w = size
    x = rng.standard_normal((2, 3, h, w))
    conv = Conv2d(3, 5, k, stride=stride, padding=padding, rng=rng)
    bn = BatchNorm2d(5)
    _randomize_bn(bn, rng)
    act = {"leaky_relu": LeakyReLU(0.2), "relu": ReLU(), "tanh": Tanh(), "identity": None}[activation]

    op = FusedConvBNAct.from_modules(conv, bn, act)
    fused = F.conv_bn_act(
        x, op.weight, op.bias, stride=stride, padding=padding,
        activation=op.activation, negative_slope=op.negative_slope,
    )

    with eval_mode(bn), no_grad():
        ref = bn(F.conv2d(Tensor(x), conv.weight, conv.bias, stride=stride, padding=padding))
        if act is not None:
            ref = act(ref)
    np.testing.assert_allclose(fused, ref.numpy(), **TOL)


@pytest.mark.parametrize("batch", [1, 2, 4])
def test_conv_bn_act_without_bn_matches_conv2d(rng, batch):
    x = rng.standard_normal((batch, 2, 13, 13))
    conv = Conv2d(2, 4, 3, stride=1, padding=1, rng=rng)
    fused = F.conv_bn_act(x, conv.weight.data, conv.bias.data, stride=1, padding=1)
    with no_grad():
        ref = F.conv2d(Tensor(x), conv.weight, conv.bias, stride=1, padding=1).numpy()
    np.testing.assert_allclose(fused, ref, **TOL)


def test_conv_bn_act_output_padding_emits_zero_border(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, 3, 3))
    plain = F.conv_bn_act(x, w, None, stride=1, padding=1)
    padded = F.conv_bn_act(x, w, None, stride=1, padding=1, output_padding=2)
    assert padded.shape == (2, 4, 12, 12)
    np.testing.assert_array_equal(padded[:, :, 2:-2, 2:-2], plain)
    border = padded.copy()
    border[:, :, 2:-2, 2:-2] = 0.0
    assert not border.any()


def test_conv_bn_act_consumes_prepadded_input(rng):
    """input_is_padded skips the pad: op B reads op A's padded emission."""
    x = rng.standard_normal((1, 2, 10, 10))
    w1 = rng.standard_normal((3, 2, 3, 3))
    w2 = rng.standard_normal((5, 3, 3, 3))
    mid_padded = F.conv_bn_act(x, w1, None, stride=1, padding=1, output_padding=1)
    chained = F.conv_bn_act(mid_padded, w2, None, stride=1, padding=1, input_is_padded=True)
    mid = F.conv_bn_act(x, w1, None, stride=1, padding=1)
    ref = F.conv_bn_act(mid, w2, None, stride=1, padding=1)
    np.testing.assert_array_equal(chained, ref)


def test_conv_bn_act_validates_arguments(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    w = rng.standard_normal((3, 2, 3, 3))
    with pytest.raises(ValueError, match="activation"):
        F.conv_bn_act(x, w, activation="softmax")
    with pytest.raises(ValueError, match="negative_slope"):
        F.conv_bn_act(x, w, activation="leaky_relu", negative_slope=1.5)
    with pytest.raises(ValueError, match="channels"):
        F.conv_bn_act(x, rng.standard_normal((3, 4, 3, 3)))
    with pytest.raises(ValueError, match="out buffer"):
        F.conv_bn_act(x, w, padding=1, out=np.zeros((1, 3, 4, 4)))


# --------------------------------------------------------------------- #
# conv_transpose_bn_act kernel vs the unfused path
# --------------------------------------------------------------------- #
# (kernel, stride, padding, activation): the DOINN dconv geometry (4/2/1,
# overlapping windows), the UNet up-path geometry (2/2/0, non-overlapping
# fast path), stride-1 overlap, a gapped stride > k corner, and a crop with
# non-overlapping windows.
_DECONV_CONFIGS = [
    (4, 2, 1, "leaky_relu"),
    (2, 2, 0, "identity"),
    (3, 1, 1, "relu"),
    (2, 3, 0, "tanh"),
    (2, 2, 1, "relu"),
]


@pytest.mark.parametrize("k,stride,padding,activation", _DECONV_CONFIGS)
@pytest.mark.parametrize("size", [(8, 8), (7, 9)])  # even / odd-rectangular
def test_conv_transpose_bn_act_matches_unfused_passes(rng, k, stride, padding, activation, size):
    h, w = size
    x = rng.standard_normal((2, 3, h, w))
    deconv = nn.ConvTranspose2d(3, 5, k, stride=stride, padding=padding, rng=rng)
    bn = BatchNorm2d(5)
    _randomize_bn(bn, rng)
    act = {"leaky_relu": LeakyReLU(0.2), "relu": ReLU(), "tanh": Tanh(), "identity": None}[activation]

    op = FusedConvTranspose.from_modules(deconv, bn, act)
    fused = F.conv_transpose_bn_act(
        x, op.weight, op.bias, stride=stride, padding=padding,
        activation=op.activation, negative_slope=op.negative_slope,
    )

    with eval_mode(bn), no_grad():
        ref = bn(F.conv_transpose2d(Tensor(x), deconv.weight, deconv.bias, stride=stride, padding=padding))
        if act is not None:
            ref = act(ref)
    np.testing.assert_allclose(fused, ref.numpy(), **TOL)


@pytest.mark.parametrize("batch", [1, 2, 4])
def test_conv_transpose_bn_act_without_bn_matches_conv_transpose2d(rng, batch):
    x = rng.standard_normal((batch, 3, 9, 9))
    deconv = nn.ConvTranspose2d(3, 2, 4, stride=2, padding=1, rng=rng)
    fused = F.conv_transpose_bn_act(x, deconv.weight.data, deconv.bias.data, stride=2, padding=1)
    with no_grad():
        ref = F.conv_transpose2d(Tensor(x), deconv.weight, deconv.bias, stride=2, padding=1).numpy()
    np.testing.assert_allclose(fused, ref, **TOL)


@pytest.mark.parametrize("k,stride,padding", [(4, 2, 1), (2, 2, 0)])
def test_conv_transpose_bn_act_output_padding_emits_zero_border(rng, k, stride, padding):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((3, 4, k, k))
    plain = F.conv_transpose_bn_act(x, w, None, stride=stride, padding=padding)
    padded = F.conv_transpose_bn_act(x, w, None, stride=stride, padding=padding, output_padding=2)
    assert padded.shape == (2, 4, plain.shape[2] + 4, plain.shape[3] + 4)
    np.testing.assert_array_equal(padded[:, :, 2:-2, 2:-2], plain)
    border = padded.copy()
    border[:, :, 2:-2, 2:-2] = 0.0
    assert not border.any()


def test_conv_transpose_bn_act_feeds_input_is_padded_conv(rng):
    """The crop-fold handshake: a deconv's bordered emission is consumed
    pad-free by the following conv exactly as a separate crop + pad would be."""
    x = rng.standard_normal((2, 3, 8, 8))
    wd = rng.standard_normal((3, 4, 4, 4))
    wc = rng.standard_normal((5, 4, 3, 3))
    mid_padded = F.conv_transpose_bn_act(x, wd, None, stride=2, padding=1, output_padding=1)
    chained = F.conv_bn_act(mid_padded, wc, None, stride=1, padding=1, input_is_padded=True)
    mid = F.conv_transpose_bn_act(x, wd, None, stride=2, padding=1)
    ref = F.conv_bn_act(mid, wc, None, stride=1, padding=1)
    np.testing.assert_array_equal(chained, ref)


def test_conv_transpose_bn_act_validates_arguments(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    w = rng.standard_normal((2, 3, 4, 4))
    with pytest.raises(ValueError, match="activation"):
        F.conv_transpose_bn_act(x, w, activation="softmax")
    with pytest.raises(ValueError, match="negative_slope"):
        F.conv_transpose_bn_act(x, w, activation="leaky_relu", negative_slope=1.5)
    with pytest.raises(ValueError, match="channels"):
        F.conv_transpose_bn_act(x, rng.standard_normal((3, 2, 4, 4)))
    with pytest.raises(ValueError, match="out buffer"):
        F.conv_transpose_bn_act(x, w, stride=2, padding=1, out=np.zeros((1, 3, 4, 4)))
    with pytest.raises(ValueError, match="scatter buffer"):
        F.conv_transpose_bn_act(x, w, stride=2, padding=1, scatter=np.zeros((3, 2, 2)))


def test_fused_conv_transpose_folds_bn_along_output_axis(rng):
    """The transposed weight layout is (C_in, C_out, kh, kw): the fold must
    scale axis 1, not axis 0 (they differ whenever C_in != C_out)."""
    deconv = nn.ConvTranspose2d(3, 5, 2, stride=2, rng=rng)
    bn = BatchNorm2d(5)
    _randomize_bn(bn, rng)
    op = FusedConvTranspose.from_modules(deconv, bn, None)
    scale, shift = bn.fold_inference_affine()
    np.testing.assert_allclose(op.weight, deconv.weight.data * scale[None, :, None, None], **TOL)
    np.testing.assert_allclose(op.bias, deconv.bias.data * scale + shift, **TOL)
    with pytest.raises(ValueError, match="cannot fold"):
        FusedConvTranspose.from_modules(deconv, BatchNorm2d(4), None)
    with pytest.raises(TypeError, match="ConvTranspose2d"):
        FusedConvTranspose.from_modules(Conv2d(3, 5, 3, rng=rng), None, None)


def test_fold_inference_affine_matches_eval_batchnorm(rng):
    bn = BatchNorm2d(4)
    _randomize_bn(bn, rng)
    x = rng.standard_normal((2, 4, 5, 5))
    scale, shift = bn.fold_inference_affine()
    with eval_mode(bn), no_grad():
        ref = bn(Tensor(x)).numpy()
    np.testing.assert_allclose(
        x * scale.reshape(1, 4, 1, 1) + shift.reshape(1, 4, 1, 1), ref, **TOL
    )


# --------------------------------------------------------------------- #
# Fused chains (pad-once buffer cache)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("size", [(8, 8), (9, 13), (17, 5)])
@pytest.mark.parametrize("batch", [1, 2, 4])
def test_vgg_chain_matches_block(rng, size, batch):
    block = VGGBlock(2, 4, rng=rng)
    _randomize_bn(block.bn1, rng)
    _randomize_bn(block.bn2, rng)
    x = rng.standard_normal((batch, 2, *size))
    chain = build_chain(block.fusible_chain(), label="vgg")
    np.testing.assert_allclose(chain.run(x), _eval_forward(block, x), **TOL)


def test_fused_chain_scratch_buffers_are_reused(rng):
    block = VGGBlock(2, 3, rng=rng)
    chain = build_chain(block.fusible_chain())
    x = rng.standard_normal((2, 2, 8, 8))
    first = chain.run(x)
    buffers = {key: id(buf) for key, buf in chain._scratch.items()}
    assert buffers  # the pad-once cache is in use
    second = chain.run(x)
    assert {key: id(buf) for key, buf in chain._scratch.items()} == buffers
    np.testing.assert_array_equal(first, second)
    assert first is not second  # the caller-facing output is always fresh


def test_fused_chain_scratch_cache_is_bounded(rng):
    """Many distinct geometries cannot grow the buffer cache without bound."""
    block = VGGBlock(2, 3, rng=rng)
    chain = build_chain(block.fusible_chain())
    for size in range(8, 8 + chain.MAX_CACHED_BUFFERS):
        x = rng.standard_normal((1, 2, size, size))
        np.testing.assert_allclose(chain.run(x), _eval_forward(block, x), **TOL)
    assert len(chain._scratch) <= chain.MAX_CACHED_BUFFERS
    # And the reset does not corrupt results for a geometry seen before.
    x = rng.standard_normal((1, 2, 8, 8))
    np.testing.assert_allclose(chain.run(x), _eval_forward(block, x), **TOL)


def test_fused_chain_pickles_without_scratch(rng):
    block = VGGBlock(2, 3, rng=rng)
    chain = build_chain(block.fusible_chain())
    x = rng.standard_normal((1, 2, 8, 8))
    expected = chain.run(x)
    clone = pickle.loads(pickle.dumps(chain))
    assert clone._scratch == {}
    np.testing.assert_array_equal(clone.run(x), expected)


# --------------------------------------------------------------------- #
# Mixed chains: transposed convolutions composed with convolutions
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("batch", [1, 2, 4])
def test_deconv_vgg_chain_matches_modules(rng, batch):
    """The DOINN decoder-stage shape: dconv (4x4 s2 p1) -> VGG block."""
    deconv = nn.ConvTranspose2d(6, 4, 4, stride=2, padding=1, rng=rng)
    block = VGGBlock(4, 4, rng=rng)
    _randomize_bn(block.bn1, rng)
    _randomize_bn(block.bn2, rng)
    chain = build_chain(
        [(deconv, None, None), (block.conv1, block.bn1, block.act), (block.conv2, block.bn2, block.act)],
        label="dconv+vgg",
    )
    x = rng.standard_normal((batch, 6, 9, 7))
    with eval_mode(block), no_grad():
        ref = block(deconv(Tensor(x))).numpy()
    np.testing.assert_allclose(chain.run(x), ref, **TOL)
    # Run twice: the scatter scratch and bordered buffers are reused.
    np.testing.assert_allclose(chain.run(x), ref, **TOL)


def test_conv_conv_deconv_chain_matches_modules(rng):
    """The UNet bottleneck->first-up shape: conv -> conv -> dconv (2x2 s2)."""
    conv1 = Conv2d(3, 4, 3, padding=1, rng=rng)
    bn1 = BatchNorm2d(4)
    conv2 = Conv2d(4, 4, 3, padding=1, rng=rng)
    bn2 = BatchNorm2d(4)
    relu = ReLU()
    deconv = nn.ConvTranspose2d(4, 2, 2, stride=2, rng=rng)
    _randomize_bn(bn1, rng)
    _randomize_bn(bn2, rng)
    chain = build_chain(
        [(conv1, bn1, relu), (conv2, bn2, relu), (deconv, None, None)], label="bottleneck+up"
    )
    x = rng.standard_normal((2, 3, 8, 8))
    with eval_mode(bn1), eval_mode(bn2), no_grad():
        mid = relu(bn2(conv2(relu(bn1(conv1(Tensor(x)))))))
        ref = deconv(mid).numpy()
    np.testing.assert_allclose(chain.run(x), ref, **TOL)


def test_deconv_chain_with_folded_bn_and_activation(rng):
    """A dconv -> BN -> LeakyReLU step folds and chains like a conv step."""
    deconv = nn.ConvTranspose2d(3, 4, 4, stride=2, padding=1, rng=rng)
    bn = BatchNorm2d(4)
    act = LeakyReLU(0.2)
    _randomize_bn(bn, rng)
    out_conv = Conv2d(4, 1, 3, padding=1, rng=rng)
    chain = build_chain([(deconv, bn, act), (out_conv, None, None)])
    x = rng.standard_normal((2, 3, 8, 8))
    with eval_mode(bn), no_grad():
        ref = out_conv(act(bn(deconv(Tensor(x))))).numpy()
    np.testing.assert_allclose(chain.run(x), ref, **TOL)


def test_fused_chain_alternating_batch_sizes(rng):
    """Satellite regression: one chain serving interleaved batch sizes (the
    ragged final shards of streamed tile sweeps) must never cross-contaminate
    its cached buffers — every call matches a fresh-chain run of the same
    batch, whatever N came before it."""
    deconv = nn.ConvTranspose2d(3, 4, 4, stride=2, padding=1, rng=rng)
    block = VGGBlock(4, 4, rng=rng)
    _randomize_bn(block.bn1, rng)
    _randomize_bn(block.bn2, rng)
    steps = [(deconv, None, None), (block.conv1, block.bn1, block.act), (block.conv2, block.bn2, block.act)]
    chain = build_chain(steps)
    batches = {n: rng.standard_normal((n, 3, 8, 8)) for n in (4, 1, 3, 2)}
    expected = {n: build_chain(steps).run(x) for n, x in batches.items()}
    for n in (4, 1, 3, 4, 2, 1, 3, 4):
        np.testing.assert_array_equal(chain.run(batches[n]), expected[n], err_msg=f"N={n}")


def test_fused_chain_scratch_keys_are_namespaced(rng):
    """Bordered output buffers and the (fully-rewritten, borderless) scatter
    scratch of one op index must live under distinct cache keys."""
    deconv = nn.ConvTranspose2d(2, 3, 4, stride=2, padding=1, rng=rng)
    conv = Conv2d(3, 1, 3, padding=1, rng=rng)
    chain = build_chain([(deconv, None, None), (conv, None, None)])
    chain.run(rng.standard_normal((1, 2, 8, 8)))
    # No entry pad (a deconv consumes borderless input): the deconv's bordered
    # output buffer and its scatter image, nothing else — in separate families.
    families = {key[0] for key in chain._scratch}
    assert families == {"out", "scatter"}


def test_sequential_fusion_merges_conv_runs(rng):
    net = Sequential(
        Conv2d(1, 3, 3, padding=1, rng=rng),
        BatchNorm2d(3),
        LeakyReLU(0.2),
        Conv2d(3, 3, 3, padding=1, rng=rng),
        BatchNorm2d(3),
        ReLU(),
        Conv2d(3, 1, 1, rng=rng),
        Tanh(),
    )
    for module in net:
        if isinstance(module, BatchNorm2d):
            _randomize_bn(module, rng)
    x = rng.standard_normal((2, 1, 11, 11))
    graph = compile_model(net)
    # The whole Sequential collapses to one fused chain of three conv ops.
    assert len(graph.chains) == 1
    assert graph.num_fused_ops == 3
    compiled_children = list(graph.module)
    assert isinstance(compiled_children[0], CompiledChain)
    assert all(isinstance(m, Identity) for m in compiled_children[1:])
    with no_grad():
        np.testing.assert_allclose(graph(Tensor(x)).numpy(), _eval_forward(net, x), **TOL)


def test_sequential_fusion_merges_deconv_runs(rng):
    """A Sequential mixing convs and transposed convs fuses as one chain."""
    net = Sequential(
        Conv2d(1, 3, 3, padding=1, rng=rng),
        BatchNorm2d(3),
        LeakyReLU(0.2),
        nn.ConvTranspose2d(3, 3, 2, stride=2, rng=rng),
        ReLU(),
        Conv2d(3, 1, 3, padding=1, rng=rng),
        Tanh(),
    )
    for module in net:
        if isinstance(module, BatchNorm2d):
            _randomize_bn(module, rng)
    x = rng.standard_normal((2, 1, 9, 9))
    graph = compile_model(net)
    assert len(graph.chains) == 1
    assert graph.num_fused_ops == 3
    assert any(isinstance(op, FusedConvTranspose) for op in graph.chains[0].ops)
    with no_grad():
        np.testing.assert_allclose(graph(Tensor(x)).numpy(), _eval_forward(net, x), **TOL)


def test_sequential_fusion_stops_at_unfusible_modules(rng):
    net = Sequential(
        Conv2d(1, 2, 3, padding=1, rng=rng),
        Sigmoid(),  # no fusion metadata: breaks the run
        Conv2d(2, 1, 3, padding=1, rng=rng),
    )
    x = rng.standard_normal((1, 1, 9, 9))
    graph = compile_model(net)
    assert len(graph.chains) == 2  # two single-conv chains around the sigmoid
    assert isinstance(list(graph.module)[1], Sigmoid)
    with no_grad():
        np.testing.assert_allclose(graph(Tensor(x)).numpy(), _eval_forward(net, x), **TOL)


# --------------------------------------------------------------------- #
# Whole-model compilation: every registry model
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("batch", [1, 2, 4])
def test_compiled_model_matches_eval_forward(zoo_model, rng, batch):
    name, model = zoo_model
    x = rng.random((batch, 1, 32, 32))
    graph = compile_model(model)
    with no_grad():
        fused = graph(Tensor(x)).numpy()
    np.testing.assert_allclose(fused, _eval_forward(model, x), **TOL)


def test_compiled_model_declares_fused_chains(zoo_model):
    name, model = zoo_model
    graph = compile_model(model)
    assert isinstance(graph, FusedInferenceGraph)
    assert graph.source_name == type(model).__name__
    assert len(graph.chains) > 0, f"{name} declared no fusible chains"
    assert graph.num_fused_ops >= len(graph.chains)


def test_compile_is_idempotent(tiny_model_factory):
    graph = compile_model(tiny_model_factory("unet"))
    assert compile_model(graph) is graph
    with pytest.raises(TypeError):
        compile_model(object())


@pytest.mark.parametrize("row", [1, 2, 3, 4])
def test_doinn_ablation_rows_compile(rng, row):
    """The Table 3 ablations cover use_lp/use_skips/use_refine corners."""
    model = DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2).ablation(row))
    x = rng.random((2, 1, 32, 32))
    graph = compile_model(model)
    with no_grad():
        np.testing.assert_allclose(graph(Tensor(x)).numpy(), _eval_forward(model, x), **TOL)


def test_compiled_graph_proxies_doinn_stitching_hooks(tiny_model_factory):
    graph = compile_model(tiny_model_factory("doinn"))
    assert graph.config.pool_factor == 8
    assert graph.global_perception is graph.module.global_perception
    assert graph.reconstruction is graph.module.reconstruction
    unet_graph = compile_model(tiny_model_factory("unet"))
    assert not hasattr(unet_graph, "global_perception")


def test_compiled_model_pickle_round_trip(tiny_model_factory, rng):
    graph = compile_model(tiny_model_factory("damo-dls"))
    x = rng.random((2, 1, 32, 32))
    clone = pickle.loads(pickle.dumps(graph))
    with no_grad():
        np.testing.assert_array_equal(clone(Tensor(x)).numpy(), graph(Tensor(x)).numpy())


# --------------------------------------------------------------------- #
# Inference-only guards
# --------------------------------------------------------------------- #
def test_compiled_graph_rejects_training_mode(tiny_model_factory, rng):
    graph = compile_model(tiny_model_factory("unet"))
    graph.train()
    with pytest.raises(RuntimeError, match="eval mode"), no_grad():
        graph(Tensor(rng.random((1, 1, 32, 32))))
    graph.eval()
    with no_grad():
        graph(Tensor(rng.random((1, 1, 32, 32))))  # recovers after .eval()


def test_compiled_graph_rejects_autograd_inputs(tiny_model_factory, rng):
    graph = compile_model(tiny_model_factory("fno"))
    x = Tensor(rng.random((1, 1, 32, 32)), requires_grad=True)
    with pytest.raises(RuntimeError, match="autograd"):
        graph(x)
    with no_grad():
        graph(x)  # fine once gradient tracking is off


# --------------------------------------------------------------------- #
# The source model is untouched (gradient pins, state-dict round trips)
# --------------------------------------------------------------------- #
def test_compile_does_not_mutate_source_model(zoo_model, rng):
    name, model = zoo_model
    x = rng.random((2, 1, 32, 32))
    before_state = model.state_dict()
    before_out = _eval_forward(model, x)
    before_training = [m.training for m in model.modules()]
    compile_model(model)
    assert [m.training for m in model.modules()] == before_training
    after_state = model.state_dict()
    assert before_state.keys() == after_state.keys()
    for key in before_state:
        np.testing.assert_array_equal(before_state[key], after_state[key])
    np.testing.assert_array_equal(_eval_forward(model, x), before_out)


def test_training_gradients_unchanged_by_compile(zoo_model, tiny_model_factory, rng):
    """Gradient pin: compiling a model must not alter its training path."""
    name, model = zoo_model
    twin = tiny_model_factory(name)  # bit-identical twin (same seed)
    compile_model(model)
    x = rng.random((2, 1, 32, 32))
    grads = {}
    for tag, net in (("compiled-source", model), ("twin", twin)):
        net.train()
        out = net(Tensor(x.copy()))
        out.backward(np.ones(out.shape))
        grads[tag] = {p_name: p.grad.copy() for p_name, p in net.named_parameters()}
        net.zero_grad()
    assert grads["compiled-source"].keys() == grads["twin"].keys()
    for p_name, grad in grads["compiled-source"].items():
        np.testing.assert_array_equal(grad, grads["twin"][p_name], err_msg=p_name)


@pytest.mark.parametrize("name", ["doinn", "unet"])
def test_deconv_training_gradients_unchanged_by_compile(name, tiny_model_factory, rng):
    """Gradient pin on the transposed convs specifically: compiling a model
    whose decoder is now fused must leave the ConvTranspose2d parameters'
    training gradients bit-for-bit identical to an untouched twin's."""
    model = tiny_model_factory(name)
    twin = tiny_model_factory(name)
    compile_model(model)
    x = rng.random((2, 1, 32, 32))
    grads = {}
    for tag, net in (("compiled-source", model), ("twin", twin)):
        net.train()
        out = net(Tensor(x.copy()))
        out.backward(np.ones(out.shape))
        grads[tag] = {
            p_name: p.grad.copy()
            for p_name, p in net.named_parameters()
            if "dconv" in p_name or p_name.startswith("up")
        }
        net.zero_grad()
    assert grads["compiled-source"], f"{name} exposes no transposed-conv parameters"
    assert grads["compiled-source"].keys() == grads["twin"].keys()
    for p_name, grad in grads["compiled-source"].items():
        np.testing.assert_array_equal(grad, grads["twin"][p_name], err_msg=p_name)


def test_bn_buffers_survive_compile_and_state_dict_round_trip(tiny_model_factory, rng):
    """Satellite: running statistics are intact through compile -> state_dict
    -> load_state_dict, and a recompile of the restored weights matches."""
    model = tiny_model_factory("unet")
    model.train()
    for _ in range(3):  # move the running statistics off their init values
        model(Tensor(rng.random((2, 1, 32, 32))))
    state = model.state_dict()
    graph = compile_model(model)

    restored = tiny_model_factory("unet")
    restored.load_state_dict(state)
    for (name_a, buf_a), (name_b, buf_b) in zip(model.named_buffers(), restored.named_buffers()):
        assert name_a == name_b
        np.testing.assert_array_equal(buf_a, buf_b, err_msg=name_a)

    x = rng.random((2, 1, 32, 32))
    with no_grad():
        np.testing.assert_array_equal(
            compile_model(restored)(Tensor(x)).numpy(), graph(Tensor(x)).numpy()
        )


# --------------------------------------------------------------------- #
# Broken-chain fallbacks: warned, recorded, never silent (PR 4 satellite)
# --------------------------------------------------------------------- #
class _BrokenChainBlock(nn.Module):
    """Declares a fusible chain that an unfusible activation breaks mid-chain."""

    def __init__(self, rng=None) -> None:
        super().__init__()
        self.conv = Conv2d(1, 4, 3, padding=1, rng=rng)
        self.dconv = nn.ConvTranspose2d(4, 4, 2, stride=2, rng=rng)
        self.act = Sigmoid()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.dconv(self.conv(x)))

    def fusible_chain(self):
        # Deliberately invalid: Sigmoid declares no fusion_activation(), so
        # the (otherwise fusible) conv -> dconv chain cannot compile.
        return [(self.conv, None, None), (self.dconv, None, self.act)]


class _HostModel(nn.Module):
    """A parent whose child declares the broken chain, plus a healthy block."""

    def __init__(self, rng=None) -> None:
        super().__init__()
        self.up = _BrokenChainBlock(rng=rng)
        self.vgg = VGGBlock(4, 4, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.vgg(self.up(x))


def test_broken_chain_falls_back_with_structured_warning(rng):
    model = _HostModel(rng=rng)
    for bn in (model.vgg.bn1, model.vgg.bn2):
        _randomize_bn(bn, rng)
    with pytest.warns(FusionFallbackWarning) as record:
        graph = compile_model(model)
    warning = record[0].message
    # The warning is structured: it names the module path inside the tree
    # and carries the chain-construction failure as the reason.
    assert warning.module_path == "_HostModel.up"
    assert "fusion_activation" in warning.reason
    assert graph.fallbacks == [(warning.module_path, warning.reason)]
    # The broken declaration degraded to unfused execution — not silence,
    # not a crash — while the healthy sibling chain still compiled.
    assert isinstance(graph.module.up, _BrokenChainBlock)
    assert isinstance(graph.module.vgg, CompiledChain)
    x = rng.random((2, 1, 16, 16))
    with no_grad():
        np.testing.assert_allclose(
            graph(Tensor(x)).numpy(), _eval_forward(model, x), **TOL
        )


def test_broken_method_rewrite_keeps_unfused_method(rng):
    class _BrokenRewrite(nn.Module):
        def __init__(self) -> None:
            super().__init__()
            self.dconv = nn.ConvTranspose2d(1, 2, 2, stride=2, rng=rng)
            self.sigmoid = Sigmoid()

        def forward(self, x: Tensor) -> Tensor:
            return self._head(x)

        def _head(self, x: Tensor) -> Tensor:
            return self.sigmoid(self.dconv(x))

        def fusion_rewrites(self):
            # Sigmoid has no fusion metadata, so this declaration is broken.
            return {"_head": [(self.dconv, None, self.sigmoid)]}

    model = _BrokenRewrite()
    with pytest.warns(FusionFallbackWarning) as record:
        graph = compile_model(model)
    assert record[0].message.module_path == "_BrokenRewrite._head"
    assert len(graph.fallbacks) == 1
    x = rng.random((1, 1, 8, 8))
    with no_grad():
        np.testing.assert_allclose(graph(Tensor(x)).numpy(), _eval_forward(model, x), **TOL)


def test_transposed_conv_up_paths_compile_without_fallback(zoo_model):
    """Contract flip (PR 5): the transposed convs are no longer exempt-by-
    omission — DOINN's ``dconvN -> vggN`` stages and the UNet up path are
    *declared* fusible chains now, so compiling the whole zoo must raise no
    fallback warning, record no fallback, and actually emit fused
    transposed-conv ops for the models that have them."""
    name, model = zoo_model
    with warnings.catch_warnings():
        warnings.simplefilter("error", FusionFallbackWarning)
        graph = compile_model(model)
    assert graph.fallbacks == []
    deconv_ops = sum(
        isinstance(op, FusedConvTranspose) for chain in graph.chains for op in chain.ops
    )
    source_deconvs = sum(isinstance(m, nn.ConvTranspose2d) for m in model.modules())
    assert deconv_ops == source_deconvs, (
        f"{name}: {source_deconvs} transposed convs in the source model but only "
        f"{deconv_ops} fused transposed-conv ops in the compiled graph"
    )
    if name in ("doinn", "unet"):
        assert deconv_ops > 0


# --------------------------------------------------------------------- #
# Fused-path allocation / cache bugfixes (PR 8 satellites)
# --------------------------------------------------------------------- #
def test_conv_bn_act_routes_bordered_gemm_through_scratch(rng):
    """Bugfix pin: the ``output_padding > 0`` branch must write its per-sample
    GEMM into the caller-provided ``gemm`` buffer instead of allocating a
    fresh ``(C_out, L)`` array per sample per call.  A NaN canary proves the
    buffer was actually consumed (``np.matmul(..., out=)`` overwrites it;
    the old ``w_mat @ cols`` allocation would leave the NaNs untouched)."""
    x = rng.standard_normal((3, 2, 8, 8))
    w = rng.standard_normal((4, 2, 3, 3))
    plain = F.conv_bn_act(x, w, None, stride=1, padding=1)
    gemm = np.full((4, 64), np.nan)
    padded = F.conv_bn_act(x, w, None, stride=1, padding=1, output_padding=1, gemm=gemm)
    np.testing.assert_array_equal(padded[:, :, 1:-1, 1:-1], plain)
    # The buffer holds the last sample's activated tile: it was the GEMM target.
    np.testing.assert_array_equal(gemm.reshape(4, 8, 8), plain[-1])
    with pytest.raises(ValueError, match="gemm buffer"):
        F.conv_bn_act(x, w, None, stride=1, padding=1, output_padding=1, gemm=np.zeros((3, 64)))


def test_fused_chain_caches_bordered_gemm_buffer(rng):
    """Chain level: a bordered emission (conv feeding a padded successor)
    allocates its GEMM scratch once, under the ``"gemm"`` namespace, and
    reuses it across same-geometry calls."""
    block = VGGBlock(2, 3, rng=rng)
    chain = build_chain(block.fusible_chain())
    x = rng.standard_normal((2, 2, 8, 8))
    first = chain.run(x)
    gemm_keys = [key for key in chain._scratch if key[0] == "gemm"]
    assert gemm_keys, "the bordered conv emission did not route through the gemm cache"
    ids = {key: id(chain._scratch[key]) for key in gemm_keys}
    second = chain.run(x)
    assert {key: id(chain._scratch[key]) for key in gemm_keys} == ids
    np.testing.assert_array_equal(first, second)


def test_fused_chain_scratch_eviction_is_lru(rng):
    """Bugfix pin: overflowing ``MAX_CACHED_BUFFERS`` evicts only the
    least-recently-used entries (hits refresh recency) — the old behaviour
    cleared the *entire* cache, so a steady alternating-geometry workload
    re-allocated its hot buffers after every stream of one-off shapes."""
    block = VGGBlock(2, 3, rng=rng)
    chain = build_chain(block.fusible_chain())
    hot = rng.standard_normal((1, 2, 8, 8))
    expected = build_chain(block.fusible_chain()).run(hot)
    np.testing.assert_array_equal(chain.run(hot), expected)
    hot_ids = {key: id(buf) for key, buf in chain._scratch.items()}
    for size in range(9, 9 + chain.MAX_CACHED_BUFFERS + 4):
        chain.run(rng.standard_normal((1, 2, size, size)))  # one-off geometry
        np.testing.assert_array_equal(chain.run(hot), expected)  # hot stays hot
    assert len(chain._scratch) <= chain.MAX_CACHED_BUFFERS
    survivors = {key: id(buf) for key, buf in chain._scratch.items() if key in hot_ids}
    assert survivors == hot_ids, "hot-geometry buffers were evicted (or re-allocated)"


# --------------------------------------------------------------------- #
# Compute backends (PR 8 tentpole): lane kernels and conversions
# --------------------------------------------------------------------- #
def test_conv_bn_act_stacked_matches_per_sample(rng):
    """The blas lane's stacked ``(N*L, C_in*k*k)`` GEMM is numerically a
    reassociation of the per-sample GEMMs: same math, tolerance-equal."""
    x = rng.standard_normal((3, 2, 9, 9))
    w = rng.standard_normal((4, 2, 3, 3))
    b = rng.standard_normal(4)
    kwargs = dict(stride=1, padding=1, activation="leaky_relu", negative_slope=0.2)
    ref = F.conv_bn_act(x, w, b, **kwargs)
    stacked = F.conv_bn_act(x, w, b, stacked=True, **kwargs)
    np.testing.assert_allclose(stacked, ref, rtol=0, atol=1e-12)
    # Bordered emission under the stacked path
    ref_pad = F.conv_bn_act(x, w, b, stride=1, padding=1, output_padding=1)
    stacked_pad = F.conv_bn_act(x, w, b, stride=1, padding=1, output_padding=1, stacked=True)
    np.testing.assert_allclose(stacked_pad, ref_pad, rtol=0, atol=1e-12)


@pytest.mark.parametrize("k,stride,padding,out_pad,activation", [
    (4, 2, 1, 0, "leaky_relu"),   # the DOINN dconv geometry
    (4, 2, 1, 1, "identity"),     # same, with a bordered emission
    (5, 1, 2, 0, "relu"),
    (4, 3, 0, 0, "tanh"),
])
def test_fft_conv_transpose_matches_spatial_kernel(rng, k, stride, padding, out_pad, activation):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((3, 4, k, k))
    b = rng.standard_normal(4)
    kwargs = dict(stride=stride, padding=padding, output_padding=out_pad,
                  activation=activation, negative_slope=0.2)
    ref = F.conv_transpose_bn_act(x, w, b, **kwargs)
    ws = BackendWorkspace()
    out = fft_conv_transpose_bn_act(x, w, b, workspace=ws, **kwargs)
    np.testing.assert_allclose(out, ref, rtol=0, atol=1e-12)
    # Second call reuses the cached kernel spectrum and scratch buffers.
    np.testing.assert_array_equal(fft_conv_transpose_bn_act(x, w, b, workspace=ws, **kwargs), out)


def test_fft_backend_gates_on_kernel_area(rng):
    """Small kernels (UNet's 2x2 up path) stay on the scatter path — the FFT
    only wins once the kernel area crosses ``FFT_MIN_KERNEL_AREA``."""
    fft = get_backend("fft")
    big = FusedConvTranspose.from_modules(
        nn.ConvTranspose2d(2, 3, 4, stride=2, padding=1, rng=rng), None, None
    )
    small = FusedConvTranspose.from_modules(
        nn.ConvTranspose2d(2, 3, 3, stride=1, padding=1, rng=rng), None, None
    )
    assert big._uses_fft(fft) and not small._uses_fft(fft)
    assert big.scratch_shape((1, 2, 8, 8), backend=fft) is None  # no scatter scratch
    # The small overlapping kernel stays on the scatter path: scratch as usual.
    assert small.scratch_shape((1, 2, 8, 8), backend=fft) is not None


def test_float64_backend_is_bit_identical(zoo_model, rng):
    """The lane contract: converting to the default float64 backend changes
    *nothing* — outputs are bit-for-bit the unconverted graph's, zoo-wide."""
    name, model = zoo_model
    x = rng.random((4, 1, 32, 32))
    plain = compile_model(model)
    converted = compile_model(model, backend="float64")
    assert converted.backend is get_backend("float64")
    with no_grad():
        np.testing.assert_array_equal(
            converted(Tensor(x)).numpy(), plain(Tensor(x)).numpy(), err_msg=name
        )


# Calibrated against the pinned float64 reference run (seed 1234, batch 4,
# 32 px tiles, the conftest TINY_MODEL_KWARGS zoo): measured max|delta| was
# doinn 2.9e-7, unet 1.1e-6, damo-dls 1.5e-6, fno 2.2e-7.  Bounds sit ~4x
# above the measurement so they fail on a real precision regression (a
# float64 accumulation sneaking out, a weight cast at the wrong point), not
# on rounding noise.
FLOAT32_MAX_ABS_DELTA = {"doinn": 1.5e-6, "unet": 5.0e-6, "damo-dls": 6.0e-6, "fno": 1.0e-6}


def test_float32_backend_within_calibrated_tolerance(zoo_model, rng):
    name, model = zoo_model
    x = rng.random((4, 1, 32, 32))
    ref = compile_model(model)
    g32 = compile_model(model, backend="float32")
    assert all(op.weight.dtype == np.float32 for chain in g32.chains for op in chain.ops)
    with no_grad():
        delta = np.max(np.abs(g32(Tensor(x)).numpy() - ref(Tensor(x)).numpy()))
    assert delta <= FLOAT32_MAX_ABS_DELTA[name], f"{name}: float32 delta {delta:.3e}"


@pytest.mark.parametrize("lane", ["blas", "fft"])
def test_float64_lanes_match_default_within_tolerance(zoo_model, rng, lane):
    """blas reassociates the GEMM reduction, fft reassociates the deconv
    summation — both stay within 1e-12 of the default lane zoo-wide."""
    name, model = zoo_model
    x = rng.random((4, 1, 32, 32))
    ref = compile_model(model)
    converted = compile_model(model, backend=lane)
    with no_grad():
        np.testing.assert_allclose(
            converted(Tensor(x)).numpy(), ref(Tensor(x)).numpy(),
            rtol=0, atol=1e-12, err_msg=f"{name}/{lane}",
        )


def test_backend_conversion_guards(tiny_model_factory):
    graph = compile_model(tiny_model_factory("unet"), backend="float32")
    with pytest.raises(ValueError, match="recompile from the source model"):
        graph.convert("float64")
    with pytest.raises(ValueError, match="unknown compute backend"):
        compile_model(tiny_model_factory("unet"), backend="float16")
    # Same-dtype lane hops are free and reversible.
    hopping = compile_model(tiny_model_factory("unet"), backend="blas")
    hopping.convert("fft").convert("float64")
    assert hopping.backend is get_backend("float64")


def test_compile_model_ignores_backend_env(zoo_model, rng, monkeypatch):
    """``compile_model`` never consults ``REPRO_BACKEND`` (the executor layer
    resolves it), so direct compiles — and this whole suite under the CI
    backend matrix — stay deterministic in any environment."""
    name, model = zoo_model
    x = rng.random((2, 1, 32, 32))
    ref = compile_model(model)
    monkeypatch.setenv("REPRO_BACKEND", "float32")
    under_env = compile_model(model)
    assert under_env.backend is None
    with no_grad():
        np.testing.assert_array_equal(
            under_env(Tensor(x)).numpy(), ref(Tensor(x)).numpy(), err_msg=name
        )


def test_converted_graph_pickle_round_trip(tiny_model_factory, rng):
    """A converted graph ships its lane to pool workers: the backend (and the
    narrowed weights) survive pickling; scratch and workspace do not."""
    graph = compile_model(tiny_model_factory("doinn"), backend="float32")
    x = rng.random((2, 1, 32, 32))
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.backend is not None and clone.backend.name == "float32"
    assert all(chain._scratch == {} for chain in clone.chains)
    with no_grad():
        np.testing.assert_array_equal(clone(Tensor(x)).numpy(), graph(Tensor(x)).numpy())
