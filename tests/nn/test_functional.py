"""Finite-difference gradient checks for conv/pool/norm primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import numeric_gradient


def _check_grad(build_loss, arrays, atol=1e-4):
    """Compare autograd gradients with finite differences for each array."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for array, tensor in zip(arrays, tensors):
        def scalar():
            fresh = [Tensor(a) for a in arrays]
            return float(build_loss(*fresh).item())

        numeric = numeric_gradient(scalar, array)
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, err_msg="gradient mismatch")


# --------------------------------------------------------------------- #
# conv2d
# --------------------------------------------------------------------- #
def test_conv2d_output_shape(rng):
    x = Tensor(rng.standard_normal((2, 3, 8, 8)))
    w = Tensor(rng.standard_normal((5, 3, 3, 3)))
    b = Tensor(rng.standard_normal(5))
    out = F.conv2d(x, w, b, stride=1, padding=1)
    assert out.shape == (2, 5, 8, 8)


def test_conv2d_stride_two_shape(rng):
    x = Tensor(rng.standard_normal((1, 2, 8, 8)))
    w = Tensor(rng.standard_normal((4, 2, 4, 4)))
    out = F.conv2d(x, w, stride=2, padding=1)
    assert out.shape == (1, 4, 4, 4)


def test_conv2d_matches_direct_computation(rng):
    """Cross-check against a brute-force convolution on a tiny example."""
    x = rng.standard_normal((1, 1, 5, 5))
    w = rng.standard_normal((1, 1, 3, 3))
    out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).numpy()
    expected = np.zeros((1, 1, 3, 3))
    for i in range(3):
        for j in range(3):
            expected[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w[0, 0]).sum()
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_conv2d_gradients(rng):
    x = rng.standard_normal((2, 2, 6, 6))
    w = rng.standard_normal((3, 2, 3, 3))
    b = rng.standard_normal(3)
    _check_grad(lambda xt, wt, bt: (F.conv2d(xt, wt, bt, stride=1, padding=1) ** 2).sum(), [x, w, b])


def test_conv2d_gradients_strided(rng):
    x = rng.standard_normal((1, 1, 6, 6))
    w = rng.standard_normal((2, 1, 4, 4))
    _check_grad(lambda xt, wt: (F.conv2d(xt, wt, stride=2, padding=1) ** 2).sum(), [x, w])


def test_conv2d_channel_mismatch_raises(rng):
    x = Tensor(rng.standard_normal((1, 3, 4, 4)))
    w = Tensor(rng.standard_normal((2, 4, 3, 3)))
    with pytest.raises(ValueError):
        F.conv2d(x, w)


# --------------------------------------------------------------------- #
# conv_transpose2d
# --------------------------------------------------------------------- #
def test_conv_transpose2d_output_shape(rng):
    x = Tensor(rng.standard_normal((2, 4, 5, 5)))
    w = Tensor(rng.standard_normal((4, 2, 4, 4)))
    out = F.conv_transpose2d(x, w, stride=2, padding=1)
    assert out.shape == (2, 2, 10, 10)


def test_conv_transpose2d_is_adjoint_of_conv2d(rng):
    """<conv(x), y> == <x, conv_transpose(y)> for matching configurations."""
    x = rng.standard_normal((1, 3, 8, 8))
    y = rng.standard_normal((1, 5, 4, 4))
    w = rng.standard_normal((5, 3, 4, 4))
    conv_out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).numpy()
    # conv_transpose weight layout is (C_in=5, C_out=3, kh, kw): same array works.
    convt_out = F.conv_transpose2d(Tensor(y), Tensor(w), stride=2, padding=1).numpy()
    np.testing.assert_allclose((conv_out * y).sum(), (x * convt_out).sum(), rtol=1e-9)


def test_conv_transpose2d_gradients(rng):
    x = rng.standard_normal((1, 2, 4, 4))
    w = rng.standard_normal((2, 3, 4, 4))
    b = rng.standard_normal(3)
    _check_grad(
        lambda xt, wt, bt: (F.conv_transpose2d(xt, wt, bt, stride=2, padding=1) ** 2).sum(),
        [x, w, b],
    )


def test_conv_transpose2d_channel_mismatch_raises(rng):
    x = Tensor(rng.standard_normal((1, 3, 4, 4)))
    w = Tensor(rng.standard_normal((2, 4, 3, 3)))
    with pytest.raises(ValueError):
        F.conv_transpose2d(x, w)


# --------------------------------------------------------------------- #
# pooling and upsampling
# --------------------------------------------------------------------- #
def test_avg_pool2d_value():
    x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
    out = F.avg_pool2d(x, 2).numpy()
    np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_avg_pool2d_gradients(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    _check_grad(lambda xt: (F.avg_pool2d(xt, 4) ** 2).sum(), [x])


def test_avg_pool2d_rejects_indivisible(rng):
    with pytest.raises(ValueError):
        F.avg_pool2d(Tensor(rng.standard_normal((1, 1, 5, 5))), 2)


def test_max_pool2d_value():
    x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
    out = F.max_pool2d(x, 2).numpy()
    np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])


def test_max_pool2d_gradients(rng):
    x = rng.standard_normal((1, 2, 4, 4))
    _check_grad(lambda xt: (F.max_pool2d(xt, 2) ** 2).sum(), [x])


def test_upsample_nearest_roundtrip_with_avgpool(rng):
    x = rng.standard_normal((1, 1, 4, 4))
    up = F.upsample_nearest2d(Tensor(x), 2)
    down = F.avg_pool2d(up, 2)
    np.testing.assert_allclose(down.numpy(), x)


def test_upsample_nearest_gradients(rng):
    x = rng.standard_normal((1, 2, 3, 3))
    _check_grad(lambda xt: (F.upsample_nearest2d(xt, 2) ** 2).sum(), [x])


# --------------------------------------------------------------------- #
# batch normalization
# --------------------------------------------------------------------- #
def test_batch_norm_normalizes_in_training(rng):
    x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 5.0 + 2.0)
    gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
    running_mean, running_var = np.zeros(3), np.ones(3)
    out = F.batch_norm2d(x, gamma, beta, running_mean, running_var, training=True).numpy()
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)


def test_batch_norm_updates_running_stats(rng):
    x = Tensor(rng.standard_normal((8, 2, 4, 4)) + 3.0)
    running_mean, running_var = np.zeros(2), np.ones(2)
    F.batch_norm2d(Tensor(x.numpy()), Tensor(np.ones(2)), Tensor(np.zeros(2)), running_mean, running_var, training=True)
    assert np.all(running_mean > 0.1)


def test_batch_norm_eval_uses_running_stats(rng):
    x = rng.standard_normal((4, 2, 3, 3))
    running_mean = np.array([1.0, -1.0])
    running_var = np.array([4.0, 0.25])
    out = F.batch_norm2d(
        Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), running_mean, running_var, training=False
    ).numpy()
    expected = (x - running_mean.reshape(1, 2, 1, 1)) / np.sqrt(running_var.reshape(1, 2, 1, 1) + 1e-5)
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_batch_norm_gradients_training(rng):
    x = rng.standard_normal((3, 2, 3, 3))
    gamma = rng.standard_normal(2) + 1.0
    beta = rng.standard_normal(2)

    def build(xt, gt, bt):
        running_mean, running_var = np.zeros(2), np.ones(2)
        out = F.batch_norm2d(xt, gt, bt, running_mean, running_var, training=True)
        return (out * out * 0.5).sum()

    _check_grad(build, [x, gamma, beta], atol=2e-4)


def test_batch_norm_gradients_eval(rng):
    x = rng.standard_normal((2, 2, 3, 3))
    gamma = rng.standard_normal(2) + 1.0
    beta = rng.standard_normal(2)
    running_mean = rng.standard_normal(2)
    running_var = np.abs(rng.standard_normal(2)) + 0.5

    def build(xt, gt, bt):
        out = F.batch_norm2d(xt, gt, bt, running_mean.copy(), running_var.copy(), training=False)
        return (out * out * 0.5).sum()

    _check_grad(build, [x, gamma, beta], atol=2e-4)
