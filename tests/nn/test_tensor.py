"""Tests of the autograd Tensor: arithmetic, reductions, shape ops, gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad
from tests.conftest import numeric_gradient


def test_tensor_wraps_numpy_array():
    t = Tensor([[1.0, 2.0], [3.0, 4.0]])
    assert t.shape == (2, 2)
    assert t.dtype == np.float64
    assert not t.requires_grad


def test_add_backward():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 1.0])
    np.testing.assert_allclose(b.grad, [1.0, 1.0])


def test_mul_backward():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, [3.0, 4.0])
    np.testing.assert_allclose(b.grad, [1.0, 2.0])


def test_broadcast_add_reduces_gradient():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones((1, 4)), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == (3, 4)
    assert b.grad.shape == (1, 4)
    np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))


def test_scalar_broadcast_gradient():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    (a * 3.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))


def test_div_backward(rng):
    a_data = rng.uniform(0.5, 2.0, size=(3, 3))
    b_data = rng.uniform(0.5, 2.0, size=(3, 3))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a / b).sum().backward()
    np.testing.assert_allclose(a.grad, 1.0 / b_data)
    np.testing.assert_allclose(b.grad, -a_data / b_data**2)


def test_matmul_backward(rng):
    a_data = rng.standard_normal((4, 3))
    b_data = rng.standard_normal((3, 5))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()

    def loss_a():
        return float((a_data @ b_data).sum())

    np.testing.assert_allclose(a.grad, numeric_gradient(loss_a, a_data), atol=1e-5)


def test_pow_backward():
    a = Tensor([2.0, 3.0], requires_grad=True)
    (a ** 3).sum().backward()
    np.testing.assert_allclose(a.grad, [12.0, 27.0])


def test_exp_log_chain(rng):
    data = rng.uniform(0.5, 1.5, size=(4,))
    a = Tensor(data.copy(), requires_grad=True)
    (a.exp().log()).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(4), atol=1e-9)


@pytest.mark.parametrize(
    "method, args",
    [
        ("relu", ()),
        ("leaky_relu", (0.1,)),
        ("sigmoid", ()),
        ("tanh", ()),
        ("abs", ()),
    ],
)
def test_elementwise_gradients_match_numeric(method, args, rng):
    data = rng.standard_normal((5, 5)) + 0.05  # avoid the kink at exactly 0
    t = Tensor(data.copy(), requires_grad=True)
    getattr(t, method)(*args).sum().backward()

    def loss():
        fresh = Tensor(data)
        return float(getattr(fresh, method)(*args).sum().item())

    np.testing.assert_allclose(t.grad, numeric_gradient(loss, data), atol=1e-4)


def test_mean_and_var_gradients(rng):
    data = rng.standard_normal((3, 4))
    t = Tensor(data.copy(), requires_grad=True)
    (t.var() + t.mean()).backward()

    def loss():
        fresh = Tensor(data)
        return float((fresh.var() + fresh.mean()).item())

    np.testing.assert_allclose(t.grad, numeric_gradient(loss, data), atol=1e-5)


def test_max_gradient_splits_ties():
    t = Tensor([1.0, 5.0, 5.0], requires_grad=True)
    t.max().backward()
    np.testing.assert_allclose(t.grad, [0.0, 0.5, 0.5])


def test_reshape_transpose_roundtrip_gradient(rng):
    data = rng.standard_normal((2, 3, 4))
    t = Tensor(data.copy(), requires_grad=True)
    out = t.reshape(6, 4).transpose(1, 0).reshape(2, 3, 4)
    (out * 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full((2, 3, 4), 2.0))


def test_getitem_gradient():
    t = Tensor(np.arange(10.0), requires_grad=True)
    t[2:5].sum().backward()
    expected = np.zeros(10)
    expected[2:5] = 1.0
    np.testing.assert_allclose(t.grad, expected)


def test_pad2d_gradient(rng):
    data = rng.standard_normal((1, 1, 3, 3))
    t = Tensor(data.copy(), requires_grad=True)
    t.pad2d(2).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones((1, 1, 3, 3)))


def test_cat_gradient(rng):
    a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
    b = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
    out = Tensor.cat([a, b], axis=1)
    (out * 2.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
    np.testing.assert_allclose(b.grad, np.full((2, 5), 2.0))


def test_stack_gradient(rng):
    a = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
    b = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
    Tensor.stack([a, b], axis=0).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((2, 2)))
    np.testing.assert_allclose(b.grad, np.ones((2, 2)))


def test_no_grad_disables_graph():
    a = Tensor([1.0], requires_grad=True)
    with no_grad():
        out = a * 2.0
    assert not out.requires_grad


def test_backward_on_non_grad_tensor_raises():
    t = Tensor([1.0])
    with pytest.raises(RuntimeError):
        t.backward()


def test_gradient_accumulates_across_uses():
    a = Tensor([2.0], requires_grad=True)
    (a * a).sum().backward()
    np.testing.assert_allclose(a.grad, [4.0])


def test_diamond_graph_gradient():
    a = Tensor([3.0], requires_grad=True)
    b = a * 2.0
    c = a * 4.0
    (b + c).sum().backward()
    np.testing.assert_allclose(a.grad, [6.0])


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=8),
    st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=8),
)
def test_addition_commutes(xs, ys):
    n = min(len(xs), len(ys))
    a = Tensor(np.array(xs[:n]))
    b = Tensor(np.array(ys[:n]))
    np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=10))
def test_sum_linearity(xs):
    data = np.array(xs)
    a = Tensor(data.copy(), requires_grad=True)
    (a.sum() * 3.0).backward()
    np.testing.assert_allclose(a.grad, np.full(data.shape, 3.0))
