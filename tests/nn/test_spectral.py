"""Gradient and adjoint checks for the spectral (Fourier-domain) operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.spectral import (
    fourier_unit,
    scatter_spectrum,
    spectral_conv2d,
    truncate_spectrum,
    truncation_indices,
)
from tests.conftest import numeric_gradient


def test_truncation_indices_shape_and_bounds():
    rows, cols = truncation_indices(16, 16, 3)
    assert len(rows) == 6 and len(cols) == 6
    assert rows.max() < 16 and cols.max() < 16


def test_truncation_rejects_too_many_modes():
    with pytest.raises(ValueError):
        truncation_indices(8, 8, 5)


def test_truncate_scatter_roundtrip(rng):
    spectrum = rng.standard_normal((2, 3, 16, 16)) + 1j * rng.standard_normal((2, 3, 16, 16))
    block = truncate_spectrum(spectrum, 4)
    full = scatter_spectrum(block, 16, 16, 4)
    np.testing.assert_allclose(truncate_spectrum(full, 4), block)
    # Everything outside the retained block is zero.
    assert np.count_nonzero(full) <= block.size


def test_scatter_is_adjoint_of_truncate(rng):
    """<truncate(x), y> == <x, scatter(y)> over the complex inner product."""
    x = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
    y = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    lhs = np.vdot(y, truncate_spectrum(x, 2))
    rhs = np.vdot(scatter_spectrum(y, 8, 8, 2), x)
    np.testing.assert_allclose(lhs, rhs)


def test_fourier_unit_output_shape(rng):
    x = Tensor(rng.standard_normal((2, 1, 16, 16)))
    lift = Tensor(rng.standard_normal((1, 4, 2)))
    mix = Tensor(rng.standard_normal((4, 4, 6, 6, 2)))
    out = fourier_unit(x, lift, mix, modes=3)
    assert out.shape == (2, 4, 16, 16)
    assert not np.iscomplexobj(out.numpy())


def test_fourier_unit_rejects_bad_mode_count(rng):
    x = Tensor(rng.standard_normal((1, 1, 16, 16)))
    lift = Tensor(rng.standard_normal((1, 2, 2)))
    mix = Tensor(rng.standard_normal((2, 2, 4, 4, 2)))
    with pytest.raises(ValueError):
        fourier_unit(x, lift, mix, modes=3)


def test_fourier_unit_is_linear_in_input(rng):
    x1 = rng.standard_normal((1, 1, 12, 12))
    x2 = rng.standard_normal((1, 1, 12, 12))
    lift = Tensor(rng.standard_normal((1, 3, 2)))
    mix = Tensor(rng.standard_normal((3, 3, 4, 4, 2)))

    def apply(arr):
        return fourier_unit(Tensor(arr), lift, mix, modes=2).numpy()

    np.testing.assert_allclose(apply(x1 + 2.0 * x2), apply(x1) + 2.0 * apply(x2), atol=1e-10)


def test_fourier_unit_gradients_match_numeric(rng):
    x = rng.standard_normal((1, 1, 8, 8))
    lift = rng.standard_normal((1, 2, 2)) * 0.5
    mix = rng.standard_normal((2, 2, 4, 4, 2)) * 0.5
    target = rng.standard_normal((1, 2, 8, 8))

    def build(xt, lt, mt):
        out = fourier_unit(xt, lt, mt, modes=2)
        diff = out - Tensor(target)
        return (diff * diff).sum()

    tensors = [Tensor(a.copy(), requires_grad=True) for a in (x, lift, mix)]
    build(*tensors).backward()

    for array, tensor in zip((x, lift, mix), tensors):
        def scalar():
            fresh = [Tensor(a) for a in (x, lift, mix)]
            return float(build(*fresh).item())

        numeric = numeric_gradient(scalar, array)
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-4)


def test_spectral_conv2d_gradients_match_numeric(rng):
    x = rng.standard_normal((1, 2, 8, 8))
    mix = rng.standard_normal((2, 3, 4, 4, 2)) * 0.5
    target = rng.standard_normal((1, 3, 8, 8))

    def build(xt, mt):
        out = spectral_conv2d(xt, mt, modes=2)
        diff = out - Tensor(target)
        return (diff * diff).sum()

    tensors = [Tensor(a.copy(), requires_grad=True) for a in (x, mix)]
    build(*tensors).backward()

    for array, tensor in zip((x, mix), tensors):
        def scalar():
            fresh = [Tensor(a) for a in (x, mix)]
            return float(build(*fresh).item())

        numeric = numeric_gradient(scalar, array)
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-4)


def test_spectral_conv2d_low_pass_behaviour(rng):
    """With identity-like mixing weights, high-frequency content is removed."""
    h = w = 32
    # Pure high-frequency checkerboard has no energy in the retained low modes.
    xx, yy = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    checkerboard = ((xx + yy) % 2).astype(float) - 0.5
    x = Tensor(checkerboard.reshape(1, 1, h, w))
    mix = np.zeros((1, 1, 8, 8, 2))
    mix[..., 0] = 1.0  # identity mixing (real part one)
    out = spectral_conv2d(x, Tensor(mix), modes=4).numpy()
    assert np.abs(out).max() < 1e-10


def test_spectral_conv2d_preserves_dc_component(rng):
    """A constant image passes through identity mixing unchanged."""
    x = Tensor(np.full((1, 1, 16, 16), 3.0))
    mix = np.zeros((1, 1, 4, 4, 2))
    mix[..., 0] = 1.0
    out = spectral_conv2d(x, Tensor(mix), modes=2).numpy()
    np.testing.assert_allclose(out, np.full((1, 1, 16, 16), 3.0), atol=1e-10)
