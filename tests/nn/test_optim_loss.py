"""Tests of optimizers, LR schedules, losses and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    BCELoss,
    Conv2d,
    DiceLoss,
    MSELoss,
    Parameter,
    Sequential,
    StepLR,
    Tensor,
    bce_loss,
    dice_loss,
    load_model,
    load_state,
    mse_loss,
    save_model,
    save_state,
)


# --------------------------------------------------------------------- #
# Optimizers
# --------------------------------------------------------------------- #
def test_sgd_minimizes_quadratic():
    w = Parameter(np.array([5.0]))
    optimizer = SGD([w], lr=0.1)
    for _ in range(100):
        optimizer.zero_grad()
        loss = (w * w).sum()
        loss.backward()
        optimizer.step()
    assert abs(w.data[0]) < 1e-3


def test_sgd_momentum_converges_faster_than_plain():
    def run(momentum):
        w = Parameter(np.array([5.0]))
        optimizer = SGD([w], lr=0.02, momentum=momentum)
        for _ in range(50):
            optimizer.zero_grad()
            (w * w).sum().backward()
            optimizer.step()
        return abs(w.data[0])

    assert run(0.9) < run(0.0)


def test_adam_minimizes_quadratic():
    w = Parameter(np.array([3.0, -2.0]))
    optimizer = Adam([w], lr=0.1)
    for _ in range(200):
        optimizer.zero_grad()
        (w * w).sum().backward()
        optimizer.step()
    np.testing.assert_allclose(w.data, [0.0, 0.0], atol=1e-2)


def test_weight_decay_shrinks_parameters():
    w = Parameter(np.array([1.0]))
    optimizer = SGD([w], lr=0.1, weight_decay=0.5)
    for _ in range(20):
        optimizer.zero_grad()
        # Zero data gradient: only weight decay acts.
        (w * 0.0).sum().backward()
        optimizer.step()
    assert abs(w.data[0]) < 1.0


def test_optimizer_requires_parameters():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_optimizer_skips_parameters_without_grad():
    w = Parameter(np.array([1.0]))
    optimizer = Adam([w], lr=0.1)
    optimizer.step()  # no backward was run; should not raise
    np.testing.assert_allclose(w.data, [1.0])


def test_step_lr_matches_paper_schedule():
    """Table 8: initial LR 0.002, halved every 2 epochs."""
    w = Parameter(np.array([1.0]))
    optimizer = Adam([w], lr=0.002)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
    lrs = []
    for _ in range(6):
        lrs.append(optimizer.lr)
        scheduler.step()
    np.testing.assert_allclose(lrs, [0.002, 0.002, 0.001, 0.001, 0.0005, 0.0005])


# --------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------- #
def test_mse_loss_zero_for_identical():
    x = Tensor(np.ones((2, 3)))
    assert mse_loss(x, Tensor(np.ones((2, 3)))).item() == 0.0


def test_mse_loss_value():
    pred = Tensor(np.array([1.0, 2.0]))
    target = Tensor(np.array([0.0, 0.0]))
    assert mse_loss(pred, target).item() == pytest.approx(2.5)


def test_bce_loss_is_low_for_confident_correct():
    pred = Tensor(np.array([0.99, 0.01]))
    target = Tensor(np.array([1.0, 0.0]))
    assert bce_loss(pred, target).item() < 0.05


def test_bce_loss_handles_saturated_predictions():
    pred = Tensor(np.array([1.0, 0.0]))
    target = Tensor(np.array([0.0, 1.0]))
    value = bce_loss(pred, target).item()
    assert np.isfinite(value) and value > 1.0


def test_dice_loss_bounds():
    perfect = dice_loss(Tensor(np.ones((4, 4))), Tensor(np.ones((4, 4)))).item()
    disjoint = dice_loss(Tensor(np.eye(4)), Tensor(1.0 - np.eye(4))).item()
    assert perfect == pytest.approx(0.0, abs=1e-5)
    assert disjoint == pytest.approx(1.0, abs=1e-5)


@pytest.mark.parametrize("loss_cls", [MSELoss, BCELoss, DiceLoss])
def test_loss_modules_are_differentiable(loss_cls, rng):
    pred = Tensor(rng.uniform(0.1, 0.9, size=(2, 1, 4, 4)), requires_grad=True)
    target = Tensor(rng.integers(0, 2, size=(2, 1, 4, 4)).astype(float))
    loss = loss_cls()(pred, target)
    loss.backward()
    assert pred.grad is not None
    assert np.isfinite(pred.grad).all()


# --------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------- #
def test_save_and_load_state_roundtrip(tmp_path, rng):
    state = {"a": rng.standard_normal((3, 3)), "b": np.array([1.0])}
    path = save_state(state, tmp_path / "weights.npz")
    loaded = load_state(path)
    np.testing.assert_allclose(loaded["a"], state["a"])
    np.testing.assert_allclose(loaded["b"], state["b"])


def test_save_and_load_model_roundtrip(tmp_path, rng):
    model = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), Conv2d(2, 1, 3, padding=1, rng=rng))
    x = Tensor(rng.standard_normal((1, 1, 6, 6)))
    expected = model(x).numpy()
    path = save_model(model, tmp_path / "model.npz")

    fresh = Sequential(Conv2d(1, 2, 3, padding=1), Conv2d(2, 1, 3, padding=1))
    load_model(fresh, path)
    np.testing.assert_allclose(fresh(x).numpy(), expected)
