"""Tests of the Module system and the concrete layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    FNOFourierLayer,
    Identity,
    LeakyReLU,
    MaxPool2d,
    Module,
    OptimizedFourierUnit,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    UpsampleNearest2d,
)


def test_module_registers_parameters_and_submodules():
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.conv = Conv2d(1, 2, 3)
            self.scale = Parameter(np.ones(1))

        def forward(self, x):
            return self.conv(x) * self.scale

    net = Net()
    names = dict(net.named_parameters())
    assert "scale" in names
    assert "conv.weight" in names
    assert "conv.bias" in names
    assert net.num_parameters() == 2 * 1 * 3 * 3 + 2 + 1


def test_train_eval_propagates():
    net = Sequential(Conv2d(1, 1, 3), BatchNorm2d(1))
    net.eval()
    assert all(not m.training for m in net.modules())
    net.train()
    assert all(m.training for m in net.modules())


def test_eval_mode_nesting_restores_each_level():
    """eval_mode inside eval_mode restores the right state at each exit."""
    from repro.nn import eval_mode

    net = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2), LeakyReLU())
    net.train()
    with eval_mode(net):
        assert all(not m.training for m in net.modules())
        with eval_mode(net):
            assert all(not m.training for m in net.modules())
        # Inner exit restores its prior — which was already eval, not train.
        assert all(not m.training for m in net.modules())
    assert all(m.training for m in net.modules())


def test_eval_mode_nesting_restores_mixed_state():
    """Per-module flags survive nesting, even when they disagree."""
    from repro.nn import eval_mode

    net = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2))
    net.eval()
    first = getattr(net, net._order[0])
    first.training = True  # mixed: one child trains, the rest are eval
    snapshot = [m.training for m in net.modules()]
    with eval_mode(net):
        assert all(not m.training for m in net.modules())
        with eval_mode(net):
            pass
        assert all(not m.training for m in net.modules())
    assert [m.training for m in net.modules()] == snapshot


def test_eval_mode_restores_on_exception():
    from repro.nn import eval_mode

    net = Sequential(Conv2d(1, 1, 3), BatchNorm2d(1))
    net.train()
    with pytest.raises(RuntimeError, match="boom"):
        with eval_mode(net):
            with eval_mode(net):
                raise RuntimeError("boom")
    assert all(m.training for m in net.modules())


def test_zero_grad_clears_gradients(rng):
    conv = Conv2d(1, 1, 3, padding=1)
    out = conv(Tensor(rng.standard_normal((1, 1, 4, 4))))
    out.sum().backward()
    assert conv.weight.grad is not None
    conv.zero_grad()
    assert conv.weight.grad is None


def test_state_dict_roundtrip(rng):
    net = Sequential(Conv2d(1, 4, 3, padding=1, rng=rng), BatchNorm2d(4), Conv2d(4, 1, 3, padding=1, rng=rng))
    x = Tensor(rng.standard_normal((1, 1, 8, 8)))
    net.eval()
    before = net(x).numpy()

    other = Sequential(Conv2d(1, 4, 3, padding=1), BatchNorm2d(4), Conv2d(4, 1, 3, padding=1))
    other.load_state_dict(net.state_dict())
    other.eval()
    after = other(x).numpy()
    np.testing.assert_allclose(before, after)


def test_load_state_dict_shape_mismatch_raises():
    a = Conv2d(1, 2, 3)
    b = Conv2d(1, 3, 3)
    with pytest.raises(ValueError):
        b.load_state_dict(a.state_dict())


def test_load_state_dict_missing_key_raises():
    a = Conv2d(1, 2, 3, bias=False)
    b = Conv2d(1, 2, 3, bias=True)
    with pytest.raises(KeyError):
        b.load_state_dict(a.state_dict())


def test_sequential_applies_in_order(rng):
    net = Sequential(Identity(), ReLU())
    x = Tensor(np.array([[-1.0, 2.0]]))
    np.testing.assert_allclose(net(x).numpy(), [[0.0, 2.0]])
    assert len(net) == 2


@pytest.mark.parametrize(
    "layer, input_shape, expected_shape",
    [
        (Conv2d(3, 8, 3, stride=1, padding=1), (2, 3, 16, 16), (2, 8, 16, 16)),
        (Conv2d(1, 4, 4, stride=2, padding=1), (1, 1, 16, 16), (1, 4, 8, 8)),
        (ConvTranspose2d(4, 2, 4, stride=2, padding=1), (1, 4, 8, 8), (1, 2, 16, 16)),
        (AvgPool2d(8), (1, 1, 32, 32), (1, 1, 4, 4)),
        (MaxPool2d(2), (1, 3, 8, 8), (1, 3, 4, 4)),
        (UpsampleNearest2d(2), (1, 2, 4, 4), (1, 2, 8, 8)),
        (BatchNorm2d(5), (2, 5, 4, 4), (2, 5, 4, 4)),
    ],
)
def test_layer_output_shapes(layer, input_shape, expected_shape, rng):
    x = Tensor(rng.standard_normal(input_shape))
    assert layer(x).shape == expected_shape


@pytest.mark.parametrize("activation", [ReLU(), LeakyReLU(0.2), Sigmoid(), Tanh()])
def test_activation_layers_preserve_shape(activation, rng):
    x = Tensor(rng.standard_normal((2, 3, 4, 4)))
    assert activation(x).shape == (2, 3, 4, 4)


def test_optimized_fourier_unit_shapes_and_params(rng):
    unit = OptimizedFourierUnit(1, 16, modes=4, rng=rng)
    x = Tensor(rng.standard_normal((2, 1, 32, 32)))
    out = unit(x)
    assert out.shape == (2, 16, 32, 32)
    # lift: 1*16*2, mix: 16*16*8*8*2
    assert unit.num_parameters() == 1 * 16 * 2 + 16 * 16 * 8 * 8 * 2


def test_optimized_fourier_unit_trains(rng):
    """A single Fourier unit can fit a low-frequency target."""
    from repro.nn import Adam, mse_loss

    unit = OptimizedFourierUnit(1, 2, modes=3, rng=rng)
    x = Tensor(rng.standard_normal((4, 1, 16, 16)))
    # Low-frequency target representable by the unit (modes kept: 3 per axis).
    freq = np.fft.fft2(x.numpy(), axes=(-2, -1))
    freq[..., 3:-3, :] = 0
    freq[..., :, 3:-3] = 0
    target = Tensor(np.repeat(np.fft.ifft2(freq).real, 2, axis=1))

    optimizer = Adam(unit.parameters(), lr=0.05)
    first_loss = None
    for _ in range(60):
        optimizer.zero_grad()
        loss = mse_loss(unit(x), target)
        loss.backward()
        optimizer.step()
        if first_loss is None:
            first_loss = loss.item()
    assert loss.item() < first_loss * 0.5


def test_fno_fourier_layer_shapes(rng):
    layer = FNOFourierLayer(channels=4, modes=3, rng=rng)
    x = Tensor(rng.standard_normal((1, 4, 16, 16)))
    assert layer(x).shape == (1, 4, 16, 16)


def test_fno_layer_without_bypass_has_fewer_params(rng):
    with_bypass = FNOFourierLayer(channels=4, modes=3, use_bypass=True, rng=rng)
    without = FNOFourierLayer(channels=4, modes=3, use_bypass=False, rng=rng)
    assert with_bypass.num_parameters() > without.num_parameters()


def test_gradients_flow_through_stacked_fno_layers(rng):
    net = Sequential(FNOFourierLayer(2, 2, rng=rng), FNOFourierLayer(2, 2, rng=rng))
    x = Tensor(rng.standard_normal((1, 2, 8, 8)))
    net(x).sum().backward()
    for _, param in net.named_parameters():
        assert param.grad is not None
