"""Tests for the shared utilities (seeding, image helpers, table formatting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import binarize, downsample, format_table, normalize_image, seed_everything, to_ascii


def test_seed_everything_reproducible():
    rng_a = seed_everything(42)
    values_a = rng_a.random(5)
    rng_b = seed_everything(42)
    values_b = rng_b.random(5)
    np.testing.assert_allclose(values_a, values_b)
    # The legacy global NumPy RNG is seeded too, so module-level randomness is
    # reproducible as well.
    seed_everything(42)
    first = np.random.rand(3)
    seed_everything(42)
    np.testing.assert_allclose(first, np.random.rand(3))


def test_normalize_image_range():
    image = np.array([[1.0, 3.0], [5.0, 9.0]])
    normalized = normalize_image(image)
    assert normalized.min() == 0.0 and normalized.max() == 1.0


def test_normalize_constant_image_is_zero():
    np.testing.assert_allclose(normalize_image(np.full((3, 3), 7.0)), np.zeros((3, 3)))


def test_binarize_threshold():
    image = np.array([0.1, 0.5, 0.9])
    np.testing.assert_allclose(binarize(image, 0.5), [0.0, 1.0, 1.0])


def test_downsample_average():
    image = np.arange(16.0).reshape(4, 4)
    down = downsample(image, 2)
    assert down.shape == (2, 2)
    assert down[0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))
    with pytest.raises(ValueError):
        downsample(np.zeros((5, 5)), 2)
    np.testing.assert_allclose(downsample(image, 1), image)


def test_to_ascii_produces_text():
    image = np.zeros((16, 16))
    image[4:12, 4:12] = 1.0
    art = to_ascii(image, width=16)
    assert isinstance(art, str)
    assert "@" in art and " " in art


def test_format_table_alignment_and_title():
    text = format_table(["A", "BB"], [[1, 2.5], [30, 4.0]], title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "A" in lines[1] and "BB" in lines[1]
    assert "2.50" in text and "30" in text


def test_format_table_empty_rows():
    text = format_table(["Col"], [])
    assert "Col" in text


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
def test_normalize_image_bounds_property(values):
    image = np.array(values).reshape(1, -1)
    normalized = normalize_image(image)
    assert normalized.min() >= 0.0
    assert normalized.max() <= 1.0
