"""Tests for the experiment harness and the cheap experiment modules.

The expensive experiments (Table 2, Table 3, Table 4, Figure 8) are exercised
end-to-end by the benchmark suite in ``benchmarks/``; here we test the shared
infrastructure and the experiments that do not require training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentProfile,
    Harness,
    format_fourier_cost,
    format_table5_7,
    format_table8,
    get_profile,
    run_fourier_cost,
    run_table5_7,
    run_table8,
)
from repro.experiments.harness import _digest, artifacts_dir, resolve_artifacts_root


def tiny_profile(tmp_path=None) -> ExperimentProfile:
    return ExperimentProfile(
        name="tiny",
        low_res_size=32,
        high_res_size=64,
        low_res_pixel=32.0,
        high_res_pixel=16.0,
        num_train_low=3,
        num_test_low=2,
        num_train_high=2,
        num_test_high=1,
        epochs_low=1,
        epochs_high=1,
        batch_size=2,
        large_tile_scale=2,
        large_tile_count=1,
        opc_iterations=3,
    )


def test_get_profile_default_and_env(monkeypatch):
    assert get_profile().name == "quick"
    assert get_profile("full").name == "full"
    monkeypatch.setenv("REPRO_PROFILE", "full")
    assert get_profile().name == "full"


def test_get_profile_unknown_argument_is_a_clean_valueerror():
    """A bad profile must raise ValueError (a raw KeyError repr-mangles the
    message at the CLI) naming the argument and listing what is available."""
    with pytest.raises(ValueError, match=r"unknown profile 'huge'.*full.*quick"):
        get_profile("huge")


def test_get_profile_unknown_env_var_is_a_clean_valueerror(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "Enormous")
    with pytest.raises(ValueError, match=r"unknown REPRO_PROFILE 'enormous'.*full.*quick"):
        get_profile()
    # An explicit argument still wins over a bogus environment value.
    assert get_profile("quick").name == "quick"


def test_artifacts_root_explicit_argument_wins(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "env"))
    assert resolve_artifacts_root(tmp_path / "explicit") == tmp_path / "explicit"


def test_artifacts_root_env_then_repo_default(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "env"))
    assert resolve_artifacts_root() == tmp_path / "env"
    monkeypatch.delenv("REPRO_ARTIFACTS")
    default = resolve_artifacts_root()
    assert default.is_absolute()
    assert default.name == "artifacts"


@pytest.mark.parametrize("bad", ["relative/dir", "./here", ""])
def test_artifacts_root_rejects_relative_env_paths(monkeypatch, bad):
    monkeypatch.setenv("REPRO_ARTIFACTS", bad)
    if not bad:
        # Empty means unset: fall through to the repo default.
        assert resolve_artifacts_root().is_absolute()
        return
    with pytest.raises(ValueError, match=r"REPRO_ARTIFACTS.*absolute"):
        resolve_artifacts_root()


def test_artifacts_root_rejects_relative_explicit_argument():
    with pytest.raises(ValueError, match=r"artifacts root.*absolute"):
        resolve_artifacts_root("relative/dir")


def test_artifacts_dir_creates_the_directory(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "made" / "deep"))
    created = artifacts_dir()
    assert created == tmp_path / "made" / "deep"
    assert created.is_dir()


def test_digest_is_stable_and_sensitive():
    assert _digest({"a": 1}) == _digest({"a": 1})
    assert _digest({"a": 1}) != _digest({"a": 2})


def test_harness_caches_simulators_and_datasets(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    harness = Harness(tiny_profile())
    assert harness.simulator(32.0) is harness.simulator(32.0)
    first = harness.benchmark("ispd2019", "L")
    second = harness.benchmark("ispd2019", "L")
    assert first is second
    assert len(first.train) == 3
    # A second harness instance reloads the dataset from the on-disk cache.
    other = Harness(tiny_profile())
    reloaded = other.benchmark("ispd2019", "L")
    np.testing.assert_allclose(reloaded.train.masks, first.train.masks)


def test_harness_trains_and_caches_model(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    harness = Harness(tiny_profile())
    model, history = harness.trained_model("doinn", "ispd2019", "L")
    assert history["epochs"] == 1
    weights = list(tmp_path.glob("model-doinn-*.npz"))
    assert len(weights) == 1
    # Second call returns the cached pair without retraining.
    model2, history2 = harness.trained_model("doinn", "ispd2019", "L")
    assert model2 is model
    # A fresh harness loads from disk instead of training again.
    fresh = Harness(tiny_profile())
    model3, history3 = fresh.trained_model("doinn", "ispd2019", "L")
    assert history3["epoch_losses"] == history["epoch_losses"]


def test_benchmark_config_resolutions():
    harness = Harness(tiny_profile())
    low = harness.benchmark_config("n14", "L")
    high = harness.benchmark_config("n14", "H")
    assert low.image_size == 32 and high.image_size == 64
    with pytest.raises(ValueError):
        harness.benchmark_config("n14", "X")


# --------------------------------------------------------------------- #
# Training-free experiments
# --------------------------------------------------------------------- #
def test_table5_7_architecture_summary():
    result = run_table5_7(image_size=2048)
    assert 1_200_000 < result["parameters"] < 1_500_000
    assert result["modes_per_axis"] == 50
    text = format_table5_7(result)
    assert "AvePooling" in text and "2048" in text


def test_table8_rows(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    result = run_table8(Harness(tiny_profile()))
    assert dict(result["paper"])["Batch Size"] == 16
    text = format_table8(result)
    assert "Adam" in text


def test_fourier_cost_comparison():
    result = run_fourier_cost(image_size=64, channels=4, modes=4, repeats=1)
    assert result["optimized_unit_s"] > 0
    assert result["fno_stack_s"] > result["fno_layer_s"]
    text = format_fourier_cost(result)
    assert "Optimized Fourier unit" in text
