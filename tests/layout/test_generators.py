"""Tests for design rules and synthetic layout generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout import (
    ICCAD2013_RULES,
    ISPD2019_RULES,
    N14_RULES,
    generate_large_layout,
    generate_layout,
    generate_metal_layout,
    generate_via_layout,
    rules_for,
)
from repro.layout.design_rules import DesignRules


def test_rules_lookup():
    assert rules_for("iccad2013").layer_type == "metal"
    assert rules_for("ISPD2019").layer_type == "via"
    assert rules_for("n14").via_size < rules_for("ispd2019").via_size
    with pytest.raises(KeyError):
        rules_for("unknown")


def test_rules_validation():
    with pytest.raises(ValueError):
        DesignRules("bad", "via", 100, 0, 10, 10, 10, 0, 0.1)
    with pytest.raises(ValueError):
        DesignRules("bad", "via", 100, 10, 10, 10, 10, 0, 1.5)


@pytest.mark.parametrize("rules", [ISPD2019_RULES, N14_RULES])
def test_via_layout_respects_bounds_and_size(rules, rng):
    layout = generate_via_layout(rules, rng, tile_size=1024.0)
    assert len(layout) > 0
    for rect in layout:
        assert layout.bounds.contains_rect(rect)
        assert rect.width == pytest.approx(rules.via_size)
        assert rect.height == pytest.approx(rules.via_size)


def test_via_layout_respects_spacing(rng):
    rules = ISPD2019_RULES
    layout = generate_via_layout(rules, rng, tile_size=1024.0)
    shapes = layout.shapes
    for i, a in enumerate(shapes):
        grown = a.expanded(rules.min_space - 1e-9)
        for b in shapes[i + 1 :]:
            assert not grown.intersects(b), "vias violate minimum spacing"


def test_metal_layout_shapes_are_manhattan_wires(rng):
    layout = generate_metal_layout(ICCAD2013_RULES, rng, tile_size=1024.0)
    assert len(layout) > 0
    for rect in layout:
        width = min(rect.width, rect.height)
        assert width >= ICCAD2013_RULES.min_width - 1e-9
        assert max(rect.width, rect.height) <= ICCAD2013_RULES.max_wire_length + 1e-9


def test_generate_layout_dispatches_by_layer(rng):
    via = generate_layout(ISPD2019_RULES, rng, tile_size=512.0)
    metal = generate_layout(ICCAD2013_RULES, rng, tile_size=512.0)
    assert via.name == "ispd2019"
    assert metal.name == "iccad2013"


def test_density_scale_increases_density(rng):
    sparse = generate_via_layout(N14_RULES, np.random.default_rng(7), tile_size=1024.0, density_scale=0.5)
    dense = generate_via_layout(N14_RULES, np.random.default_rng(7), tile_size=1024.0, density_scale=2.0)
    assert dense.density > sparse.density


def test_generator_is_deterministic_for_seed():
    a = generate_via_layout(ISPD2019_RULES, np.random.default_rng(3), tile_size=512.0)
    b = generate_via_layout(ISPD2019_RULES, np.random.default_rng(3), tile_size=512.0)
    assert a.shapes == b.shapes


def test_large_layout_scales_bounds(rng):
    large = generate_large_layout(ISPD2019_RULES, rng, scale=2)
    assert large.bounds.width == pytest.approx(2 * ISPD2019_RULES.tile_size)
    assert len(large) > 0
    for rect in large:
        assert large.bounds.contains_rect(rect)


def test_large_layout_is_denser_than_nominal(rng):
    nominal = generate_layout(ISPD2019_RULES, np.random.default_rng(11))
    large = generate_large_layout(ISPD2019_RULES, np.random.default_rng(11), scale=2, density_scale=2.0)
    assert large.density > nominal.density
