"""Tests for rasterization and tiling (large-tile scheme support)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import (
    Layout,
    Rect,
    assemble_image,
    coverage_rasterize,
    extract_tiles,
    rasterize,
    split_image,
    stitch_cores,
)
from repro.layout.tiling import TileSpec, tile_grid


def test_rasterize_single_rect_area():
    layout = Layout(bounds=Rect(0, 0, 16, 16), shapes=[Rect(2, 3, 6, 9)])
    image = rasterize(layout, pixel_size=1.0)
    assert image.shape == (16, 16)
    assert image.sum() == pytest.approx(4 * 6)
    # Row index is y: the rectangle occupies rows 3..9 and columns 2..6.
    assert image[5, 3] == 1.0
    assert image[0, 0] == 0.0


def test_rasterize_pixel_size_scales_resolution():
    layout = Layout(bounds=Rect(0, 0, 32, 32), shapes=[Rect(0, 0, 16, 16)])
    fine = rasterize(layout, pixel_size=1.0)
    coarse = rasterize(layout, pixel_size=2.0)
    assert fine.shape == (32, 32)
    assert coarse.shape == (16, 16)
    assert fine.sum() == pytest.approx(4 * coarse.sum())


def test_rasterize_values_are_binary(rng):
    shapes = [Rect(float(i), float(i), float(i + 3), float(i + 3)) for i in range(0, 20, 2)]
    layout = Layout(bounds=Rect(0, 0, 32, 32), shapes=shapes)
    image = rasterize(layout)
    assert set(np.unique(image)).issubset({0.0, 1.0})


def test_coverage_rasterize_partial_pixels():
    layout = Layout(bounds=Rect(0, 0, 4, 4), shapes=[Rect(0.5, 0.5, 1.5, 1.5)])
    image = coverage_rasterize(layout, pixel_size=1.0)
    assert image.sum() == pytest.approx(1.0)
    assert image[0, 0] == pytest.approx(0.25)


def test_coverage_rasterize_matches_hard_rasterize_on_aligned_shapes():
    layout = Layout(bounds=Rect(0, 0, 8, 8), shapes=[Rect(2, 2, 6, 6)])
    np.testing.assert_allclose(coverage_rasterize(layout), rasterize(layout))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
)
def test_rasterized_area_matches_rect_area(x, y, w, h):
    layout = Layout(bounds=Rect(0, 0, 32, 32), shapes=[Rect(x, y, min(x + w, 32), min(y + h, 32))])
    image = rasterize(layout, pixel_size=1.0)
    assert image.sum() == pytest.approx(layout.shapes[0].area)


# --------------------------------------------------------------------- #
# Tiling
# --------------------------------------------------------------------- #
def test_split_and_assemble_roundtrip(rng):
    image = rng.standard_normal((32, 32))
    tiles, specs = split_image(image, 8)
    assert tiles.shape == (16, 8, 8)
    np.testing.assert_allclose(assemble_image(tiles, specs, image.shape), image)


def test_extract_tiles_half_overlap(rng):
    image = rng.standard_normal((32, 32))
    tiles, specs = extract_tiles(image, 16)
    # stride 8: 3x3 tiles
    assert tiles.shape == (9, 16, 16)
    offsets = {(s.y0, s.x0) for s in specs}
    assert (0, 0) in offsets and (8, 8) in offsets and (16, 16) in offsets


def test_extract_tiles_requires_divisible_size(rng):
    with pytest.raises(ValueError):
        extract_tiles(rng.standard_normal((30, 30)), 16)


def test_stitch_cores_reconstructs_identity(rng):
    """If tiles are raw crops, stitching their cores reproduces the image."""
    image = rng.standard_normal((32, 32))
    tiles, specs = extract_tiles(image, 16)
    stitched = stitch_cores(tiles, specs, image.shape, margin=4)
    np.testing.assert_allclose(stitched, image)


def test_stitch_cores_with_channels(rng):
    image = rng.standard_normal((32, 32))
    tiles, specs = extract_tiles(image, 16)
    tiles_c = np.stack([tiles, 2.0 * tiles], axis=1)  # (n, 2, 16, 16)
    stitched = stitch_cores(tiles_c, specs, image.shape, margin=4)
    assert stitched.shape == (2, 32, 32)
    np.testing.assert_allclose(stitched[0], image)
    np.testing.assert_allclose(stitched[1], 2.0 * image)


# --------------------------------------------------------------------- #
# Vectorized tiling == the original python loops, bit for bit
# --------------------------------------------------------------------- #
def _loop_extract_tiles(image, tile_size):
    """The pre-vectorization ``extract_tiles`` loop, kept as the reference."""
    h, w = image.shape
    stride = tile_size // 2
    tiles, specs = [], []
    for row, y0 in enumerate(range(0, h - tile_size + 1, stride)):
        for col, x0 in enumerate(range(0, w - tile_size + 1, stride)):
            tiles.append(image[y0 : y0 + tile_size, x0 : x0 + tile_size].copy())
            specs.append(TileSpec(row=row, col=col, y0=y0, x0=x0, size=tile_size))
    return np.stack(tiles), specs


def _loop_split_image(image, tile_size):
    """The pre-vectorization ``split_image`` loop, kept as the reference."""
    h, w = image.shape
    tiles, specs = [], []
    for row, y0 in enumerate(range(0, h, tile_size)):
        for col, x0 in enumerate(range(0, w, tile_size)):
            tiles.append(image[y0 : y0 + tile_size, x0 : x0 + tile_size].copy())
            specs.append(TileSpec(row=row, col=col, y0=y0, x0=x0, size=tile_size))
    return np.stack(tiles), specs


@pytest.mark.parametrize("shape, tile", [((32, 32), 16), ((64, 32), 16), ((48, 96), 8)])
def test_extract_tiles_matches_loop_reference(rng, shape, tile):
    image = rng.standard_normal(shape)
    tiles, specs = extract_tiles(image, tile)
    ref_tiles, ref_specs = _loop_extract_tiles(image, tile)
    assert np.array_equal(tiles, ref_tiles)
    assert specs == ref_specs
    assert tiles.flags["C_CONTIGUOUS"]


@pytest.mark.parametrize("shape, tile", [((32, 32), 8), ((64, 32), 16), ((24, 48), 8)])
def test_split_image_matches_loop_reference(rng, shape, tile):
    image = rng.standard_normal(shape)
    tiles, specs = split_image(image, tile)
    ref_tiles, ref_specs = _loop_split_image(image, tile)
    assert np.array_equal(tiles, ref_tiles)
    assert specs == ref_specs
    assert tiles.flags["C_CONTIGUOUS"]


@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.uint8])
def test_tiling_preserves_dtype(rng, dtype):
    image = (rng.random((32, 32)) * 100).astype(dtype)
    assert extract_tiles(image, 16)[0].dtype == dtype
    assert split_image(image, 8)[0].dtype == dtype


def test_tile_grid_matches_extract_tiles_specs(rng):
    image = rng.standard_normal((64, 32))
    _, specs = extract_tiles(image, 16)
    assert tile_grid((64, 32), 16) == specs


def test_tile_grid_requires_divisible_size():
    with pytest.raises(ValueError):
        tile_grid((30, 32), 16)


def test_stitch_cores_ignores_tile_boundary_garbage(rng):
    """Values inside the margin ring of interior tile edges must not leak out."""
    image = rng.standard_normal((32, 32))
    tiles, specs = extract_tiles(image, 16)
    corrupted = tiles.copy()
    margin = 4
    for i, spec in enumerate(specs):
        # Corrupt the outer ring of every tile (what the optical diameter
        # argument says cannot be trusted).
        corrupted[i][:margin, :] = 999.0 if spec.y0 != 0 else corrupted[i][:margin, :]
        corrupted[i][-margin:, :] = 999.0 if spec.y0 + 16 != 32 else corrupted[i][-margin:, :]
        corrupted[i][:, :margin] = 999.0 if spec.x0 != 0 else corrupted[i][:, :margin]
        corrupted[i][:, -margin:] = 999.0 if spec.x0 + 16 != 32 else corrupted[i][:, -margin:]
    stitched = stitch_cores(corrupted, specs, image.shape, margin=margin)
    np.testing.assert_allclose(stitched, image)
