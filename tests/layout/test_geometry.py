"""Tests for geometry primitives (Rect, Layout)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Layout, Rect


def rects(max_coord=100.0):
    coords = st.floats(min_value=0.0, max_value=max_coord, allow_nan=False)
    sizes = st.floats(min_value=0.5, max_value=max_coord, allow_nan=False)
    return st.builds(lambda x, y, w, h: Rect(x, y, x + w, y + h), coords, coords, sizes, sizes)


def test_rect_rejects_degenerate():
    with pytest.raises(ValueError):
        Rect(0, 0, 0, 1)
    with pytest.raises(ValueError):
        Rect(0, 0, 1, 0)
    with pytest.raises(ValueError):
        Rect(5, 5, 4, 6)


def test_rect_properties():
    r = Rect(1.0, 2.0, 4.0, 8.0)
    assert r.width == 3.0
    assert r.height == 6.0
    assert r.area == 18.0
    assert r.center == (2.5, 5.0)


def test_rect_translation_and_expansion():
    r = Rect(0, 0, 2, 2)
    assert r.translated(1, 2) == Rect(1, 2, 3, 4)
    assert r.expanded(1) == Rect(-1, -1, 3, 3)
    assert r.expanded(-0.5) == Rect(0.5, 0.5, 1.5, 1.5)


def test_rect_intersection():
    a = Rect(0, 0, 4, 4)
    b = Rect(2, 2, 6, 6)
    c = Rect(10, 10, 12, 12)
    assert a.intersects(b)
    assert not a.intersects(c)
    assert a.intersection(b) == Rect(2, 2, 4, 4)
    assert a.intersection(c) is None


def test_rect_touching_edges_do_not_intersect():
    a = Rect(0, 0, 2, 2)
    b = Rect(2, 0, 4, 2)
    assert not a.intersects(b)


def test_rect_containment():
    outer = Rect(0, 0, 10, 10)
    inner = Rect(2, 2, 5, 5)
    assert outer.contains_rect(inner)
    assert not inner.contains_rect(outer)
    assert outer.contains_point(0, 0)
    assert not outer.contains_point(10, 10)


@settings(max_examples=50, deadline=None)
@given(rects(), rects())
def test_intersection_is_commutative_and_contained(a, b):
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert ab == ba
        assert a.contains_rect(ab) or ab.area <= a.area + 1e-9
        assert ab.area <= min(a.area, b.area) + 1e-9


@settings(max_examples=50, deadline=None)
@given(rects(), st.floats(min_value=-200, max_value=200), st.floats(min_value=-200, max_value=200))
def test_translation_preserves_area(rect, dx, dy):
    assert rect.translated(dx, dy).area == pytest.approx(rect.area)


def test_layout_density_and_area():
    layout = Layout(bounds=Rect(0, 0, 10, 10))
    layout.add(Rect(0, 0, 5, 5))
    layout.add(Rect(5, 5, 10, 10))
    assert layout.total_area == 50.0
    assert layout.density == pytest.approx(0.5)
    assert len(layout) == 2


def test_layout_clipping_rereferences_origin():
    layout = Layout(bounds=Rect(0, 0, 10, 10), shapes=[Rect(4, 4, 8, 8)])
    window = Rect(5, 5, 10, 10)
    clipped = layout.clipped(window)
    assert len(clipped) == 1
    assert clipped.shapes[0] == Rect(0, 0, 3, 3)
    assert clipped.bounds == Rect(0, 0, 5, 5)


def test_layout_clipping_drops_outside_shapes():
    layout = Layout(bounds=Rect(0, 0, 10, 10), shapes=[Rect(0, 0, 1, 1), Rect(8, 8, 9, 9)])
    clipped = layout.clipped(Rect(4, 4, 6, 6))
    assert len(clipped) == 0


def test_layout_iteration():
    shapes = [Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)]
    layout = Layout(bounds=Rect(0, 0, 5, 5), shapes=list(shapes))
    assert list(layout) == shapes
