"""Per-rule fixture corpus: every rule fires on its bad fixture and stays
quiet on its good one.

Fixtures are written to ``tmp_path`` (with repo-shaped relative paths where
a rule's allowlist cares) and analyzed in isolation, so these tests pin the
rules themselves — the repo-wide "zero findings" gate lives in
``test_cli.py``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro import knobs
from repro.analysis import analyze


def lint(tmp_path: Path, source: str, relpath: str = "pkg/mod.py"):
    """Write ``source`` at ``tmp_path/relpath`` and lint just that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze([target], root=tmp_path)


def rule_ids(result):
    return [f.rule for f in result.findings]


# --------------------------------------------------------------------- #
# ENV001: no os.environ outside the knob registry
# --------------------------------------------------------------------- #

ENV001_BAD_ATTR = """\
    import os
    value = os.environ.get("REPRO_NUM_WORKERS")
"""

ENV001_BAD_GETENV = """\
    import os
    value = os.getenv("REPRO_STREAMING", "1")
"""

ENV001_BAD_IMPORT = """\
    from os import environ
    value = environ["REPRO_DEGRADE"]
"""

ENV001_GOOD = """\
    from repro import knobs
    value = knobs.read_flag("REPRO_STREAMING")
"""


@pytest.mark.parametrize(
    "source", [ENV001_BAD_ATTR, ENV001_BAD_GETENV, ENV001_BAD_IMPORT]
)
def test_env001_flags_raw_environment_reads(tmp_path, source):
    result = lint(tmp_path, source)
    assert rule_ids(result) == ["ENV001"]
    assert "repro.knobs" in result.findings[0].message


def test_env001_quiet_on_registry_reads(tmp_path):
    assert rule_ids(lint(tmp_path, ENV001_GOOD)) == []


def test_env001_allows_the_registry_itself(tmp_path):
    result = lint(tmp_path, ENV001_BAD_ATTR, relpath="src/repro/knobs.py")
    assert rule_ids(result) == []


# --------------------------------------------------------------------- #
# ENV002: registry <-> docs/configuration.md sync (project-level rule)
# --------------------------------------------------------------------- #

def write_synced_docs(root: Path) -> Path:
    """A minimal configuration.md whose tables are generated and current."""
    skeleton = ["# Configuration", ""]
    for key, title in knobs.SECTIONS:
        skeleton += [f"## {title}", "", f"<!-- knob-table:{key}:begin -->",
                     f"<!-- knob-table:{key}:end -->", ""]
    text, problems = knobs.sync_markdown("\n".join(skeleton))
    assert not problems
    doc = root / "docs" / "configuration.md"
    doc.parent.mkdir(parents=True, exist_ok=True)
    doc.write_text(text, encoding="utf-8")
    return doc


def test_env002_quiet_when_docs_are_synced(tmp_path):
    write_synced_docs(tmp_path)
    result = lint(tmp_path, "x = 1\n")
    assert rule_ids(result) == []


def test_env002_flags_undocumented_knob(tmp_path):
    doc = write_synced_docs(tmp_path)
    # Drop one generated row: that knob is now registered but undocumented,
    # and the table no longer matches its regenerated form.
    lines = [
        line for line in doc.read_text(encoding="utf-8").splitlines()
        if not line.startswith("| `REPRO_STREAMING`")
    ]
    doc.write_text("\n".join(lines), encoding="utf-8")
    result = lint(tmp_path, "x = 1\n")
    messages = [f.message for f in result.findings if f.rule == "ENV002"]
    assert any("`REPRO_STREAMING`" in m and "no table row" in m for m in messages)
    assert any("out of date" in m for m in messages)


def test_env002_flags_unregistered_doc_row(tmp_path):
    doc = write_synced_docs(tmp_path)
    doc.write_text(
        doc.read_text(encoding="utf-8")
        + "\n| `REPRO_BOGUS` | off | not a real knob |\n",
        encoding="utf-8",
    )
    result = lint(tmp_path, "x = 1\n")
    assert any(
        f.rule == "ENV002" and "`REPRO_BOGUS`" in f.message
        and "no registered knob" in f.message
        for f in result.findings
    )


def test_env002_flags_missing_markers(tmp_path):
    doc = tmp_path / "docs" / "configuration.md"
    doc.parent.mkdir(parents=True)
    doc.write_text("# Configuration\n\nno tables here\n", encoding="utf-8")
    result = lint(tmp_path, "x = 1\n")
    marker_findings = [
        f for f in result.findings
        if f.rule == "ENV002" and "markers" in f.message
    ]
    assert len(marker_findings) == len(knobs.SECTIONS)


def test_env002_skips_non_repo_checkouts(tmp_path):
    # No docs/configuration.md under the analysis root: nothing to sync.
    assert rule_ids(lint(tmp_path, "x = 1\n")) == []


# --------------------------------------------------------------------- #
# CONFIG001: execution knobs stay inside ExecutionConfig on public surfaces
# --------------------------------------------------------------------- #

CONFIG001_BAD_FUNC = """\
    def build_pipeline(model, num_workers=None, streaming=None):
        return model
"""

CONFIG001_BAD_METHOD = """\
    class Harness:
        def __init__(self, blas_threads=None):
            self.blas_threads = blas_threads
"""

CONFIG001_GOOD_CONFIG = """\
    def build_pipeline(model, config=None, batch_size=None, tile_size=None):
        return model
"""

CONFIG001_PRAGMA = """\
    # repro: ok(CONFIG001, deprecated legacy shim kept for one release)
    def build_pipeline(model, num_workers=None):
        return model
"""

CONFIG001_PRIVATE = """\
    def _thread_knobs(num_workers, streaming):
        return num_workers, streaming

    def test_sweep(num_workers):
        return num_workers

    def public():
        def sweep(compile=False):
            return compile
        return sweep
"""


def test_config001_flags_knob_params_on_target_surfaces(tmp_path):
    result = lint(tmp_path, CONFIG001_BAD_FUNC, relpath="src/repro/pipeline/engine.py")
    assert rule_ids(result) == ["CONFIG001"]
    assert "num_workers, streaming" in result.findings[0].message


def test_config001_flags_init_of_public_classes(tmp_path):
    result = lint(
        tmp_path, CONFIG001_BAD_METHOD, relpath="src/repro/experiments/harness.py"
    )
    assert rule_ids(result) == ["CONFIG001"]


def test_config001_covers_benchmarks_and_examples(tmp_path):
    for relpath in ("benchmarks/conftest.py", "examples/demo.py"):
        result = lint(tmp_path, CONFIG001_BAD_FUNC, relpath=relpath)
        assert rule_ids(result) == ["CONFIG001"], relpath


def test_config001_quiet_on_config_route_and_per_call_args(tmp_path):
    result = lint(
        tmp_path, CONFIG001_GOOD_CONFIG, relpath="src/repro/pipeline/engine.py"
    )
    assert rule_ids(result) == []


def test_config001_quiet_outside_target_surfaces(tmp_path):
    # The mechanism layers keep per-knob signatures (each implements one knob).
    result = lint(
        tmp_path, CONFIG001_BAD_FUNC, relpath="src/repro/pipeline/parallel.py"
    )
    assert rule_ids(result) == []


def test_config001_suppressible_with_pragma(tmp_path):
    result = lint(tmp_path, CONFIG001_PRAGMA, relpath="src/repro/pipeline/engine.py")
    assert rule_ids(result) == []


def test_config001_skips_private_test_and_nested_functions(tmp_path):
    result = lint(tmp_path, CONFIG001_PRIVATE, relpath="benchmarks/bench_demo.py")
    assert rule_ids(result) == []


# --------------------------------------------------------------------- #
# SHM001: SharedMemory stays registry-managed
# --------------------------------------------------------------------- #

SHM001_BAD_CREATE = """\
    from multiprocessing.shared_memory import SharedMemory

    def make():
        return SharedMemory(name="seg", create=True, size=64)
"""

SHM001_BAD_ATTACH = """\
    from multiprocessing.shared_memory import SharedMemory

    def attach(name):
        shm = SharedMemory(name=name)
        return bytes(shm.buf)
"""

SHM001_GOOD_ATTACH = """\
    from multiprocessing.shared_memory import SharedMemory

    def attach(name):
        shm = None
        try:
            shm = SharedMemory(name=name)
            return bytes(shm.buf)
        finally:
            if shm is not None:
                shm.close()
"""


def test_shm001_flags_create_outside_registry(tmp_path):
    result = lint(tmp_path, SHM001_BAD_CREATE)
    assert rule_ids(result) == ["SHM001"]
    assert "streaming" in result.findings[0].message


def test_shm001_allows_create_in_streaming_registry(tmp_path):
    result = lint(tmp_path, SHM001_BAD_CREATE, relpath="src/repro/pipeline/streaming.py")
    assert rule_ids(result) == []


def test_shm001_flags_unguarded_attach(tmp_path):
    result = lint(tmp_path, SHM001_BAD_ATTACH)
    assert rule_ids(result) == ["SHM001"]
    assert "try/finally" in result.findings[0].message


def test_shm001_allows_attach_under_try_finally(tmp_path):
    assert rule_ids(lint(tmp_path, SHM001_GOOD_ATTACH)) == []


def test_shm001_allows_worker_segment_cache(tmp_path):
    source = SHM001_BAD_ATTACH.replace("def attach(", "def _map_segment(")
    result = lint(tmp_path, source, relpath="src/repro/pipeline/parallel.py")
    assert rule_ids(result) == []


# --------------------------------------------------------------------- #
# DTYPE001: narrowing confined to the backend module
# --------------------------------------------------------------------- #

DTYPE001_BAD_ATTR = """\
    import numpy as np

    def narrow(x):
        return x.astype(np.float32)
"""

DTYPE001_BAD_STRING = """\
    import numpy as np

    def narrow(x):
        return x.astype("float32")
"""

DTYPE001_GOOD = '''\
    import numpy as np

    def widen(x):
        """The float32 lane re-widens here (prose mention is fine)."""
        return x.astype(np.float64)
'''


@pytest.mark.parametrize("source", [DTYPE001_BAD_ATTR, DTYPE001_BAD_STRING])
def test_dtype001_flags_narrowing_literals(tmp_path, source):
    result = lint(tmp_path, source)
    assert rule_ids(result) == ["DTYPE001"]
    assert "backends" in result.findings[0].message


def test_dtype001_quiet_on_float64_and_docstrings(tmp_path):
    assert rule_ids(lint(tmp_path, DTYPE001_GOOD)) == []


def test_dtype001_allows_the_backend_module(tmp_path):
    result = lint(tmp_path, DTYPE001_BAD_ATTR, relpath="src/repro/nn/backends.py")
    assert rule_ids(result) == []


# --------------------------------------------------------------------- #
# ALLOC001: no fresh allocations in the fused hot path
# --------------------------------------------------------------------- #

ALLOC001_BAD_CALL = """\
    import numpy as np

    def forward(x):
        out = np.empty(x.shape)
        return out
"""

ALLOC001_BAD_ALIAS = """\
    import numpy as np

    def forward(x, padded):
        alloc = np.zeros if padded else np.empty
        return alloc(x.shape)
"""

ALLOC001_GOOD_HELPER = """\
    import numpy as np

    def _cached_zeros(cache, key, shape):
        buf = cache.get(key)
        if buf is None or buf.shape != shape:
            buf = cache[key] = np.zeros(shape)
        return buf
"""


def test_alloc001_flags_fresh_allocation_in_hot_path(tmp_path):
    result = lint(tmp_path, ALLOC001_BAD_CALL, relpath="src/repro/nn/functional.py")
    assert rule_ids(result) == ["ALLOC001"]
    assert "scratch cache" in result.findings[0].message


def test_alloc001_flags_aliased_allocators(tmp_path):
    result = lint(tmp_path, ALLOC001_BAD_ALIAS, relpath="src/repro/nn/fusion.py")
    assert rule_ids(result) == ["ALLOC001", "ALLOC001"]
    assert all("aliased" in f.message for f in result.findings)


def test_alloc001_allows_the_scratch_cache_helper(tmp_path):
    result = lint(tmp_path, ALLOC001_GOOD_HELPER, relpath="src/repro/nn/fusion.py")
    assert rule_ids(result) == []


def test_alloc001_ignores_cold_modules(tmp_path):
    assert rule_ids(lint(tmp_path, ALLOC001_BAD_CALL)) == []


# --------------------------------------------------------------------- #
# EXC001: broad exception handlers must justify themselves
# --------------------------------------------------------------------- #

EXC001_BAD_BROAD = """\
    def run(step):
        try:
            step()
        except Exception:
            pass
"""

EXC001_BAD_BARE = """\
    def run(step):
        try:
            step()
        except:
            pass
"""

EXC001_BAD_TUPLE = """\
    def run(step):
        try:
            step()
        except (ValueError, Exception):
            pass
"""

EXC001_GOOD_RERAISE = """\
    def run(step, cleanup):
        try:
            step()
        except BaseException:
            cleanup()
            raise
"""

EXC001_GOOD_NARROW = """\
    def run(step):
        try:
            step()
        except ValueError:
            pass
"""


@pytest.mark.parametrize(
    "source", [EXC001_BAD_BROAD, EXC001_BAD_BARE, EXC001_BAD_TUPLE]
)
def test_exc001_flags_swallowing_broad_handlers(tmp_path, source):
    result = lint(tmp_path, source)
    assert rule_ids(result) == ["EXC001"]


@pytest.mark.parametrize("source", [EXC001_GOOD_RERAISE, EXC001_GOOD_NARROW])
def test_exc001_quiet_on_reraise_and_narrow(tmp_path, source):
    assert rule_ids(lint(tmp_path, source)) == []


# --------------------------------------------------------------------- #
# PRAGMA001: pragma hygiene
# --------------------------------------------------------------------- #

def test_pragma001_flags_malformed_pragma(tmp_path):
    result = lint(tmp_path, "x = 1  # repro: okay then\n")
    assert rule_ids(result) == ["PRAGMA001"]
    assert "malformed" in result.findings[0].message


def test_pragma001_flags_empty_reason(tmp_path):
    result = lint(tmp_path, "x = 1  # repro: ok(EXC001, )\n")
    assert rule_ids(result) == ["PRAGMA001"]
    assert "empty" in result.findings[0].message


def test_pragma001_flags_unknown_rule(tmp_path):
    result = lint(tmp_path, "x = 1  # repro: ok(NOPE001, because I said so)\n")
    assert rule_ids(result) == ["PRAGMA001"]
    assert "NOPE001" in result.findings[0].message


def test_pragma001_quiet_on_wellformed_pragma(tmp_path):
    source = EXC001_BAD_BROAD.replace(
        "except Exception:",
        "except Exception:  # repro: ok(EXC001, fixture: deliberate swallow)",
    )
    assert rule_ids(lint(tmp_path, source)) == []
