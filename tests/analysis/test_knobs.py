"""The central knob registry: parsers, registration, env reads, and the
registry <-> docs meta-contract."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import knobs

REPO_ROOT = Path(__file__).resolve().parents[2]


# --------------------------------------------------------------------- #
# parsers — the single truthy parser that replaced four per-module copies
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
def test_parse_bool_true_spellings(raw):
    assert knobs.parse_bool(raw) is True


@pytest.mark.parametrize("raw", ["0", "False", "no", " OFF "])
def test_parse_bool_false_spellings(raw):
    assert knobs.parse_bool(raw) is False


@pytest.mark.parametrize("raw", ["", "   "])
def test_parse_bool_empty_means_unset(raw):
    assert knobs.parse_bool(raw) is None


@pytest.mark.parametrize("raw", ["2", "enable", "y", "n", "tru"])
def test_parse_bool_invalid_strings_raise_naming_the_knob(raw):
    """The pinned invalid-string contract: KnobError (a ValueError) naming
    the knob and the accepted spellings — previously the four duplicated
    parsers disagreed on exactly this case."""
    with pytest.raises(knobs.KnobError, match=r"REPRO_STREAMING.*boolean flag"):
        knobs.parse_bool(raw, name="REPRO_STREAMING")
    with pytest.raises(ValueError):  # KnobError subclasses ValueError
        knobs.parse_bool(raw)


def test_parse_int_and_minimum():
    assert knobs.parse_int("4") == 4
    assert knobs.parse_int("  -2 ") == -2
    assert knobs.parse_int("") is None
    with pytest.raises(knobs.KnobError, match=r"REPRO_NUM_WORKERS.*not an integer"):
        knobs.parse_int("four", name="REPRO_NUM_WORKERS")
    with pytest.raises(knobs.KnobError, match=r"must be >= 0"):
        knobs.parse_int("-1", name="REPRO_NUM_WORKERS", minimum=0)


def test_parse_float_and_minimum():
    assert knobs.parse_float("1.5") == 1.5
    assert knobs.parse_float("") is None
    with pytest.raises(knobs.KnobError, match=r"REPRO_WORKER_TIMEOUT.*not a number"):
        knobs.parse_float("soon", name="REPRO_WORKER_TIMEOUT")
    with pytest.raises(knobs.KnobError, match=r"must be >= 0"):
        knobs.parse_float("-0.5", name="X", minimum=0.0)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

EXPECTED_KNOBS = {
    "REPRO_NUM_WORKERS", "REPRO_STREAMING", "REPRO_RESULT_CACHE",
    "REPRO_INCREMENTAL_OPC", "REPRO_BACKEND", "REPRO_BLAS_THREADS",
    "REPRO_WORKER_TIMEOUT", "REPRO_WORKER_RETRIES", "REPRO_DEGRADE",
    "REPRO_FAULT_PLAN", "REPRO_PROFILE", "REPRO_ARTIFACTS", "REPRO_COMPILE",
}


def test_registry_contains_every_engine_knob():
    assert set(knobs.knob_names()) == EXPECTED_KNOBS


def test_every_knob_is_documented_and_sectioned():
    sections = {key for key, _ in knobs.SECTIONS}
    for knob in knobs.all_knobs():
        assert knob.name.startswith("REPRO_")
        assert knob.doc.strip(), knob.name
        assert knob.section in sections, knob.name
    assert knobs.get_knob("REPRO_STREAMING").section == "execution"


def test_get_raw_rejects_unregistered_names():
    with pytest.raises(knobs.KnobError, match=r"REPRO_NOT_A_KNOB.*not a registered knob"):
        knobs.get_raw("REPRO_NOT_A_KNOB")


# --------------------------------------------------------------------- #
# env reads
# --------------------------------------------------------------------- #

def test_read_flag_roundtrip(monkeypatch):
    monkeypatch.delenv("REPRO_STREAMING", raising=False)
    assert knobs.read_flag("REPRO_STREAMING") is None
    monkeypatch.setenv("REPRO_STREAMING", "off")
    assert knobs.read_flag("REPRO_STREAMING") is False
    monkeypatch.setenv("REPRO_STREAMING", "maybe")
    with pytest.raises(knobs.KnobError, match="REPRO_STREAMING"):
        knobs.read_flag("REPRO_STREAMING")


def test_read_int_and_float_roundtrip(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_RETRIES", " 3 ")
    assert knobs.read_int("REPRO_WORKER_RETRIES", minimum=0) == 3
    monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "2.5")
    assert knobs.read_float("REPRO_WORKER_TIMEOUT") == 2.5
    monkeypatch.setenv("REPRO_WORKER_RETRIES", "-1")
    with pytest.raises(knobs.KnobError, match=r"REPRO_WORKER_RETRIES.*>= 0"):
        knobs.read_int("REPRO_WORKER_RETRIES", minimum=0)


def test_read_string_strips_and_treats_empty_as_unset(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_PLAN", "  kill@0:1  ")
    assert knobs.read_string("REPRO_FAULT_PLAN") == "kill@0:1"
    monkeypatch.setenv("REPRO_FAULT_PLAN", "   ")
    assert knobs.read_string("REPRO_FAULT_PLAN") is None


# --------------------------------------------------------------------- #
# registry <-> docs meta-contract (the human-readable side of ENV002)
# --------------------------------------------------------------------- #

def configuration_md() -> str:
    return (REPO_ROOT / "docs" / "configuration.md").read_text(encoding="utf-8")


def test_docs_and_registry_knob_sets_are_identical():
    documented = set(re.findall(r"^\| `(REPRO_[A-Z0-9_]+)`", configuration_md(), re.M))
    assert documented == set(knobs.knob_names())


def test_docs_tables_are_generated_and_current():
    text = configuration_md()
    regenerated, problems = knobs.sync_markdown(text)
    assert problems == []
    assert regenerated == text, "run python scripts/gen_config_docs.py"


def test_markdown_table_lists_each_section_knob():
    table = knobs.markdown_table("supervision")
    for name in ("REPRO_WORKER_TIMEOUT", "REPRO_WORKER_RETRIES", "REPRO_DEGRADE"):
        assert f"| `{name}` |" in table
    assert "REPRO_BACKEND" not in table
