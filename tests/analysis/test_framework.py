"""Framework-level behavior: pragma suppression, baselines, file collection,
finding formatting, and degraded parsing."""

from __future__ import annotations

import textwrap

from repro.analysis import (
    Finding,
    analyze,
    collect_files,
    format_baseline,
    load_baseline,
)

BAD_ENV_READ = textwrap.dedent(
    """\
    import os
    value = os.environ.get("REPRO_NUM_WORKERS")
    """
)


def write(tmp_path, relpath, source):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


# --------------------------------------------------------------------- #
# pragma suppression
# --------------------------------------------------------------------- #

def test_trailing_pragma_suppresses_that_line(tmp_path):
    target = write(
        tmp_path, "mod.py",
        """\
        import os
        value = os.environ.get("X")  # repro: ok(ENV001, fixture: testing suppression)
        """,
    )
    assert analyze([target], root=tmp_path).findings == []


def test_comment_line_pragma_covers_the_next_line(tmp_path):
    target = write(
        tmp_path, "mod.py",
        """\
        import os
        # repro: ok(ENV001, fixture: annotated on the line above)
        value = os.environ.get("X")
        """,
    )
    assert analyze([target], root=tmp_path).findings == []


def test_pragma_is_rule_specific(tmp_path):
    target = write(
        tmp_path, "mod.py",
        """\
        import os
        value = os.environ.get("X")  # repro: ok(EXC001, fixture: wrong rule id)
        """,
    )
    result = analyze([target], root=tmp_path)
    assert [f.rule for f in result.findings] == ["ENV001"]


def test_pragma_without_reason_suppresses_nothing(tmp_path):
    target = write(
        tmp_path, "mod.py",
        """\
        import os
        value = os.environ.get("X")  # repro: ok(ENV001,)
        """,
    )
    result = analyze([target], root=tmp_path)
    assert sorted(f.rule for f in result.findings) == ["ENV001", "PRAGMA001"]


# --------------------------------------------------------------------- #
# baseline round trip
# --------------------------------------------------------------------- #

def test_baseline_round_trip(tmp_path):
    target = write(tmp_path, "mod.py", BAD_ENV_READ)
    first = analyze([target], root=tmp_path)
    assert len(first.findings) == 1

    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text(format_baseline(first.findings), encoding="utf-8")

    second = analyze(
        [target], root=tmp_path, baseline=load_baseline(baseline_file)
    )
    assert second.findings == []
    assert second.suppressed_baseline == 1
    assert second.exit_code == 0
    assert "1 baselined" in second.summary()


def test_baseline_survives_line_drift(tmp_path):
    target = write(tmp_path, "mod.py", BAD_ENV_READ)
    baseline = set(
        f.baseline_key() for f in analyze([target], root=tmp_path).findings
    )
    # Shift the offending line down: the (rule, path, message) key still
    # matches even though the line number changed.
    write(tmp_path, "mod.py", "# a new leading comment\n" + BAD_ENV_READ)
    result = analyze([target], root=tmp_path, baseline=baseline)
    assert result.findings == []
    assert result.suppressed_baseline == 1


def test_baseline_does_not_hide_new_findings(tmp_path):
    target = write(tmp_path, "mod.py", BAD_ENV_READ)
    baseline = set(
        f.baseline_key() for f in analyze([target], root=tmp_path).findings
    )
    write(tmp_path, "mod.py", BAD_ENV_READ + 'other = os.getenv("Y")\n')
    result = analyze([target], root=tmp_path, baseline=baseline)
    assert [f.rule for f in result.findings] == ["ENV001"]
    assert "os.getenv" in result.findings[0].message
    assert result.exit_code == 1


# --------------------------------------------------------------------- #
# collection, formatting, degraded parsing
# --------------------------------------------------------------------- #

def test_collect_files_dedups_and_skips_caches(tmp_path):
    keep = write(tmp_path, "pkg/mod.py", "x = 1\n")
    write(tmp_path, "pkg/__pycache__/mod.cpython-311.py", "x = 1\n")
    write(tmp_path, "pkg/notes.txt", "not python\n")
    files = collect_files([tmp_path, keep])  # dir + explicit file: one entry
    assert files == [keep.resolve()]


def test_finding_format_is_path_line_rule_message():
    finding = Finding(rule="ENV001", path="src/mod.py", line=7, message="msg")
    assert finding.format() == "src/mod.py:7: ENV001 msg"
    assert finding.baseline_key() == "ENV001\tsrc/mod.py\tmsg"


def test_findings_are_sorted_and_paths_are_root_relative(tmp_path):
    write(tmp_path, "b.py", BAD_ENV_READ)
    write(tmp_path, "a.py", BAD_ENV_READ)
    result = analyze([tmp_path], root=tmp_path)
    assert [f.path for f in result.findings] == ["a.py", "b.py"]


def test_syntax_error_files_do_not_crash_the_run(tmp_path):
    write(tmp_path, "broken.py", "def oops(:\n")
    target = write(tmp_path, "mod.py", BAD_ENV_READ)
    result = analyze([tmp_path], root=tmp_path)
    assert result.files_scanned == 2
    assert [f.path for f in result.findings] == [target.name]
