"""CLI behavior (`python -m repro.analysis`) and the repo-wide gate."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import iter_rules
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = textwrap.dedent(
    """\
    import os
    value = os.environ.get("REPRO_NUM_WORKERS")
    """
)


def test_clean_tree_exits_zero(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n", encoding="utf-8")
    assert main([str(mod), "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) across 1 file(s)" in out


def test_findings_exit_one_with_greppable_lines(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(BAD_SOURCE, encoding="utf-8")
    assert main([str(mod), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "mod.py:2: ENV001 " in out
    assert "1 finding(s) across 1 file(s)" in out


def test_quiet_suppresses_per_finding_lines(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(BAD_SOURCE, encoding="utf-8")
    assert main([str(mod), "--root", str(tmp_path), "--quiet"]) == 1
    out = capsys.readouterr().out
    assert "ENV001" not in out
    assert "1 finding(s)" in out


def test_write_then_read_baseline(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(BAD_SOURCE, encoding="utf-8")
    baseline = tmp_path / "baseline.txt"

    assert main(
        [str(mod), "--root", str(tmp_path), "--write-baseline", str(baseline)]
    ) == 0
    assert "wrote 1 baseline entry" in capsys.readouterr().out

    assert main(
        [str(mod), "--root", str(tmp_path), "--baseline", str(baseline)]
    ) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_list_rules_prints_the_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in iter_rules():
        assert rule.id in out
    assert "ENV001" in out and "PRAGMA001" in out


def test_default_targets_require_a_repo_shaped_root(tmp_path, capsys):
    # No src/benchmarks/examples/scripts under the root: usage error (2).
    try:
        code = main(["--root", str(tmp_path)])
    except SystemExit as exc:  # argparse.error raises SystemExit(2)
        code = exc.code
    assert code == 2


def test_repo_is_clean_with_empty_baseline(capsys):
    """The CI gate: zero findings over the whole tree, no baseline."""
    targets = [
        str(REPO_ROOT / name)
        for name in ("src", "benchmarks", "examples", "scripts")
        if (REPO_ROOT / name).is_dir()
    ]
    assert len(targets) >= 3
    assert main([*targets, "--root", str(REPO_ROOT)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_ci_and_smoke_scripts_run_the_gate():
    ci = (REPO_ROOT / "scripts" / "ci.sh").read_text(encoding="utf-8")
    smoke = (REPO_ROOT / "scripts" / "smoke.sh").read_text(encoding="utf-8")
    gate = "python -m repro.analysis src benchmarks examples scripts"
    assert gate in ci
    assert gate in smoke
    # The gate runs before the tier-1 suite in CI.
    assert ci.index(gate) < ci.index("== tier-1 tests ==")
