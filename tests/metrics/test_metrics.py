"""Tests of the mIOU/mPA and contour metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    confusion_counts,
    contour_distance_stats,
    critical_dimension,
    extract_contour,
    iou,
    mean_iou,
    mean_pixel_accuracy,
    pixel_accuracy,
)


def test_perfect_prediction_scores_one():
    target = np.zeros((16, 16))
    target[4:12, 4:12] = 1.0
    assert iou(target, target) == 1.0
    assert pixel_accuracy(target, target) == 1.0
    assert mean_iou(target, target) == 1.0
    assert mean_pixel_accuracy(target, target) == 1.0


def test_disjoint_prediction_scores_low():
    target = np.zeros((16, 16))
    target[:8] = 1.0
    prediction = np.zeros((16, 16))
    prediction[8:] = 1.0
    assert iou(prediction, target) == 0.0
    assert pixel_accuracy(prediction, target) == 0.0
    assert mean_iou(prediction, target) == 0.0


def test_half_overlap_values():
    target = np.zeros((4, 4))
    target[:, :2] = 1.0
    prediction = np.zeros((4, 4))
    prediction[:2, :2] = 1.0
    # foreground: inter 4, union 8 -> 0.5 ; background: inter 8, union 12 -> 2/3
    assert iou(prediction, target) == pytest.approx(0.5)
    assert mean_iou(prediction, target) == pytest.approx(0.5 * (0.5 + 8 / 12))
    # foreground PA: 4/8 ; background PA: 8/8
    assert mean_pixel_accuracy(prediction, target) == pytest.approx(0.5 * (0.5 + 1.0))


def test_empty_images_are_perfect_match():
    empty = np.zeros((8, 8))
    assert iou(empty, empty) == 1.0
    assert pixel_accuracy(empty, empty) == 1.0


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        iou(np.zeros((4, 4)), np.zeros((5, 5)))


def test_confusion_counts_sum_to_pixels():
    rng = np.random.default_rng(0)
    prediction = rng.random((16, 16))
    target = rng.random((16, 16))
    counts = confusion_counts(prediction, target)
    assert sum(counts.values()) == 16 * 16


def test_soft_predictions_are_thresholded():
    target = np.zeros((8, 8))
    target[2:6, 2:6] = 1.0
    soft = target * 0.9 + 0.05
    assert iou(soft, target) == 1.0


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float64, (12, 12), elements=st.floats(0, 1)),
    hnp.arrays(np.float64, (12, 12), elements=st.floats(0, 1)),
)
def test_metric_bounds_and_symmetry(a, b):
    for metric in (iou, mean_iou, mean_pixel_accuracy, pixel_accuracy):
        value = metric(a, b)
        assert 0.0 <= value <= 1.0
    # IOU (single class) is symmetric in its arguments.
    assert iou(a, b) == pytest.approx(iou(b, a))
    assert mean_iou(a, b) == pytest.approx(mean_iou(b, a))


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (12, 12), elements=st.floats(0, 1)))
def test_metrics_maximized_by_identity(image):
    assert iou(image, image) == 1.0
    assert mean_iou(image, image) == 1.0


# --------------------------------------------------------------------- #
# Contour metrics
# --------------------------------------------------------------------- #
def test_extract_contour_ring():
    image = np.zeros((10, 10))
    image[2:8, 2:8] = 1.0
    contour = extract_contour(image)
    assert contour[2, 2] and contour[2, 5] and contour[7, 7]
    assert not contour[4, 4]  # interior
    assert not contour[0, 0]  # background


def test_contour_distance_zero_for_identical():
    image = np.zeros((16, 16))
    image[4:12, 4:12] = 1.0
    stats = contour_distance_stats(image, image)
    assert stats["mean"] == 0.0
    assert stats["max"] == 0.0


def test_contour_distance_grows_with_offset():
    base = np.zeros((32, 32))
    base[8:16, 8:16] = 1.0
    near = np.roll(base, 1, axis=0)
    far = np.roll(base, 5, axis=0)
    near_stats = contour_distance_stats(near, base)
    far_stats = contour_distance_stats(far, base)
    assert near_stats["mean"] < far_stats["mean"]
    assert near_stats["max"] <= far_stats["max"]


def test_contour_distance_missing_prediction_is_penalized():
    target = np.zeros((16, 16))
    target[4:12, 4:12] = 1.0
    stats = contour_distance_stats(np.zeros_like(target), target)
    assert stats["mean"] > 10.0


def test_contour_distance_both_empty():
    stats = contour_distance_stats(np.zeros((8, 8)), np.zeros((8, 8)))
    assert stats == {"mean": 0.0, "max": 0.0}


def test_critical_dimension_measures_line_width():
    image = np.zeros((16, 16))
    image[8, 3:11] = 1.0
    assert critical_dimension(image, 8) == 8.0
    assert critical_dimension(image, 0) == 0.0


def test_critical_dimension_takes_longest_run():
    image = np.zeros((8, 16))
    image[4, 0:3] = 1.0
    image[4, 6:14] = 1.0
    assert critical_dimension(image, 4) == 8.0
