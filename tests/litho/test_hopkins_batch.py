"""Batched frequency-domain aerial images vs the seed per-kernel loop.

The batch-first :func:`repro.litho.aerial_image` replaces one ``fftconvolve``
per SOCS kernel with a single padded mask FFT multiplied against cached
kernel transfer functions.  These tests pin the contract of that refactor:
numerical equivalence with :func:`repro.litho.aerial_image_loop` within 1e-8,
batch/single consistency, and the caching behaviour of
:class:`repro.litho.SOCSKernels`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.litho import (
    LithoSimulator,
    aerial_image,
    aerial_image_loop,
)


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=16.0, num_kernels=12)


def _random_masks(n: int, size: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.7).astype(float)


# --------------------------------------------------------------------- #
# Equivalence with the seed per-kernel fftconvolve algorithm
# --------------------------------------------------------------------- #
def test_batched_matches_loop_single_mask(simulator):
    mask = _random_masks(1, 64)[0]
    np.testing.assert_allclose(
        aerial_image(mask, simulator.kernels),
        aerial_image_loop(mask, simulator.kernels),
        atol=1e-8,
    )


def test_batched_matches_loop_on_batch(simulator):
    masks = _random_masks(5, 48)
    reference = np.stack([aerial_image_loop(m, simulator.kernels) for m in masks])
    np.testing.assert_allclose(aerial_image(masks, simulator.kernels), reference, atol=1e-8)


def test_batched_matches_loop_unnormalized_and_dosed(simulator):
    mask = _random_masks(1, 32)[0]
    batched = aerial_image(mask, simulator.kernels, normalize=False, dose=1.05)
    loop = aerial_image_loop(mask, simulator.kernels, normalize=False, dose=1.05)
    np.testing.assert_allclose(batched, loop, rtol=1e-8)


def test_batch_entries_independent(simulator):
    """Each batch entry equals its own single-mask simulation."""
    masks = _random_masks(3, 32)
    batched = aerial_image(masks, simulator.kernels)
    for i, mask in enumerate(masks):
        np.testing.assert_allclose(batched[i], aerial_image(mask, simulator.kernels), atol=1e-12)


def test_non_square_masks(simulator):
    rng = np.random.default_rng(3)
    masks = (rng.random((2, 40, 56)) > 0.7).astype(float)
    reference = np.stack([aerial_image_loop(m, simulator.kernels) for m in masks])
    out = aerial_image(masks, simulator.kernels)
    assert out.shape == (2, 40, 56)
    np.testing.assert_allclose(out, reference, atol=1e-8)


def test_loop_rejects_batches(simulator):
    with pytest.raises(ValueError):
        aerial_image_loop(np.zeros((2, 16, 16)), simulator.kernels)


# --------------------------------------------------------------------- #
# SOCSKernels caching
# --------------------------------------------------------------------- #
def test_weighted_transfer_functions_cached_per_shape(simulator):
    kernels = simulator.kernels
    weighted = kernels.weighted_transfer_functions((80, 80))
    active = int(np.count_nonzero(kernels.eigenvalues > 0.0))
    assert weighted.shape == (active, 80, 80)
    assert kernels.weighted_transfer_functions((80, 80)) is weighted
    assert kernels.weighted_transfer_functions((96, 96)) is not weighted


def test_clear_field_intensity_memoized(simulator):
    kernels = simulator.kernels
    value = kernels.clear_field_intensity()
    assert value > 0.0
    assert kernels.clear_field_intensity() == value


def test_simulator_aerial_accepts_batches(simulator):
    masks = _random_masks(3, 32)
    aerial = simulator.aerial(masks)
    assert aerial.shape == masks.shape
    np.testing.assert_allclose(aerial[1], simulator.aerial(masks[1]), atol=1e-12)
