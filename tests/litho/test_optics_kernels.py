"""Tests for the optical model and SOCS kernel generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.litho import (
    OpticalSettings,
    compute_tcc_matrix,
    generate_kernels,
    pupil_function,
    source_points,
)


@pytest.fixture(scope="module")
def settings() -> OpticalSettings:
    return OpticalSettings()


@pytest.fixture(scope="module")
def kernels(settings):
    return generate_kernels(settings, num_kernels=8, pixel_size=8.0, kernel_support=25, grid_size=17)


def test_optical_settings_validation():
    with pytest.raises(ValueError):
        OpticalSettings(wavelength=-1.0)
    with pytest.raises(ValueError):
        OpticalSettings(sigma_in=0.9, sigma_out=0.5)


def test_cutoff_and_optical_diameter(settings):
    assert settings.cutoff_frequency == pytest.approx(1.35 / 193.0)
    assert settings.max_frequency > settings.cutoff_frequency
    # The optical diameter must exceed several minimum half-pitches.
    assert settings.optical_diameter > 5 * 0.5 * settings.wavelength / settings.numerical_aperture


def test_source_points_lie_in_annulus(settings):
    points, weights = source_points(settings, samples_per_axis=21)
    radius = np.linalg.norm(points, axis=1) / settings.cutoff_frequency
    assert np.all(radius >= settings.sigma_in - 1e-12)
    assert np.all(radius <= settings.sigma_out + 1e-12)
    assert weights.sum() == pytest.approx(1.0)


def test_circular_source_when_sigma_in_zero():
    settings = OpticalSettings(sigma_in=0.0, sigma_out=0.7)
    points, _ = source_points(settings, samples_per_axis=15)
    assert np.any(np.linalg.norm(points, axis=1) < 0.1 * settings.cutoff_frequency)


def test_pupil_passes_low_and_blocks_high_frequencies(settings):
    f_cut = settings.cutoff_frequency
    inside = pupil_function(np.array([0.5 * f_cut]), np.array([0.0]), settings)
    outside = pupil_function(np.array([1.5 * f_cut]), np.array([0.0]), settings)
    assert abs(inside[0]) == pytest.approx(1.0)
    assert abs(outside[0]) == pytest.approx(0.0)


def test_pupil_defocus_adds_phase_only(settings):
    defocused = OpticalSettings(defocus=50.0)
    f = np.array([0.5 * defocused.cutoff_frequency])
    value = pupil_function(f, np.array([0.0]), defocused)
    assert abs(abs(value[0]) - 1.0) < 1e-12
    assert value[0].imag != 0.0


def test_tcc_matrix_is_hermitian_psd(settings):
    tcc, _, _ = compute_tcc_matrix(settings, grid_size=13, source_samples=11)
    np.testing.assert_allclose(tcc, tcc.conj().T, atol=1e-12)
    eigenvalues = np.linalg.eigvalsh(tcc)
    assert eigenvalues.min() > -1e-9


def test_kernel_eigenvalues_sorted_and_nonnegative(kernels):
    assert np.all(kernels.eigenvalues >= 0.0)
    assert np.all(np.diff(kernels.eigenvalues) <= 1e-9)


def test_kernel_shapes_and_truncation(kernels):
    assert kernels.kernels.shape == (8, 25, 25)
    truncated = kernels.truncated(3)
    assert truncated.count == 3
    np.testing.assert_allclose(truncated.eigenvalues, kernels.eigenvalues[:3])


def test_dominant_kernel_concentrated_at_centre(kernels):
    dominant = np.abs(kernels.kernels[0]) ** 2
    support = kernels.support
    half = 4  # 9x9 window = 72 nm x 72 nm around the centre
    centre = dominant[
        support // 2 - half : support // 2 + half + 1, support // 2 - half : support // 2 + half + 1
    ].sum()
    assert centre > 0.5 * dominant.sum()


def test_first_eigenvalue_dominates(kernels):
    assert kernels.eigenvalues[0] > 2.0 * kernels.eigenvalues[3]


def test_kernel_support_must_be_odd(settings):
    with pytest.raises(ValueError):
        generate_kernels(settings, kernel_support=24)
