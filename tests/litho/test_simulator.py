"""Tests for aerial-image computation, resist models and the simulator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout import ISPD2019_RULES, Layout, Rect, generate_via_layout
from repro.litho import (
    ConstantThresholdResist,
    LithoSimulator,
    SigmoidResist,
    aerial_image,
    clear_field_intensity,
)


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=8.0, num_kernels=10, kernel_support=31)


def test_clear_field_intensity_positive(simulator):
    assert clear_field_intensity(simulator.kernels) > 0.0


def test_aerial_image_of_open_frame_is_one(simulator):
    mask = np.ones((96, 96))
    aerial = simulator.aerial(mask)
    centre = aerial[32:64, 32:64]
    np.testing.assert_allclose(centre, np.ones_like(centre), atol=0.05)


def test_aerial_image_of_dark_mask_is_zero(simulator):
    aerial = simulator.aerial(np.zeros((64, 64)))
    np.testing.assert_allclose(aerial, np.zeros_like(aerial), atol=1e-12)


def test_aerial_image_nonnegative_and_bandlimited(simulator, rng):
    mask = (rng.random((96, 96)) > 0.7).astype(float)
    aerial = simulator.aerial(mask)
    assert aerial.min() >= 0.0
    # The image is low-pass: it must be much smoother than the random mask.
    mask_grad = np.abs(np.diff(mask, axis=0)).mean()
    aerial_grad = np.abs(np.diff(aerial, axis=0)).mean()
    assert aerial_grad < 0.5 * mask_grad


def test_aerial_dose_scales_linearly(simulator):
    mask = np.zeros((64, 64))
    mask[24:40, 24:40] = 1.0
    base = simulator.aerial(mask)
    double = simulator.with_dose(2.0).aerial(mask)
    np.testing.assert_allclose(double, 2.0 * base, rtol=1e-9)


def test_aerial_accepts_batches_rejects_higher_rank(simulator):
    # A 3-D stack is a batch of masks (batch-first pipeline contract) ...
    batch = aerial_image(np.zeros((2, 16, 16)), simulator.kernels)
    assert batch.shape == (2, 16, 16)
    # ... anything of higher rank is still rejected.
    with pytest.raises(ValueError):
        aerial_image(np.zeros((1, 2, 16, 16)), simulator.kernels)


def test_large_feature_prints_smaller_feature_does_not(simulator):
    large = np.zeros((128, 128))
    large[40:88, 40:88] = 1.0          # 384 nm square: prints
    tiny = np.zeros((128, 128))
    tiny[63:66, 63:66] = 1.0           # 24 nm square: below resolution
    assert simulator.simulate(large).resist.sum() > 100
    assert simulator.simulate(tiny).resist.sum() == 0


def test_large_square_prints_close_to_target_with_rounded_corners(simulator):
    mask = np.zeros((128, 128))
    mask[40:88, 40:88] = 1.0
    result = simulator.simulate(mask)
    printed = result.resist.sum()
    # Printed area stays within 25% of the drawn area ...
    assert abs(printed - mask.sum()) < 0.25 * mask.sum()
    # ... and the sharp mask corner is rounded away: a pixel just inside the
    # drawn corner does not print even though the feature centre does.
    assert result.resist[64, 64] == 1.0
    assert result.resist[40, 40] == 0.0


def test_resist_threshold_monotonicity(simulator):
    """Lower thresholds can only grow the printed region."""
    mask = np.zeros((128, 128))
    mask[48:80, 48:80] = 1.0
    aerial = simulator.aerial(mask)
    low = ConstantThresholdResist(0.15).develop(aerial).sum()
    high = ConstantThresholdResist(0.5).develop(aerial).sum()
    assert low >= high


def test_sigmoid_resist_approaches_threshold_resist():
    aerial = np.linspace(0.0, 1.0, 101)
    sharp = SigmoidResist(threshold=0.3, steepness=500.0).develop(aerial)
    binary = ConstantThresholdResist(threshold=0.3).develop(aerial)
    mismatched = np.abs(sharp - binary) > 0.5
    assert mismatched.sum() <= 1  # only the sample exactly at threshold may differ


def test_resist_validation():
    with pytest.raises(ValueError):
        ConstantThresholdResist(threshold=0.0)
    with pytest.raises(ValueError):
        SigmoidResist(steepness=-1.0)


def test_simulate_layout_end_to_end(rng):
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=8, kernel_support=25)
    layout = generate_via_layout(ISPD2019_RULES, rng, tile_size=1024.0, density_scale=2.0)
    result = simulator.simulate_layout(layout)
    assert result.mask.shape == (64, 64)
    assert result.aerial.shape == (64, 64)
    assert result.resist.shape == (64, 64)
    assert result.printed_area >= 0.0


def test_simulation_result_printed_area_units(simulator):
    mask = np.zeros((64, 64))
    mask[16:48, 16:48] = 1.0
    result = simulator.simulate(mask)
    assert result.printed_area == pytest.approx(result.resist.sum() * 64.0)


def test_defocus_degrades_contrast(simulator):
    mask = np.zeros((128, 128))
    mask[56:72, 40:88] = 1.0  # 128 nm wide line
    nominal_peak = simulator.aerial(mask).max()
    defocused_peak = simulator.with_defocus(120.0).aerial(mask).max()
    assert defocused_peak < nominal_peak


def test_kernels_are_cached(simulator):
    assert simulator.kernels is simulator.kernels


def test_with_dose_reuses_kernels(simulator):
    clone = simulator.with_dose(1.1)
    assert clone.kernels is simulator.kernels
