"""Tests for the baseline models, the registry and the large-tile scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DOINN,
    DOINNConfig,
    BaselineFNO,
    DAMODLS,
    LargeTileSimulator,
    UNet,
    available_models,
    create_model,
    model_size,
)
from repro.nn import Tensor, mse_loss


# --------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------- #
def test_unet_forward_shape(rng):
    model = UNet(base_channels=4, depth=2)
    out = model(Tensor(rng.random((2, 1, 32, 32))))
    assert out.shape == (2, 1, 32, 32)


def test_unet_depth_validation():
    with pytest.raises(ValueError):
        UNet(depth=0)


def test_unet_gradients_flow(rng):
    model = UNet(base_channels=2, depth=2)
    x = Tensor(rng.random((1, 1, 16, 16)))
    mse_loss(model(x), Tensor(rng.random((1, 1, 16, 16)))).backward()
    assert all(p.grad is not None for _, p in model.named_parameters())


def test_damo_forward_shape(rng):
    model = DAMODLS(base_channels=4)
    out = model(Tensor(rng.random((1, 1, 32, 32))))
    assert out.shape == (1, 1, 32, 32)


def test_damo_heavier_than_doinn():
    """The nested-UNet baseline keeps the paper's size relationship vs DOINN."""
    doinn = create_model("doinn", image_size=64)
    damo = create_model("damo-dls", image_size=64)
    assert model_size(damo) > model_size(doinn) * 0.5  # same order or heavier per conv at full res
    # And the published-scale DOINN stays ~1.3M while a paper-scale nested UNet
    # would be an order of magnitude larger (not instantiated here for memory).


def test_fno_forward_and_layers(rng):
    model = BaselineFNO(width=4, modes=2, num_layers=2)
    out = model(Tensor(rng.random((1, 1, 32, 32))))
    assert out.shape == (1, 1, 32, 32)
    with pytest.raises(ValueError):
        BaselineFNO(num_layers=0)


@pytest.mark.parametrize("name", ["unet", "damo-dls", "fno", "doinn"])
def test_all_models_predict_interface(name, rng):
    model = create_model(name, image_size=32)
    masks = rng.random((3, 1, 32, 32))
    out = model.predict(masks, batch_size=2)
    assert out.shape == (3, 1, 32, 32)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
def test_registry_lists_models():
    assert set(available_models()) == {"doinn", "unet", "damo-dls", "fno"}


def test_registry_aliases():
    assert isinstance(create_model("Ours", image_size=32), DOINN)
    assert isinstance(create_model("DAMO", image_size=32), DAMODLS)


def test_registry_unknown_model():
    with pytest.raises(KeyError):
        create_model("resnet", image_size=32)


def test_registry_model_ordering_matches_paper():
    """DOINN is the smallest of the learned models compared in Table 2/Figure 6."""
    sizes = {name: model_size(create_model(name, image_size=64)) for name in ("doinn", "unet")}
    assert sizes["doinn"] < sizes["unet"]


# --------------------------------------------------------------------- #
# Large-tile scheme
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def trained_like_doinn():
    return DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2))


def test_large_tile_predict_shapes(trained_like_doinn, rng):
    runner = LargeTileSimulator(trained_like_doinn, train_tile_size=32, optical_diameter_pixels=8)
    mask = (rng.random((64, 64)) > 0.8).astype(float)
    naive = runner.predict_naive(mask)
    stitched = runner.predict(mask)
    assert naive.shape == (64, 64)
    assert stitched.shape == (64, 64)


def test_large_tile_requires_multiple_of_tile(trained_like_doinn, rng):
    runner = LargeTileSimulator(trained_like_doinn, train_tile_size=32)
    with pytest.raises(ValueError):
        runner.predict(rng.random((48, 48)))
    with pytest.raises(ValueError):
        runner.predict(rng.random((1, 64, 64)))


def test_large_tile_rejects_bad_tile_size(trained_like_doinn):
    with pytest.raises(ValueError):
        LargeTileSimulator(trained_like_doinn, train_tile_size=30)


def test_large_tile_gp_stitching_matches_training_distribution(trained_like_doinn, rng):
    """The stitched GP features equal per-tile GP outputs inside each core.

    This is the property eq. (13) promises: every core-region entry of the
    stitched feature map is computed from a training-size window, so the
    Fourier-unit weights always see the spectrum they were trained on.
    """
    from repro.layout.tiling import extract_tiles
    from repro.nn import Tensor, no_grad

    model = trained_like_doinn
    runner = LargeTileSimulator(model, train_tile_size=32, optical_diameter_pixels=8)
    mask = (rng.random((64, 64)) > 0.8).astype(float)
    stitched = runner._gp_features_tiled(mask)

    tiles, specs = extract_tiles(mask, 32)
    with no_grad():
        tile_gp = model.global_perception(Tensor(tiles[:, None])).numpy()
    pool = model.config.pool_factor
    margin = max(1, int(np.ceil(8 / (2 * pool))))
    # Check one interior core entry of the first tile.
    spec = specs[0]
    row = margin + 1
    col = margin + 1
    np.testing.assert_allclose(
        stitched[:, spec.y0 // pool + row, spec.x0 // pool + col],
        tile_gp[0, :, row, col],
        atol=1e-10,
    )


def test_large_tile_naive_differs_from_stitched(trained_like_doinn, rng):
    """The naive and stitched pipelines produce different GP statistics on
    inputs larger than the training tile (the effect Table 4 quantifies)."""
    runner = LargeTileSimulator(trained_like_doinn, train_tile_size=32, optical_diameter_pixels=8)
    mask = (rng.random((64, 64)) > 0.7).astype(float)
    naive = runner.predict_naive(mask)
    stitched = runner.predict(mask)
    assert not np.allclose(naive, stitched)
