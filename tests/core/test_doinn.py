"""Tests of the DOINN model, its configuration and its three paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DOINN, DOINNConfig
from repro.core.paths import GlobalPerception, ImageReconstruction, LocalPerception
from repro.nn import Adam, Tensor, mse_loss


@pytest.fixture(scope="module")
def small_config():
    return DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2)


@pytest.fixture(scope="module")
def model(small_config):
    return DOINN(small_config)


def test_forward_shape(model, rng):
    x = Tensor(rng.random((2, 1, 32, 32)))
    assert model(x).shape == (2, 1, 32, 32)


def test_output_range_is_tanh_bounded(model, rng):
    out = model(Tensor(rng.random((1, 1, 32, 32)))).numpy()
    assert out.min() >= -1.0 and out.max() <= 1.0


def test_forward_accepts_other_sizes(model, rng):
    out = model(Tensor(rng.random((1, 1, 64, 64))))
    assert out.shape == (1, 1, 64, 64)


def test_predict_batches(model, rng):
    masks = rng.random((5, 1, 32, 32))
    out = model.predict(masks, batch_size=2)
    assert out.shape == (5, 1, 32, 32)


def test_gradients_reach_all_parameters(small_config, rng):
    model = DOINN(small_config)
    x = Tensor(rng.random((1, 1, 32, 32)))
    target = Tensor(rng.random((1, 1, 32, 32)))
    mse_loss(model(x), target).backward()
    missing = [name for name, p in model.named_parameters() if p.grad is None]
    assert missing == []


def test_doinn_learns_identity_like_mapping(rng):
    """A tiny DOINN fits a trivial mask->mask task in a few steps."""
    model = DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2))
    optimizer = Adam(model.parameters(), lr=0.01)
    masks = (rng.random((4, 1, 32, 32)) > 0.8).astype(float)
    x, t = Tensor(masks), Tensor(masks)
    losses = []
    for _ in range(15):
        optimizer.zero_grad()
        loss = mse_loss(model(x), t)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    assert losses[-1] < losses[0] * 0.7


def test_paper_config_parameter_count():
    """The published configuration must land near the reported 1.3 M parameters."""
    model = DOINN(DOINNConfig.paper())
    params = model.num_parameters()
    assert 1_200_000 < params < 1_500_000


def test_scaled_config_modes_fit_pooled_spectrum():
    config = DOINNConfig.scaled(64)
    assert 2 * config.modes <= 64 // 8
    config = DOINNConfig.scaled(2048)
    assert config.modes == 25


def test_ablation_rows_toggle_components(small_config):
    row1 = DOINN(small_config.ablation(1))
    row2 = DOINN(small_config.ablation(2))
    row3 = DOINN(small_config.ablation(3))
    row4 = DOINN(small_config.ablation(4))
    assert row1.local_perception is None
    assert row3.local_perception is not None
    assert not row3.reconstruction.use_skips
    assert row4.reconstruction.use_skips
    # Every added component increases the parameter count.
    sizes = [m.num_parameters() for m in (row1, row2, row3, row4)]
    assert sizes == sorted(sizes)
    with pytest.raises(ValueError):
        small_config.ablation(5)


@pytest.mark.parametrize("row", [1, 2, 3, 4])
def test_ablation_variants_forward(row, small_config, rng):
    model = DOINN(small_config.ablation(row))
    out = model(Tensor(rng.random((1, 1, 32, 32))))
    assert out.shape == (1, 1, 32, 32)


def test_summary_matches_appendix_structure():
    model = DOINN(DOINNConfig.paper())
    rows = model.summary(2048)
    paths = {row["path"] for row in rows}
    assert paths == {"GP", "LP", "IR"}
    gp_rows = [r for r in rows if r["path"] == "GP"]
    assert gp_rows[0]["output"] == (256, 256, 1)          # AvePooling
    assert gp_rows[-1]["output"] == (256, 256, 16)        # iFFT
    ir_rows = [r for r in rows if r["path"] == "IR"]
    assert ir_rows[-1]["output"] == (2048, 2048, 1)


# --------------------------------------------------------------------- #
# Individual paths
# --------------------------------------------------------------------- #
def test_global_perception_downsamples_by_pool_factor(rng):
    gp = GlobalPerception(channels=4, modes=2, pool_factor=8)
    out = gp(Tensor(rng.random((1, 1, 64, 64))))
    assert out.shape == (1, 4, 8, 8)


def test_local_perception_pyramid_shapes(rng):
    lp = LocalPerception(base_channels=2)
    f1, f2, f3 = lp(Tensor(rng.random((1, 1, 64, 64))))
    assert f1.shape == (1, 2, 32, 32)
    assert f2.shape == (1, 4, 16, 16)
    assert f3.shape == (1, 8, 8, 8)


def test_image_reconstruction_requires_lp_features_when_configured(rng):
    ir = ImageReconstruction(gp_channels=4, lp_channels=(2, 4, 8), base_channels=2)
    with pytest.raises(ValueError):
        ir(Tensor(rng.random((1, 4, 8, 8))), None)


def test_image_reconstruction_upsamples_to_input_resolution(rng):
    lp = LocalPerception(base_channels=2)
    ir = ImageReconstruction(gp_channels=4, lp_channels=lp.channels, base_channels=2)
    x = Tensor(rng.random((1, 1, 64, 64)))
    gp_features = Tensor(rng.random((1, 4, 8, 8)))
    out = ir(gp_features, lp(x))
    assert out.shape == (1, 1, 64, 64)
