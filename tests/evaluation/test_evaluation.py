"""Tests for the evaluator and throughput measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DOINN, DOINNConfig
from repro.data import MaskResistDataset
from repro.evaluation import (
    evaluate_model,
    evaluate_predictions,
    measure_model_throughput,
    measure_simulator_throughput,
)
from repro.litho import LithoSimulator


def test_evaluate_predictions_perfect():
    targets = np.zeros((3, 1, 16, 16))
    targets[:, :, 4:12, 4:12] = 1.0
    result = evaluate_predictions(targets, targets)
    assert result.mpa == pytest.approx(1.0)
    assert result.miou == pytest.approx(1.0)
    assert result.contour_mean_px == 0.0
    assert result.num_samples == 3


def test_evaluate_predictions_shape_check():
    with pytest.raises(ValueError):
        evaluate_predictions(np.zeros((2, 1, 8, 8)), np.zeros((3, 1, 8, 8)))


def test_evaluate_predictions_penalizes_mismatch():
    targets = np.zeros((2, 1, 16, 16))
    targets[:, :, 4:12, 4:12] = 1.0
    wrong = np.zeros_like(targets)
    result = evaluate_predictions(wrong, targets)
    assert result.miou < 0.6
    assert result.as_row()[1] < 60.0


def test_evaluate_model_runs_end_to_end(rng):
    model = DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2))
    masks = (rng.random((4, 32, 32)) > 0.8).astype(float)
    data = MaskResistDataset(masks, masks, pixel_size=16.0)
    result = evaluate_model(model, data, batch_size=2)
    assert 0.0 <= result.miou <= 1.0
    assert result.num_samples == 4


def test_model_throughput_measurement(rng):
    model = DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2))
    mask = (rng.random((32, 32)) > 0.8).astype(float)
    result = measure_model_throughput(model, mask, pixel_size=16.0, repeats=1, warmup=0)
    assert result.um2_per_second > 0
    assert result.tile_area_um2 == pytest.approx((32 * 16 / 1000.0) ** 2)


def test_simulator_throughput_and_speedup(rng):
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=6, kernel_support=21)
    mask = np.zeros((32, 32))
    mask[8:24, 8:24] = 1.0
    ref = measure_simulator_throughput(simulator, mask, repeats=1, warmup=0)
    assert ref.um2_per_second > 0
    faster = measure_simulator_throughput(simulator, mask, repeats=1, warmup=0)
    ratio = faster.speedup_over(ref)
    assert ratio > 0
