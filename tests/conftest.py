"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import create_model

#: Tiny-but-representative configuration for every model in
#: ``repro.core.registry`` — small enough that a full forward runs in
#: milliseconds, large enough that every fusible chain (VGG blocks, strided
#: LP convs, refine tail, output heads) is exercised.  Fusion, pipeline and
#: parallel tests parametrize over these instead of hand-building models.
TINY_MODEL_KWARGS: dict[str, dict] = {
    "doinn": dict(image_size=32, gp_channels=4, lp_base_channels=2),
    "unet": dict(image_size=32, base_channels=4, depth=2),
    "damo-dls": dict(image_size=32, base_channels=4),
    "fno": dict(image_size=32, width=4, modes=3, num_layers=2),
}

#: Input size every tiny model accepts (DOINN needs a multiple of the GP pool
#: factor that also fits the retained frequency block).
TINY_MODEL_SIZE = 32


def build_tiny_model(name: str, **overrides):
    """Build one registry model at its tiny test configuration."""
    kwargs = dict(TINY_MODEL_KWARGS[name])
    kwargs.update(overrides)
    return create_model(name, **kwargs)


@pytest.fixture(params=sorted(TINY_MODEL_KWARGS))
def zoo_model(request):
    """``(name, model)`` for every model in the registry, tiny configs."""
    return request.param, build_tiny_model(request.param)


@pytest.fixture(scope="session")
def tiny_model_factory():
    """Session-wide access to :func:`build_tiny_model` for module fixtures."""
    return build_tiny_model


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator for each test."""
    return np.random.default_rng(1234)


def numeric_gradient(func, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of ``array``.

    ``func`` must take no arguments and read ``array`` by reference; the array
    is perturbed in place and restored.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad
