"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator for each test."""
    return np.random.default_rng(1234)


def numeric_gradient(func, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of ``array``.

    ``func`` must take no arguments and read ``array`` by reference; the array
    is perturbed in place and restored.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad
