"""Tests for edge fragmentation, mask construction and SRAF insertion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout import Layout, Rect
from repro.opc import build_mask, fragment_layout, insert_srafs, sraf_rects_pixels
from repro.opc.fragments import _fragment_spans


def simple_layout(size=512.0):
    layout = Layout(bounds=Rect(0, 0, size, size))
    layout.add(Rect(100, 100, 164, 164))
    layout.add(Rect(300, 100, 364, 420))
    return layout


def test_fragment_spans_cover_range_without_overlap():
    spans = _fragment_spans(0, 100, 32)
    assert spans[0][0] == 0 and spans[-1][1] == 100
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 == b0
    assert all(b - a <= 34 for a, b in spans)


def test_fragment_spans_empty_for_degenerate_range():
    assert _fragment_spans(5, 5, 32) == []


def test_fragment_layout_produces_four_sides():
    shapes = fragment_layout(simple_layout(), pixel_size=4.0, max_fragment_length=100)
    assert len(shapes) == 2
    sides = {f.side for f in shapes[0].fragments}
    assert sides == {"left", "right", "top", "bottom"}


def test_long_edges_get_multiple_fragments():
    shapes = fragment_layout(simple_layout(), pixel_size=4.0, max_fragment_length=20)
    tall_shape = shapes[1]  # 64 x 320 nm wire -> 80 pixels tall
    left_fragments = [f for f in tall_shape.fragments if f.side == "left"]
    assert len(left_fragments) == 4


def test_control_points_lie_on_drawn_edges():
    shapes = fragment_layout(simple_layout(), pixel_size=4.0)
    row0, col0, row1, col1 = shapes[0].rect_pixels
    for fragment in shapes[0].fragments:
        r, c = fragment.control_point
        assert row0 <= r <= row1 - 1 or fragment.side in ("left", "right")
        if fragment.side == "left":
            assert c == col0
        if fragment.side == "right":
            assert c == col1 - 1


def test_build_mask_zero_offsets_matches_rasterization():
    from repro.layout import rasterize

    layout = simple_layout()
    shapes = fragment_layout(layout, pixel_size=4.0)
    mask = build_mask(shapes, image_size=128)
    np.testing.assert_allclose(mask, rasterize(layout, pixel_size=4.0, image_size=128))


def test_build_mask_positive_offset_grows_shape():
    layout = simple_layout()
    shapes = fragment_layout(layout, pixel_size=4.0)
    base = build_mask(shapes, 128).sum()
    for fragment in shapes[0].fragments:
        fragment.offset = 2.0
    grown = build_mask(shapes, 128).sum()
    assert grown > base


def test_build_mask_negative_offset_shrinks_shape():
    layout = simple_layout()
    shapes = fragment_layout(layout, pixel_size=4.0)
    base = build_mask(shapes, 128).sum()
    for fragment in shapes[0].fragments:
        fragment.offset = -2.0
    shrunk = build_mask(shapes, 128).sum()
    assert shrunk < base


def test_build_mask_adds_extra_rects():
    shapes = fragment_layout(simple_layout(), pixel_size=4.0)
    mask = build_mask(shapes, 128, extra_rects=[(0, 0, 4, 4)])
    assert mask[:4, :4].sum() == 16


def test_outward_normals_point_away_from_interior():
    shapes = fragment_layout(simple_layout(), pixel_size=4.0)
    row0, col0, row1, col1 = shapes[0].rect_pixels
    centre = ((row0 + row1) / 2, (col0 + col1) / 2)
    for fragment in shapes[0].fragments:
        r, c = fragment.control_point
        dr, dc = fragment.outward_normal
        # Moving along the normal must increase the distance from the centre.
        before = (r - centre[0]) ** 2 + (c - centre[1]) ** 2
        after = (r + dr - centre[0]) ** 2 + (c + dc - centre[1]) ** 2
        assert after > before


# --------------------------------------------------------------------- #
# SRAF insertion
# --------------------------------------------------------------------- #
def test_srafs_surround_isolated_feature():
    layout = Layout(bounds=Rect(0, 0, 1000, 1000), shapes=[Rect(450, 450, 550, 550)])
    srafs = insert_srafs(layout)
    assert len(srafs) == 4


def test_srafs_do_not_touch_main_features():
    layout = Layout(bounds=Rect(0, 0, 1000, 1000), shapes=[Rect(450, 450, 550, 550)])
    for sraf in insert_srafs(layout, min_clearance=40.0):
        grown = sraf.expanded(39.9)
        assert not any(grown.intersects(shape) for shape in layout.shapes)


def test_srafs_skipped_when_no_room():
    layout = Layout(bounds=Rect(0, 0, 200, 200), shapes=[Rect(50, 50, 150, 150)])
    srafs = insert_srafs(layout, sraf_distance=90.0)
    # The bars would leave the layout bounds on every side.
    assert srafs == []


def test_srafs_do_not_overlap_each_other():
    layout = Layout(
        bounds=Rect(0, 0, 1200, 1200),
        shapes=[Rect(300, 300, 400, 400), Rect(700, 300, 800, 400)],
    )
    srafs = insert_srafs(layout)
    for i, a in enumerate(srafs):
        for b in srafs[i + 1 :]:
            assert not a.intersects(b)


def test_sraf_rects_pixels_rounding():
    boxes = sraf_rects_pixels([Rect(10, 20, 34, 28)], pixel_size=8.0)
    assert boxes == [(2, 1, 4, 4)]
    # Degenerate-thin SRAFs still occupy at least one pixel row/column.
    thin = sraf_rects_pixels([Rect(10, 10, 12, 50)], pixel_size=8.0)
    assert thin[0][3] - thin[0][1] >= 1
