"""Equivalence suite for incremental OPC re-simulation.

The central invariant: the incremental loop (dirty-tile tracking + patched
aerial re-simulation + fragment->tile candidate index) is an *execution plan*,
not a different algorithm — ``correct()`` with ``incremental=True`` must
produce the same ``final_mask``, the same EPE trajectory and the same mask
history as the always-full-simulation loop, bit for bit, across layouts,
SRAF settings and fragment freezing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout import ISPD2019_RULES, Layout, Rect, generate_via_layout
from repro.layout.tiling import tile_grid
from repro.litho import LithoSimulator
from repro.opc import (
    FragmentTileIndex,
    INCREMENTAL_ENV,
    OPCConfig,
    OPCEngine,
    build_mask,
    fragment_footprint,
    fragment_layout,
    resolve_incremental,
)


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=8.0, num_kernels=10, kernel_support=31)


def via_layout(seed: int = 3, size_nm: float = 1024.0) -> Layout:
    return generate_via_layout(
        ISPD2019_RULES, np.random.default_rng(seed), tile_size=size_nm, density_scale=1.5
    )


def assert_runs_equal(incremental, full):
    assert np.array_equal(incremental.final_mask, full.final_mask)
    assert np.array_equal(incremental.target, full.target)
    assert incremental.mask_history == full.mask_history
    assert len(incremental.epe_history) == len(full.epe_history)
    for mine, theirs in zip(incremental.epe_history, full.epe_history):
        assert np.array_equal(mine.values, theirs.values)
        assert mine.frozen_fragments == theirs.frozen_fragments


def correct_both(simulator, layout_seed: int, **config_kwargs):
    results = []
    for incremental in (True, False):
        engine = OPCEngine(
            simulator, OPCConfig(incremental=incremental, **config_kwargs)
        )
        results.append(engine.correct(via_layout(layout_seed)))
    return results


# --------------------------------------------------------------------- #
# Incremental == full, bit for bit
# --------------------------------------------------------------------- #
def test_incremental_matches_full(simulator):
    inc, full = correct_both(simulator, layout_seed=3, iterations=8)
    assert_runs_equal(inc, full)
    assert full.counters is None and full.dirty_history == []
    assert inc.counters is not None


def test_incremental_matches_full_with_freezing(simulator):
    inc, full = correct_both(
        simulator, layout_seed=3, iterations=10, freeze_after=2
    )
    assert_runs_equal(inc, full)
    assert inc.epe_history[-1].frozen_fragments > 0


def test_incremental_matches_full_without_srafs(simulator):
    inc, full = correct_both(simulator, layout_seed=5, iterations=6, use_srafs=False)
    assert_runs_equal(inc, full)


def test_incremental_single_tile_image(simulator):
    """64 px images have no valid sub-window: degenerate skip-if-unchanged."""
    for incremental in (True, False):
        engine = OPCEngine(simulator, OPCConfig(iterations=4, incremental=incremental))
        result = engine.correct(via_layout(seed=7, size_nm=512.0))
        if incremental:
            inc = result
            assert inc.counters.tiles_skipped == 0 or inc.counters.clean_calls > 0
        else:
            full = result
    assert_runs_equal(inc, full)


# --------------------------------------------------------------------- #
# Work ledger
# --------------------------------------------------------------------- #
def test_counters_account_for_every_iteration(simulator):
    iterations = 8
    engine = OPCEngine(simulator, OPCConfig(iterations=iterations, incremental=True))
    result = engine.correct(via_layout(3))
    counters = result.counters
    assert (
        counters.full_refreshes + counters.patched_calls + counters.clean_calls
        == iterations
    )
    assert len(result.dirty_history) == iterations
    n_tiles = 9  # 128 px / 64 px half-overlap grid
    assert result.dirty_history[0] == n_tiles  # first call is a full refresh
    assert sum(result.dirty_history) == counters.tile_equivalents(n_tiles)


def test_freezing_collapses_the_dirty_set(simulator):
    """With freeze_after, converged fragments stop dirtying their windows."""
    iterations = 16
    engine = OPCEngine(
        simulator, OPCConfig(iterations=iterations, incremental=True, freeze_after=2)
    )
    result = engine.correct(via_layout(3))
    n_tiles = 9
    spent = result.counters.tile_equivalents(n_tiles)
    assert spent < iterations * n_tiles
    # The tail of the run costs less than the head.
    head = sum(result.dirty_history[: iterations // 2])
    tail = sum(result.dirty_history[iterations // 2 :])
    assert tail < head


def test_incremental_env_flag_disables(simulator, monkeypatch):
    monkeypatch.setenv(INCREMENTAL_ENV, "0")
    result = OPCEngine(simulator, OPCConfig(iterations=2)).correct(via_layout(3))
    assert result.counters is None and result.dirty_history == []


def test_resolve_incremental_knob(monkeypatch):
    monkeypatch.delenv(INCREMENTAL_ENV, raising=False)
    assert resolve_incremental() is True
    assert resolve_incremental(False) is False
    monkeypatch.setenv(INCREMENTAL_ENV, "off")
    assert resolve_incremental() is False
    assert resolve_incremental(True) is True
    monkeypatch.setenv(INCREMENTAL_ENV, "sometimes")
    with pytest.raises(ValueError):
        resolve_incremental()


# --------------------------------------------------------------------- #
# Fragment -> tile candidate index soundness
# --------------------------------------------------------------------- #
def test_fragment_footprint_bounds_every_offset():
    layout = via_layout(3)
    shapes = fragment_layout(layout, pixel_size=8.0)
    image_size = 128
    base = build_mask(shapes, image_size)
    fragment = shapes[0].fragments[0]
    row0, col0, row1, col1 = fragment_footprint(fragment, max_offset=12.0)
    for offset in (-12.0, -3.2, 2.0, 11.7, 12.0):
        fragment.offset = offset
        diff = build_mask(shapes, image_size) != base
        rows, cols = np.nonzero(diff)
        if rows.size:
            assert rows.min() >= row0 and rows.max() < row1
            assert cols.min() >= col0 and cols.max() < col1
    fragment.offset = 0.0


def test_tile_index_candidates_cover_changed_pixels():
    layout = via_layout(3)
    image_size = 128
    shapes = fragment_layout(layout, pixel_size=8.0)
    specs = tile_grid((image_size, image_size), 64)
    index = FragmentTileIndex(shapes, specs, image_size, max_offset=12.0)

    base = build_mask(shapes, image_size)
    moved = []
    rng = np.random.default_rng(17)
    for si in range(min(3, len(shapes))):
        fi = int(rng.integers(len(shapes[si].fragments)))
        shapes[si].fragments[fi].offset = float(rng.integers(-4, 5))
        moved.append((si, fi))
    perturbed = build_mask(shapes, image_size)

    candidates = index.tiles_for(moved)
    covered = np.zeros((image_size, image_size), dtype=bool)
    for ti in candidates:
        s = specs[ti]
        covered[s.y0 : s.y0 + s.size, s.x0 : s.x0 + s.size] = True
    diff = base != perturbed
    # Every changed pixel lies inside a candidate window: windows outside the
    # candidate set are safe to trust as unchanged.
    assert np.all(covered[diff])


def test_tile_index_empty_move_set():
    layout = via_layout(3)
    shapes = fragment_layout(layout, pixel_size=8.0)
    specs = tile_grid((128, 128), 64)
    index = FragmentTileIndex(shapes, specs, 128, max_offset=12.0)
    assert index.tiles_for([]) == []
    assert index.tiles_for([(10_000, 0)]) == []  # unknown ids are ignored


# --------------------------------------------------------------------- #
# Freeze semantics
# --------------------------------------------------------------------- #
def test_freezing_shrinks_the_measurement(simulator):
    engine = OPCEngine(simulator, OPCConfig(iterations=12, freeze_after=2))
    result = engine.correct(via_layout(3))
    frozen = [stats.frozen_fragments for stats in result.epe_history]
    assert frozen[0] == 0
    assert frozen[-1] > 0
    assert all(b >= a for a, b in zip(frozen, frozen[1:]))  # freezing is final
    total = frozen[-1] + result.epe_history[-1].values.size
    assert result.epe_history[0].values.size == total  # skipped, not dropped


def test_freeze_off_by_default(simulator):
    result = OPCEngine(simulator, OPCConfig(iterations=4)).correct(via_layout(3))
    assert all(stats.frozen_fragments == 0 for stats in result.epe_history)
