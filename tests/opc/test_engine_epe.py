"""Tests for EPE measurement and the iterative OPC engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout import ISPD2019_RULES, Layout, Rect, generate_via_layout, rasterize
from repro.litho import LithoSimulator
from repro.opc import (
    EPEStatistics,
    MaskHistory,
    OPCConfig,
    OPCEngine,
    fragment_layout,
    measure_fragment_epe,
    measure_layout_epe,
    rule_based_retarget,
)


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=8.0, num_kernels=10, kernel_support=31)


def single_via_layout(size=1024.0, via=56.0):
    layout = Layout(bounds=Rect(0, 0, size, size))
    centre = size / 2
    layout.add(Rect(centre - via / 2, centre - via / 2, centre + via / 2, centre + via / 2))
    return layout


# --------------------------------------------------------------------- #
# EPE measurement
# --------------------------------------------------------------------- #
def test_epe_zero_when_contour_matches_target():
    layout = single_via_layout(via=160.0)
    shapes = fragment_layout(layout, pixel_size=8.0)
    resist = rasterize(layout, pixel_size=8.0, image_size=128)
    stats = measure_layout_epe(resist, shapes, pixel_size=8.0)
    np.testing.assert_allclose(stats.values, np.zeros_like(stats.values))
    assert stats.mean_abs_nm == 0.0
    assert stats.violations(1.0) == 0


def test_epe_positive_when_printed_larger():
    layout = single_via_layout(via=160.0)
    shapes = fragment_layout(layout, pixel_size=8.0)
    bigger = single_via_layout(via=160.0 + 32.0)  # 2 pixels larger per side
    resist = rasterize(bigger, pixel_size=8.0, image_size=128)
    stats = measure_layout_epe(resist, shapes, pixel_size=8.0)
    assert np.all(stats.values > 0)
    assert stats.mean_abs_nm == pytest.approx(16.0, abs=8.0)


def test_epe_negative_when_printed_smaller():
    layout = single_via_layout(via=160.0)
    shapes = fragment_layout(layout, pixel_size=8.0)
    smaller = single_via_layout(via=160.0 - 32.0)
    resist = rasterize(smaller, pixel_size=8.0, image_size=128)
    stats = measure_layout_epe(resist, shapes, pixel_size=8.0)
    assert np.all(stats.values < 0)


def test_epe_negative_when_feature_missing():
    layout = single_via_layout(via=160.0)
    shapes = fragment_layout(layout, pixel_size=8.0)
    resist = np.zeros((128, 128))
    stats = measure_layout_epe(resist, shapes, pixel_size=8.0)
    assert np.all(stats.values < 0)


def test_epe_statistics_units():
    stats = EPEStatistics(values=np.array([1.0, -2.0, 3.0]), pixel_size=8.0)
    assert stats.mean_abs_nm == pytest.approx(16.0)
    assert stats.max_abs_nm == pytest.approx(24.0)
    assert stats.rms_nm == pytest.approx(np.sqrt(14.0 / 3.0) * 8.0)
    assert stats.violations(20.0) == 1


# --------------------------------------------------------------------- #
# Rule-based retargeting
# --------------------------------------------------------------------- #
def test_rule_based_retarget_grows_shapes():
    layout = single_via_layout()
    retargeted = rule_based_retarget(layout, bias=20.0)
    assert retargeted.shapes[0].width == pytest.approx(56.0 + 40.0)
    assert len(retargeted) == len(layout)


def test_rule_based_retarget_clips_to_bounds():
    layout = Layout(bounds=Rect(0, 0, 100, 100), shapes=[Rect(0, 0, 50, 50)])
    retargeted = rule_based_retarget(layout, bias=20.0)
    assert layout.bounds.contains_rect(retargeted.shapes[0])


# --------------------------------------------------------------------- #
# Iterative OPC engine
# --------------------------------------------------------------------- #
def test_opc_improves_single_via_printability(simulator):
    layout = single_via_layout()
    target = rasterize(layout, pixel_size=8.0, image_size=128)
    engine = OPCEngine(simulator, OPCConfig(iterations=8))
    result = engine.correct(layout)

    before = simulator.resist_image(target)
    after = simulator.resist_image(result.final_mask)
    # Without correction the 56 nm via does not print at all; with OPC it does,
    # and its printed area is close to the drawn area.
    assert before.sum() == 0
    assert after.sum() > 0.5 * target.sum()
    assert result.iterations == 8


def test_opc_reduces_mean_epe(simulator, rng):
    layout = generate_via_layout(ISPD2019_RULES, rng, tile_size=1024.0, density_scale=1.5)
    engine = OPCEngine(simulator, OPCConfig(iterations=10))
    result = engine.correct(layout)
    first = result.epe_history[0].mean_abs_nm
    last = result.epe_history[-1].mean_abs_nm
    assert last < first
    assert last < 12.0  # converges to within ~1.5 pixels on average


def test_opc_history_lengths(simulator):
    layout = single_via_layout()
    result = OPCEngine(simulator, OPCConfig(iterations=5)).correct(layout)
    assert len(result.epe_history) == 5
    assert len(result.mask_history) == 6  # includes the post-final-update mask
    assert result.mask_history[0].shape == result.final_mask.shape


def test_opc_without_history(simulator):
    layout = single_via_layout()
    result = OPCEngine(simulator, OPCConfig(iterations=3, record_history=False)).correct(layout)
    assert result.mask_history == []
    assert result.iterations == 3


def test_opc_mask_history_starts_at_design(simulator):
    layout = single_via_layout()
    config = OPCConfig(iterations=4, use_srafs=False)
    result = OPCEngine(simulator, config).correct(layout)
    np.testing.assert_allclose(result.mask_history[0], result.target)


def test_opc_masks_stay_binary(simulator):
    layout = single_via_layout()
    result = OPCEngine(simulator, OPCConfig(iterations=4)).correct(layout)
    for mask in result.mask_history:
        assert set(np.unique(mask)).issubset({0.0, 1.0})


def test_opc_final_mask_reflects_post_update_positions(simulator):
    """Regression: ``final_mask`` is the post-update mask, not the last simulated one.

    The loop used to overwrite ``result.final_mask`` with each *pre-update*
    mask (a dead store) before the post-loop rebuild; the invariant is that
    ``final_mask`` equals the last history entry and differs from the last
    simulated mask whenever the final move step changed anything.
    """
    layout = single_via_layout()
    result = OPCEngine(simulator, OPCConfig(iterations=6)).correct(layout)
    np.testing.assert_array_equal(result.final_mask, result.mask_history[-1])
    # The 56 nm via needs large corrections: the final update must move pixels.
    assert not np.array_equal(result.final_mask, result.mask_history[-2])


def test_opc_zero_iterations_returns_uncorrected_target(simulator):
    layout = single_via_layout()
    result = OPCEngine(simulator, OPCConfig(iterations=0, use_srafs=False)).correct(layout)
    np.testing.assert_array_equal(result.final_mask, result.target)
    assert result.iterations == 0
    assert len(result.mask_history) == 1
    np.testing.assert_array_equal(result.mask_history[0], result.target)


def test_epe_statistics_empty_values_are_zero():
    stats = EPEStatistics(values=np.array([]), pixel_size=8.0, frozen_fragments=4)
    assert stats.mean_abs_nm == 0.0
    assert stats.max_abs_nm == 0.0
    assert stats.rms_nm == 0.0
    assert stats.violations(1.0) == 0


# --------------------------------------------------------------------- #
# Bit-packed mask history
# --------------------------------------------------------------------- #
def test_mask_history_roundtrips_binary_masks(rng):
    masks = [(rng.random((32, 32)) > 0.5).astype(np.float64) for _ in range(5)]
    history = MaskHistory(masks)
    assert len(history) == 5
    for stored, original in zip(history, masks):
        assert stored.dtype == original.dtype
        np.testing.assert_array_equal(stored, original)
    np.testing.assert_array_equal(history[2], masks[2])
    np.testing.assert_array_equal(history[-1], masks[-1])
    assert all(np.array_equal(a, b) for a, b in zip(history[1:3], masks[1:3]))


def test_mask_history_packs_eightfold(rng):
    masks = [(rng.random((64, 64)) > 0.5).astype(np.float64) for _ in range(4)]
    history = MaskHistory(masks)
    raw_bytes = sum(m.nbytes for m in masks)
    assert history.nbytes <= raw_bytes / 8 + 4 * 64  # packbits + rounding slack


def test_mask_history_equality():
    a = np.eye(4)
    b = np.zeros((4, 4))
    history = MaskHistory([a, b])
    assert history == [a, b]
    assert history == MaskHistory([a, b])
    assert not history == [a]
    assert not history == [a, a]
    assert MaskHistory() == []


def test_mask_history_keeps_non_binary_masks_raw(rng):
    graded = rng.random((16, 16))
    history = MaskHistory([graded])
    np.testing.assert_array_equal(history[0], graded)
    returned = history[0]
    returned[:] = 0.0  # returned arrays never alias storage
    np.testing.assert_array_equal(history[0], graded)


def test_opc_offsets_respect_bounds(simulator):
    layout = single_via_layout()
    config = OPCConfig(iterations=12, max_offset=5.0)
    engine = OPCEngine(simulator, config)
    result = engine.correct(layout)
    # The final mask cannot have grown any feature by more than max_offset
    # pixels per side: bound the total printed mask area accordingly.
    via_pixels = 7
    max_size = via_pixels + 2 * config.max_offset
    assert result.final_mask.sum() <= max_size**2 + 4 * 100  # + SRAF area allowance
