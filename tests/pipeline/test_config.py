"""Tests for the unified execution-config document and serializable plans.

Pins the PR-10 contracts: :class:`ExecutionConfig` is the one knob document
(explicit > ``REPRO_*`` env > default, resolved exactly once, with per-field
provenance and structured :class:`ConfigError`\\ s), :class:`ExecutionPlan`
round-trips through JSON and matches the executed :class:`PipelineStats`,
and every consumer reaches the pipeline through ``config=`` with the legacy
keyword shims warning on the way out.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import fields, replace

import numpy as np
import pytest

from repro import knobs
from repro.core import DOINN
from repro.evaluation.runtime import (
    measure_model_throughput,
    measure_simulator_throughput,
)
from repro.experiments import Harness
from repro.experiments.figure6_runtime import run_figure6
from repro.experiments.table4_large_tile import run_table4
from repro.litho import LithoSimulator
from repro.nn.backends import get_backend
from repro.opc import OPCConfig
from repro.pipeline import (
    ConfigError,
    ExecutionConfig,
    ExecutionPlan,
    InferencePipeline,
    ParallelConfig,
    RetryPolicy,
)
from repro.pipeline.supervision import DEFAULT_MAX_RETRIES

#: Every environment leg ExecutionConfig.resolve() consults.
KNOB_ENVS = (
    "REPRO_NUM_WORKERS",
    "REPRO_STREAMING",
    "REPRO_INCREMENTAL_OPC",
    "REPRO_RESULT_CACHE",
    "REPRO_BLAS_THREADS",
    "REPRO_WORKER_TIMEOUT",
    "REPRO_WORKER_RETRIES",
    "REPRO_DEGRADE",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Every test starts from an empty knob environment."""
    for name in KNOB_ENVS:
        monkeypatch.delenv(name, raising=False)


@pytest.fixture(scope="module")
def model(tiny_model_factory) -> DOINN:
    return tiny_model_factory("doinn")


def _mask(size: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# Resolution: explicit > env > default, exactly once
# --------------------------------------------------------------------- #
def test_resolve_defaults():
    cfg = ExecutionConfig().resolve()
    assert cfg.resolved
    assert cfg.batch_size == 8
    assert cfg.optical_diameter_pixels == 16
    assert cfg.num_workers == 0
    assert cfg.compile is False
    assert cfg.streaming is True
    assert cfg.incremental is True
    assert cfg.blas_threads == 0
    assert cfg.result_cache == 0
    assert cfg.retry == RetryPolicy(timeout=None, max_retries=DEFAULT_MAX_RETRIES, degrade=True)
    # Deliberate pass-throughs stay None.
    assert cfg.tile_size is None
    assert cfg.backend is None
    assert cfg.shard_tiles is None
    assert cfg.chunk_size is None
    for name in ("batch_size", "num_workers", "streaming", "incremental", "blas_threads"):
        assert cfg.source_of(name) == "default"


def test_resolve_is_idempotent():
    cfg = ExecutionConfig(num_workers=2).resolve()
    assert cfg.resolve() is cfg


@pytest.mark.parametrize(
    ("env", "raw", "field", "env_value", "explicit", "explicit_value"),
    [
        ("REPRO_NUM_WORKERS", "3", "num_workers", 3, 1, 1),
        ("REPRO_STREAMING", "0", "streaming", False, True, True),
        ("REPRO_INCREMENTAL_OPC", "0", "incremental", False, True, True),
        ("REPRO_RESULT_CACHE", "1024", "result_cache", 1024, 2048, 2048),
        ("REPRO_BLAS_THREADS", "5", "blas_threads", 5, 2, 2),
    ],
)
def test_env_vs_explicit_precedence(monkeypatch, env, raw, field, env_value, explicit, explicit_value):
    monkeypatch.setenv(env, raw)
    from_env = ExecutionConfig().resolve()
    assert getattr(from_env, field) == env_value
    assert from_env.source_of(field) == env

    forced = ExecutionConfig(**{field: explicit}).resolve()
    assert getattr(forced, field) == explicit_value
    assert forced.source_of(field) == "explicit"


@pytest.mark.parametrize(
    ("env", "raw", "attr", "env_value", "explicit_retry", "explicit_value"),
    [
        ("REPRO_WORKER_TIMEOUT", "7.5", "timeout", 7.5, RetryPolicy(timeout=3.0), 3.0),
        ("REPRO_WORKER_RETRIES", "5", "max_retries", 5, RetryPolicy(max_retries=1), 1),
        ("REPRO_DEGRADE", "0", "degrade", False, RetryPolicy(degrade=True), True),
    ],
)
def test_retry_env_vs_explicit_precedence(monkeypatch, env, raw, attr, env_value, explicit_retry, explicit_value):
    monkeypatch.setenv(env, raw)
    from_env = ExecutionConfig().resolve()
    assert getattr(from_env.retry, attr) == env_value
    assert from_env.source_of(f"retry.{attr}") == env

    forced = ExecutionConfig(retry=explicit_retry).resolve()
    assert getattr(forced.retry, attr) == explicit_value
    assert forced.source_of(f"retry.{attr}") == "explicit"


def test_retry_timeout_zero_sentinel_survives_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "9")
    cfg = ExecutionConfig(retry=RetryPolicy(timeout=0)).resolve()
    assert cfg.retry.timeout == 0
    assert cfg.source_of("retry.timeout") == "explicit"


def test_blas_default_tracks_workers():
    assert ExecutionConfig(num_workers=2).resolve().blas_threads == 1
    assert ExecutionConfig(num_workers=0).resolve().blas_threads == 0


def test_sources_empty_before_resolution():
    cfg = ExecutionConfig(num_workers=2)
    assert cfg.sources == {}
    assert cfg.source_of("num_workers") == "explicit"
    assert cfg.source_of("streaming") == "unset"
    assert set(cfg.resolve().sources) >= {"batch_size", "retry.timeout", "result_cache"}


# --------------------------------------------------------------------- #
# Merging (satellite 2: the one ParallelConfig-style override pass)
# --------------------------------------------------------------------- #
def test_merged_other_wins_field_by_field():
    base = ExecutionConfig(num_workers=1, streaming=True, batch_size=4)
    other = ExecutionConfig(num_workers=2, blas_threads=3)
    merged = base.merged(other)
    assert merged.num_workers == 2          # other's set field wins
    assert merged.blas_threads == 3
    assert merged.streaming is True         # other's None never overrides
    assert merged.batch_size == 4


def test_merged_overrides_beat_other():
    base = ExecutionConfig(num_workers=1)
    other = ExecutionConfig(num_workers=2)
    assert base.merged(other, num_workers=4).num_workers == 4
    assert base.merged(other, num_workers=None).num_workers == 2


def test_merged_unknown_knob_raises():
    with pytest.raises(ConfigError) as excinfo:
        ExecutionConfig().merged(worker_count=2)
    assert excinfo.value.field == "worker_count"
    assert "worker_count" in str(excinfo.value)


def test_merged_no_changes_returns_self():
    cfg = ExecutionConfig(num_workers=1)
    assert cfg.merged() is cfg
    assert cfg.merged(ExecutionConfig(), num_workers=None) is cfg


def test_merged_invalidates_resolution():
    resolved = ExecutionConfig().resolve()
    assert resolved.merged(num_workers=2).resolved is False


def test_parallel_config_round_trip():
    policy = RetryPolicy(timeout=1.0, max_retries=3)
    parallel = ParallelConfig(
        num_workers=2, chunk_size=3, streaming=False, retry=policy, blas_threads=1
    )
    lifted = ExecutionConfig.from_parallel(parallel)
    assert lifted.num_workers == 2
    assert lifted.chunk_size == 3
    assert lifted.streaming is False
    assert lifted.retry == policy
    assert lifted.blas_threads == 1
    back = lifted.parallel()
    assert (back.num_workers, back.chunk_size, back.streaming, back.retry, back.blas_threads) == (
        2, 3, False, policy, 1,
    )


# --------------------------------------------------------------------- #
# Validation: structured errors naming field + source
# --------------------------------------------------------------------- #
def test_validate_names_field_and_source():
    with pytest.raises(ConfigError) as excinfo:
        ExecutionConfig(batch_size=0).validate()
    assert excinfo.value.field == "batch_size"
    assert excinfo.value.source == "explicit"
    assert "batch_size" in str(excinfo.value)


def test_config_error_is_value_error():
    assert issubclass(ConfigError, ValueError)
    with pytest.raises(ValueError):
        ExecutionConfig(num_workers=-1).validate()


@pytest.mark.parametrize(
    ("field", "value"),
    [
        ("batch_size", True),           # bools are not sizes
        ("tile_size", 0),
        ("chunk_size", 0),
        ("blas_threads", -1),
        ("backend", "not-a-backend"),
        ("streaming", 1),
        ("shard_tiles", "yes"),
        ("incremental", 0),
        ("result_cache", 1.5),
        ("retry", object()),
    ],
)
def test_validate_rejects_bad_values(field, value):
    with pytest.raises(ConfigError) as excinfo:
        ExecutionConfig(**{field: value}).validate()
    assert excinfo.value.field == field


def test_resolve_validates():
    with pytest.raises(ConfigError):
        ExecutionConfig(batch_size=0).resolve()


# --------------------------------------------------------------------- #
# Serialization (satellite 3: JSON round-trips)
# --------------------------------------------------------------------- #
def test_config_json_round_trip():
    cfg = ExecutionConfig(
        tile_size=32,
        batch_size=4,
        num_workers=2,
        chunk_size=3,
        streaming=False,
        shard_tiles=True,
        result_cache=4096,
        retry=RetryPolicy(timeout=1.5, max_retries=1, degrade=False),
        backend="float32",
        blas_threads=1,
        incremental=False,
    )
    assert ExecutionConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg


def test_resolved_config_json_round_trip():
    cfg = ExecutionConfig(num_workers=2).resolve()
    restored = ExecutionConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
    assert restored == cfg
    assert restored.resolved


def test_to_dict_serializes_backend_object():
    cfg = ExecutionConfig(backend=get_backend("float32"))
    assert cfg.to_dict()["backend"] == "float32"


def test_from_dict_unknown_key_raises():
    with pytest.raises(ConfigError) as excinfo:
        ExecutionConfig.from_dict({"num_workers": 2, "workers": 3})
    assert excinfo.value.field == "workers"


def test_plan_from_dict_unknown_key_raises():
    with pytest.raises(ConfigError) as excinfo:
        ExecutionPlan.from_dict({"engine": "doinn", "modes": "native"})
    assert excinfo.value.field == "modes"


def test_knob_registry_maps_to_config_fields():
    """Every execution knob in the registry names a real config field."""
    config_fields = {spec.name for spec in fields(ExecutionConfig)}
    retry_fields = {spec.name for spec in fields(RetryPolicy)}
    mapped = set()
    for knob in knobs.all_knobs():
        if not knob.field:
            continue
        if knob.field.startswith("retry."):
            assert knob.field.removeprefix("retry.") in retry_fields, knob.name
        else:
            assert knob.field in config_fields, knob.name
        mapped.add(knob.name)
    assert {
        "REPRO_NUM_WORKERS", "REPRO_STREAMING", "REPRO_RESULT_CACHE",
        "REPRO_INCREMENTAL_OPC", "REPRO_BACKEND", "REPRO_BLAS_THREADS",
        "REPRO_WORKER_TIMEOUT", "REPRO_WORKER_RETRIES", "REPRO_DEGRADE",
        "REPRO_COMPILE",
    } <= mapped


# --------------------------------------------------------------------- #
# Plans: serializable, executable, and honest about what ran
# --------------------------------------------------------------------- #
STITCHED = ExecutionConfig(
    tile_size=32, batch_size=4, optical_diameter_pixels=16, result_cache=False
)


def test_plan_stitched_geometry(model):
    with InferencePipeline(model, config=STITCHED) as pipeline:
        plan = pipeline.plan(np.stack([_mask(64, seed=s) for s in (1, 2)]))
    assert plan.engine == pipeline.name
    assert plan.mode == "stitched"
    assert plan.num_masks == 2
    assert plan.mask_shape == (64, 64)
    rows, cols = plan.tile_grid
    assert (rows, cols) == (3, 3)  # overlapping tiles: stride < tile_size
    assert plan.tiles_per_mask == rows * cols
    assert plan.num_tiles == plan.num_masks * plan.tiles_per_mask
    assert plan.sharded_tiles is False
    assert plan.compute_identity


def test_plan_json_round_trip(model):
    with InferencePipeline(model, config=STITCHED) as pipeline:
        plan = pipeline.plan(_mask(64))
    restored = ExecutionPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert restored == plan
    assert isinstance(restored.mask_shape, tuple)
    assert isinstance(restored.tile_grid, tuple)


@pytest.mark.parametrize("size,mode", [(32, "native"), (64, "stitched")])
def test_plan_matches_executed_stats(model, size, mode):
    masks = np.stack([_mask(size, seed=s) for s in (3, 4, 5)])
    with InferencePipeline(model, config=STITCHED) as pipeline:
        plan = pipeline.plan(masks)
        result = pipeline.run(masks)
    assert plan.mode == mode
    stats = result.stats
    assert (stats.mode, stats.num_tiles, stats.num_batches, stats.sharded_tiles) == (
        plan.mode, plan.num_tiles, plan.num_batches, plan.sharded_tiles,
    )
    assert stats.num_masks == plan.num_masks


def test_execute_matches_predict(model):
    masks = np.stack([_mask(64, seed=s) for s in (6, 7)])
    with InferencePipeline(model, config=STITCHED) as pipeline:
        plan = pipeline.plan(masks)
        executed = pipeline.execute(plan, masks)
        reference = pipeline.predict(masks)
    assert np.array_equal(executed.outputs[:, 0], reference)


def test_execute_rejects_foreign_plans(model):
    masks = _mask(64)
    with InferencePipeline(model, config=STITCHED) as pipeline:
        plan = pipeline.plan(masks)
        with pytest.raises(ValueError, match="built for engine"):
            pipeline.execute(replace(plan, engine="someone-else"), masks)
        with pytest.raises(ValueError, match="plan covers"):
            pipeline.execute(plan, np.stack([masks, masks]))


def test_plan_pooled_sharded(model):
    masks = np.stack([_mask(64, seed=s) for s in (8, 9)])
    with InferencePipeline(model, config=STITCHED.merged(num_workers=2)) as pipeline:
        plan = pipeline.plan(masks)
        stats = pipeline.run(masks).stats
    assert plan.num_workers == 2
    assert plan.sharded_tiles is True
    assert plan.super_batch == 4 * 2
    assert (stats.mode, stats.num_tiles, stats.num_batches, stats.sharded_tiles) == (
        plan.mode, plan.num_tiles, plan.num_batches, plan.sharded_tiles,
    )


# --------------------------------------------------------------------- #
# Config route == kwarg route, bit for bit (acceptance)
# --------------------------------------------------------------------- #
def _legacy_pipeline(engine, **kwargs) -> InferencePipeline:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return InferencePipeline(engine, **kwargs)


def test_config_route_matches_kwargs_zoo_wide(zoo_model):
    _, engine = zoo_model
    masks = np.stack([_mask(32, seed=s) for s in (10, 11, 12)])
    with _legacy_pipeline(engine, batch_size=2, result_cache=False) as legacy:
        expected = legacy.predict(masks)
    with InferencePipeline(
        engine, config=ExecutionConfig(batch_size=2, result_cache=False)
    ) as routed:
        assert np.array_equal(routed.predict(masks), expected)


def test_config_route_matches_kwargs_stitched(model):
    masks = np.stack([_mask(64, seed=s) for s in (13, 14)])
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=16, result_cache=False)
    with _legacy_pipeline(model, **kwargs) as legacy:
        expected = legacy.predict(masks)
    with InferencePipeline(model, config=ExecutionConfig(**kwargs)) as routed:
        assert np.array_equal(routed.predict(masks), expected)


def test_config_route_matches_kwargs_pooled(model):
    masks = np.stack([_mask(64, seed=s) for s in (15, 16)])
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=16, result_cache=False)
    with _legacy_pipeline(model, num_workers=2, **kwargs) as legacy:
        expected = legacy.predict(masks)
    with InferencePipeline(
        model, config=ExecutionConfig(num_workers=2, **kwargs)
    ) as routed:
        assert np.array_equal(routed.predict(masks), expected)


# --------------------------------------------------------------------- #
# Legacy kwarg shims: every path warns; config= stays silent
# --------------------------------------------------------------------- #
LEGACY_KWARGS = {
    "tile_size": 32,
    "batch_size": 2,
    "optical_diameter_pixels": 8,
    "num_workers": 0,
    "chunk_size": 1,
    "compile": False,
    "streaming": False,
    "shard_tiles": False,
    "result_cache": False,
    "retry": RetryPolicy(),
    "blas_threads": 0,
}


@pytest.mark.parametrize("name", sorted(LEGACY_KWARGS))
def test_pipeline_warns_per_legacy_kwarg(model, name):
    with pytest.warns(DeprecationWarning, match=name):
        pipeline = InferencePipeline(model, **{name: LEGACY_KWARGS[name]})
    pipeline.close()


def test_pipeline_warns_on_backend_kwarg(model):
    with pytest.warns(DeprecationWarning, match="backend"):
        pipeline = InferencePipeline(model, compile=True, backend="float32")
    pipeline.close()


def test_pipeline_warns_on_parallel_kwarg(model):
    with pytest.warns(DeprecationWarning, match="parallel"):
        pipeline = InferencePipeline(model, parallel=ParallelConfig(num_workers=0))
    pipeline.close()


def test_pipeline_kwargs_override_config(model):
    with pytest.warns(DeprecationWarning):
        pipeline = InferencePipeline(
            model, config=ExecutionConfig(batch_size=4), batch_size=2
        )
    assert pipeline.config.batch_size == 2
    assert pipeline.config.source_of("batch_size") == "explicit"
    pipeline.close()


def test_config_route_does_not_warn(model):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        pipeline = InferencePipeline(model, config=ExecutionConfig(batch_size=2))
        pipeline.close()


def test_harness_pipelines_warn_on_legacy_kwargs(model):
    harness = Harness()
    with pytest.warns(DeprecationWarning, match="model_pipeline"):
        harness.model_pipeline(model, num_workers=0).close()
    with pytest.warns(DeprecationWarning, match="simulator_pipeline"):
        harness.simulator_pipeline(streaming=False).close()


def test_harness_config_route_does_not_warn(model):
    harness = Harness()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        pipeline = harness.model_pipeline(
            model, config=ExecutionConfig(tile_size=32, batch_size=2)
        )
    assert pipeline.config.batch_size == 2
    pipeline.close()


def test_simulator_pipeline_forwards_every_knob():
    """Satellite pin: blas_threads / shard_tiles no longer silently dropped."""
    harness = Harness()
    cfg = ExecutionConfig(
        num_workers=0, blas_threads=0, shard_tiles=True, streaming=False, result_cache=False
    )
    pipeline = harness.simulator_pipeline(config=cfg)
    try:
        assert pipeline.config.blas_threads == 0
        assert pipeline.config.source_of("blas_threads") == "explicit"
        assert pipeline.config.shard_tiles is True
        assert pipeline.config.streaming is False
    finally:
        pipeline.close()


def test_measurement_helpers_warn_on_legacy_kwargs(model):
    mask = _mask(32)
    with pytest.warns(DeprecationWarning, match="measure_model_throughput"):
        measure_model_throughput(model, mask, 16.0, repeats=1, warmup=0, num_workers=0)
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=4, kernel_support=15)
    with pytest.warns(DeprecationWarning, match="measure_simulator_throughput"):
        measure_simulator_throughput(simulator, mask, repeats=1, warmup=0, streaming=False)


@pytest.mark.parametrize("driver", [run_figure6, run_table4])
def test_experiment_drivers_warn_on_legacy_kwargs(driver):
    # An unknown knob raises right after the warning, so neither driver gets
    # far enough to build a harness — this pins the warn-then-merge order.
    with pytest.warns(DeprecationWarning, match="deprecated"):
        with pytest.raises(ConfigError):
            driver(definitely_not_a_knob=1)


def test_opc_config_execution_merge():
    """The deprecated per-knob OPC fields override the embedded config."""
    cfg = OPCConfig(
        num_workers=2,
        execution=ExecutionConfig(num_workers=4, streaming=False, blas_threads=3),
    )
    merged = cfg.execution_config()
    assert merged.num_workers == 2       # legacy mirror field wins
    assert merged.streaming is False     # embedded config fills the rest
    assert merged.blas_threads == 3
    embedded_only = OPCConfig(execution=ExecutionConfig(num_workers=4))
    assert embedded_only.execution_config().num_workers == 4
