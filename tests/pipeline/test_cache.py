"""Tests for the result cache and the incremental (patched) re-simulation plan.

Two families of invariants:

* :class:`repro.pipeline.MaskResultCache` — bounded LRU semantics, the
  ``REPRO_RESULT_CACHE`` knob, and bit-identity of cache-served predictions
  (the miss subset runs as one smaller batch, which is equivalent by the same
  partition invariance the worker-pool sharding relies on).
* ``predict_patched`` — re-simulating only dirty tile windows and splicing
  their ownership regions into the cached full-image map must reproduce the
  plain ``predict`` output exactly, for the golden simulator (aerial patching)
  and for stitchable models (GP-feature patching), serial and pooled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout.tiling import extract_tiles, stitch_cores, tile_grid
from repro.litho import LithoSimulator
from repro.pipeline import (
    DEFAULT_CACHE_BUDGET_BYTES,
    InferencePipeline,
    MaskResultCache,
    PipelineStats,
    RESULT_CACHE_ENV,
    choose_patch_tile,
    hash_array,
    ownership_slices,
    resolve_cache_budget,
)


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=16.0, num_kernels=10, kernel_support=31)


def _random_mask(size: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# MaskResultCache primitives
# --------------------------------------------------------------------- #
def test_cache_hit_miss_counting():
    cache = MaskResultCache(budget_bytes=1 << 20)
    value = np.arange(16, dtype=np.float64).reshape(4, 4)
    key = hash_array(value)
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put(key, value)
    got = cache.get(key)
    assert np.array_equal(got, value)
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1 and cache.nbytes == value.nbytes


def test_cache_returns_copies():
    cache = MaskResultCache(budget_bytes=1 << 20)
    value = np.ones((4, 4))
    cache.put(b"k", value)
    value[:] = 7.0  # mutating the source must not reach the cache
    got = cache.get(b"k")
    assert np.array_equal(got, np.ones((4, 4)))
    got[:] = 9.0  # nor may mutating a returned value
    assert np.array_equal(cache.get(b"k"), np.ones((4, 4)))


def test_cache_lru_eviction_respects_budget():
    item = np.zeros((8, 8))  # 512 bytes each
    cache = MaskResultCache(budget_bytes=3 * item.nbytes)
    for name in (b"a", b"b", b"c"):
        cache.put(name, item)
    cache.get(b"a")  # refresh "a"; "b" becomes least recently used
    cache.put(b"d", item)
    assert cache.get(b"b") is None
    assert cache.get(b"a") is not None and cache.get(b"d") is not None
    assert cache.nbytes <= cache.budget_bytes


def test_cache_oversized_value_is_a_noop():
    cache = MaskResultCache(budget_bytes=64)
    cache.put(b"big", np.zeros((16, 16)))
    assert len(cache) == 0 and cache.get(b"big") is None


def test_cache_clear_and_invalid_budget():
    cache = MaskResultCache(budget_bytes=1 << 12)
    cache.put(b"k", np.zeros(4))
    cache.clear()
    assert len(cache) == 0 and cache.nbytes == 0
    with pytest.raises(ValueError):
        MaskResultCache(budget_bytes=0)


def test_hash_array_distinguishes_content_shape_dtype():
    base = np.arange(16, dtype=np.float64)
    assert hash_array(base) == hash_array(base.copy())
    assert hash_array(base) != hash_array(base.reshape(4, 4))
    assert hash_array(base) != hash_array(base.astype(np.float32))
    perturbed = base.copy()
    perturbed[3] += 1.0
    assert hash_array(base) != hash_array(perturbed)


# --------------------------------------------------------------------- #
# The REPRO_RESULT_CACHE knob
# --------------------------------------------------------------------- #
def test_resolve_cache_budget_argument_wins(monkeypatch):
    monkeypatch.setenv(RESULT_CACHE_ENV, "on")
    assert resolve_cache_budget(False) == 0
    assert resolve_cache_budget(True) == DEFAULT_CACHE_BUDGET_BYTES
    assert resolve_cache_budget(12345) == 12345


@pytest.mark.parametrize(
    "raw, expected",
    [
        ("", 0),
        ("off", 0),
        ("0", 0),
        ("on", DEFAULT_CACHE_BUDGET_BYTES),
        ("true", DEFAULT_CACHE_BUDGET_BYTES),
        ("4096", 4096),
    ],
)
def test_resolve_cache_budget_env(monkeypatch, raw, expected):
    monkeypatch.setenv(RESULT_CACHE_ENV, raw)
    assert resolve_cache_budget(None) == expected


def test_resolve_cache_budget_rejects_junk(monkeypatch):
    monkeypatch.setenv(RESULT_CACHE_ENV, "sometimes")
    with pytest.raises(ValueError):
        resolve_cache_budget(None)


# --------------------------------------------------------------------- #
# Ownership regions == scan-order core stitch
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("size, tile, margin", [(64, 32, 8), (96, 32, 4), (64, 64, 8)])
def test_ownership_slices_match_stitch_cores(size, tile, margin):
    rng = np.random.default_rng(7)
    specs = tile_grid((size, size), tile)
    tiles = rng.random((len(specs), tile, tile))
    expected = stitch_cores(tiles, specs, (size, size), margin)
    patched = np.zeros((size, size))
    for (local, target), window in zip(ownership_slices(specs, (size, size), margin), tiles):
        patched[target] = window[local]
    assert np.array_equal(patched, expected)


def test_ownership_slices_reject_oversized_margin():
    specs = tile_grid((64, 64), 32)
    with pytest.raises(ValueError):
        ownership_slices(specs, (64, 64), margin=9)  # 9 > 32 // 4


def test_choose_patch_tile():
    assert choose_patch_tile(128, 15) == 64    # smallest even divisor >= 4r
    assert choose_patch_tile(256, 15) == 64
    assert choose_patch_tile(128, 40) == 128   # no divisor fits: whole image
    assert choose_patch_tile(96, 15) == 96     # divisors top out at 48 < 60


# --------------------------------------------------------------------- #
# Result cache in front of InferencePipeline.run
# --------------------------------------------------------------------- #
def test_pipeline_result_cache_repeats_bit_identical(simulator):
    masks = np.stack([_random_mask(64, seed=s) for s in (1, 2)])
    plain = InferencePipeline(simulator, batch_size=4)
    cached = InferencePipeline(simulator, batch_size=4, result_cache=True)
    expected = plain.predict(masks)

    first = cached.run(masks)
    assert np.array_equal(first.outputs[:, 0], expected)
    assert first.stats.cache_hits == 0 and first.stats.cache_misses == 2

    second = cached.run(masks)
    assert np.array_equal(second.outputs[:, 0], expected)
    assert second.stats.cache_hits == 2 and second.stats.cache_misses == 0
    assert second.stats.num_batches == 0  # nothing touched the executor


def test_pipeline_result_cache_mixed_batch(simulator):
    seen = _random_mask(64, seed=1)
    fresh = _random_mask(64, seed=3)
    plain = InferencePipeline(simulator, batch_size=4)
    cached = InferencePipeline(simulator, batch_size=4, result_cache=True)
    cached.predict(seen)

    batch = np.stack([fresh, seen, fresh])  # duplicate miss + one hit
    result = cached.run(batch)
    assert np.array_equal(result.outputs[:, 0], plain.predict(batch))
    assert result.stats.cache_hits == 1 and result.stats.cache_misses == 2


def test_pipeline_result_cache_disabled_by_default(simulator):
    pipeline = InferencePipeline(simulator, batch_size=4)
    assert pipeline.result_cache is None
    stats = pipeline.run(_random_mask(64)).stats
    assert stats.cache_hits == 0 and stats.cache_misses == 0


def test_model_result_cache_keys_by_execution_plan(tiny_model_factory):
    """The same mask under naive vs stitched plans must not share entries."""
    model = tiny_model_factory("doinn")
    mask = _random_mask(64)
    pipeline = InferencePipeline(
        model, tile_size=32, batch_size=8, optical_diameter_pixels=8, result_cache=True
    )
    stitched = pipeline.predict(mask, stitch=True)
    naive = pipeline.predict_naive(mask)
    assert not np.array_equal(stitched, naive)
    # Repeats of each plan come back from their own entry, unchanged.
    assert np.array_equal(pipeline.predict(mask, stitch=True), stitched)
    assert np.array_equal(pipeline.predict_naive(mask), naive)


# --------------------------------------------------------------------- #
# Patched aerial re-simulation (golden simulator)
# --------------------------------------------------------------------- #
def test_patched_simulator_matches_predict_over_perturbations(simulator):
    pipeline = InferencePipeline(simulator, batch_size=4)
    state = pipeline.incremental_state((128, 128))
    assert state.mode == "aerial" and state.tile_size == 64 and state.n_tiles == 9

    mask = _random_mask(128)
    # First call: no ledger yet -> one native full refresh.
    out = pipeline.predict_patched(mask, state)
    assert np.array_equal(out, pipeline.predict(mask))
    assert state.counters.full_refreshes == 1

    # Local perturbation inside one window's core -> a patched call.
    mask = mask.copy()
    mask[8:12, 8:12] = 1.0 - mask[8:12, 8:12]
    out = pipeline.predict_patched(mask, state)
    assert np.array_equal(out, pipeline.predict(mask))
    assert state.counters.patched_calls == 1
    assert 0 < state.last_stats.dirty_tiles < state.n_tiles

    # Exact repeat -> clean call, no tile re-simulated.
    out = pipeline.predict_patched(mask.copy(), state)
    assert np.array_equal(out, pipeline.predict(mask))
    assert state.counters.clean_calls == 1

    # Heavy perturbation -> the hybrid cost model prefers a native refresh.
    mask = _random_mask(128, seed=99)
    out = pipeline.predict_patched(mask, state)
    assert np.array_equal(out, pipeline.predict(mask))
    assert state.counters.full_refreshes == 2


def test_patched_simulator_trusts_candidate_windows(simulator):
    pipeline = InferencePipeline(simulator, batch_size=4)
    state = pipeline.incremental_state((128, 128))
    mask = _random_mask(128)
    pipeline.predict_patched(mask, state)

    mask = mask.copy()
    mask[8:12, 8:12] = 1.0 - mask[8:12, 8:12]
    dirty = state.dirty_windows(mask, None)
    state._pending = {}
    out = pipeline.predict_patched(mask, state, candidates=dirty)
    assert np.array_equal(out, pipeline.predict(mask))
    # Only the candidate windows were re-hashed and re-simulated.
    assert state.last_stats.dirty_tiles == len(dirty)


def test_patched_simulator_single_window_fallback(simulator):
    """Images no window divides degenerate to skip-if-unchanged, still exact."""
    pipeline = InferencePipeline(simulator, batch_size=4)
    state = pipeline.incremental_state((96, 96))
    assert state.n_tiles == 1
    mask = _random_mask(96)
    assert np.array_equal(pipeline.predict_patched(mask, state), pipeline.predict(mask))
    pipeline.predict_patched(mask.copy(), state)
    assert state.counters.clean_calls == 1
    mask[40:44, 40:44] = 1.0
    out = pipeline.predict_patched(mask, state)
    assert np.array_equal(out, pipeline.predict(mask))
    assert state.counters.full_refreshes == 2


def test_patched_rejects_wrong_shape(simulator):
    pipeline = InferencePipeline(simulator, batch_size=4)
    state = pipeline.incremental_state((128, 128))
    with pytest.raises(ValueError):
        pipeline.predict_patched(_random_mask(64), state)


def test_patched_populates_result_cache(simulator):
    pipeline = InferencePipeline(simulator, batch_size=4, result_cache=True)
    state = pipeline.incremental_state((128, 128))
    mask = _random_mask(128)
    out = pipeline.predict_patched(mask, state)
    result = pipeline.run(mask)
    assert result.stats.cache_hits == 1
    assert np.array_equal(result.outputs[0, 0], out)


# --------------------------------------------------------------------- #
# Patched GP re-simulation (stitchable models)
# --------------------------------------------------------------------- #
def test_patched_gp_matches_stitched_bit_for_bit(tiny_model_factory):
    model = tiny_model_factory("doinn")
    pipeline = InferencePipeline(
        model, tile_size=32, batch_size=8, optical_diameter_pixels=8
    )
    state = pipeline.incremental_state((64, 64))
    assert state.mode == "gp"

    mask = _random_mask(64)
    for step in range(4):
        out = pipeline.predict_patched(mask, state)
        assert np.array_equal(out, pipeline.predict(mask, stitch=True))
        mask = mask.copy()
        mask[2 * step, 3 * step] = 1.0 - mask[2 * step, 3 * step]
    assert state.counters.patched_calls >= 1


def test_patched_unsupported_engine_raises(tiny_model_factory):
    pipeline = InferencePipeline(tiny_model_factory("unet"), batch_size=8)
    with pytest.raises(ValueError):
        pipeline.incremental_state((64, 64))


# --------------------------------------------------------------------- #
# Worker pool: patched plan through the num_workers x batch_size path
# --------------------------------------------------------------------- #
def test_patched_simulator_pooled_matches_serial(simulator):
    serial = InferencePipeline(simulator, batch_size=4)
    with InferencePipeline(simulator, batch_size=2, num_workers=2) as pooled:
        state = pooled.incremental_state((128, 128))
        mask = _random_mask(128)
        assert np.array_equal(pooled.predict_patched(mask, state), serial.predict(mask))
        mask = mask.copy()
        mask[8:12, 8:12] = 1.0 - mask[8:12, 8:12]
        assert np.array_equal(pooled.predict_patched(mask, state), serial.predict(mask))
        assert state.counters.patched_calls == 1


def test_pipeline_stats_new_fields_default():
    stats = PipelineStats()
    assert stats.cache_hits == 0
    assert stats.cache_misses == 0
    assert stats.dirty_tiles == 0


# --------------------------------------------------------------------- #
# Compute identity in the cache key (PR 8 bugfix)
# --------------------------------------------------------------------- #
def test_result_cache_keys_by_compute_backend(tiny_model_factory):
    """Bugfix pin: the key folds in the compute identity (engine + backend
    lane + lane dtype), so a float32-lane pipeline sharing a cache store with
    a float64 one is never served the other lane's entries — previously the
    key was mask content alone and the first lane to run poisoned the rest."""
    model = tiny_model_factory("doinn")
    masks = np.stack([_random_mask(32, seed=s) for s in (1, 2)])
    p64 = InferencePipeline(model, batch_size=4, compile=True, result_cache=True)
    first = p64.run(masks)
    assert first.stats.cache_misses == 2

    p32 = InferencePipeline(model, batch_size=4, compile=True, backend="float32")
    p32.result_cache = p64.result_cache  # deliberately share the store
    crossed = p32.run(masks)
    assert crossed.stats.cache_hits == 0 and crossed.stats.cache_misses == 2

    # The float64 entries are untouched: a re-run hits them bit-identically,
    # and a fresh same-lane pipeline computes the same identity.
    again = p64.run(masks)
    assert again.stats.cache_hits == 2 and again.stats.cache_misses == 0
    assert np.array_equal(again.outputs, first.outputs)
    twin = InferencePipeline(model, batch_size=4, compile=True)
    twin.result_cache = p64.result_cache
    assert twin.run(masks).stats.cache_hits == 2


def test_result_cache_distinguishes_simulator_from_model(simulator, tiny_model_factory):
    """The golden simulator's identity ("golden") differs from any model
    engine's, so a shared store keyed on the same mask never crosses them."""
    mask = _random_mask(32)
    sim = InferencePipeline(simulator, batch_size=4, result_cache=True)
    sim.predict(mask)
    model = InferencePipeline(tiny_model_factory("doinn"), batch_size=4)
    model.result_cache = sim.result_cache
    assert model.run(mask).stats.cache_hits == 0
