"""Tests for the parallel worker-pool backend and the zero-copy conv hot path.

Two invariants anchor this file:

* sharding any executor across a :class:`WorkerPoolExecutor` is a pure
  transport change — outputs are **bit-identical** to the serial path for
  learned models and the golden simulator, on both the native and the
  stitched large-tile plans;
* the rewritten ``im2col``/``col2im``/``conv2d`` hot path is pinned against
  the seed slice-loop implementations — same values, same autograd
  gradients — across strides, paddings and kernel sizes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.litho import LithoSimulator
from repro.nn import Tensor
from repro.nn import functional as F
from repro.pipeline import (
    InferencePipeline,
    ModelExecutor,
    ParallelConfig,
    RetryPolicy,
    SimulatorExecutor,
    WorkerPoolError,
    WorkerPoolExecutor,
    resolve_num_workers,
)

#: Pre-supervision failure semantics: no retries, no degradation — a worker
#: failure surfaces immediately as WorkerPoolError.  The graceful-degradation
#: default is covered by tests/pipeline/test_supervision.py.
STRICT = RetryPolicy(max_retries=0, degrade=False)
from repro.pipeline.executors import Executor


@pytest.fixture(scope="module")
def model(tiny_model_factory):
    return tiny_model_factory("doinn")


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=16.0, num_kernels=8, kernel_support=31)


def _random_masks(n: int, size: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# Bit-identical sharding
# --------------------------------------------------------------------- #
def test_worker_pool_model_bit_identical(model):
    masks = _random_masks(6, 32)
    serial = InferencePipeline(model, batch_size=4)
    with InferencePipeline(model, batch_size=4, num_workers=2) as parallel:
        assert isinstance(parallel.executor, WorkerPoolExecutor)
        assert np.array_equal(parallel.predict(masks), serial.predict(masks))


def test_worker_pool_simulator_bit_identical(simulator):
    masks = _random_masks(5, 32)
    serial = InferencePipeline(simulator, batch_size=4)
    with InferencePipeline(simulator, batch_size=4, num_workers=2) as parallel:
        assert np.array_equal(parallel.predict(masks), serial.predict(masks))


def test_worker_pool_simulator_bit_identical_across_chunkings():
    """SOCS kernel chunking must not depend on the batch size a shard sees.

    12 kernels on 64x64 masks is a configuration where a batch-size-dependent
    kernel chunk would group the ``sum_k |field_k|^2`` accumulation
    differently for a whole batch of 8 than for its worker shards, flipping
    last-ULP bits (and, after resist thresholding, contour pixels)."""
    sim = LithoSimulator(pixel_size=16.0, num_kernels=12, kernel_support=35)
    masks = _random_masks(8, 64, seed=21)
    serial = InferencePipeline(sim, batch_size=8)
    with InferencePipeline(sim, batch_size=8, num_workers=2) as parallel:
        assert np.array_equal(parallel.predict(masks), serial.predict(masks))


def test_worker_pool_stitched_bit_identical(model):
    masks = _random_masks(2, 64, seed=3)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    serial = InferencePipeline(model, **kwargs)
    with InferencePipeline(model, num_workers=2, **kwargs) as parallel:
        assert np.array_equal(
            parallel.predict(masks, stitch=True), serial.predict(masks, stitch=True)
        )


def test_worker_pool_repeated_runs_reuse_pool(model):
    masks = _random_masks(4, 32)
    serial = InferencePipeline(model, batch_size=2)
    with InferencePipeline(model, batch_size=2, num_workers=2) as parallel:
        first = parallel.predict(masks)
        pool = parallel.executor._pool
        assert pool is not None
        second = parallel.predict(masks)
        assert parallel.executor._pool is pool  # no respawn per call
        assert np.array_equal(first, second)
        assert np.array_equal(first, serial.predict(masks))


# --------------------------------------------------------------------- #
# Degradation to the in-process path
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [0, 1])
def test_low_worker_counts_stay_in_process(model, workers):
    masks = _random_masks(4, 32)
    pipeline = InferencePipeline(model, batch_size=2, num_workers=workers)
    # The pipeline does not even wrap the executor for a serial worker count.
    assert isinstance(pipeline.executor, ModelExecutor)
    assert pipeline.num_workers == workers

    executor = WorkerPoolExecutor(model, num_workers=workers)
    out = executor.run_batch(masks[:, None])
    assert executor._pool is None  # never spawned a pool
    assert np.array_equal(out, ModelExecutor(model).run_batch(masks[:, None]))


def test_single_item_batches_run_in_process(model):
    with WorkerPoolExecutor(model, num_workers=2) as executor:
        out = executor.run_batch(_random_masks(1, 32)[:, None])
        assert executor._pool is None
        assert out.shape == (1, 1, 32, 32)


def test_env_override_controls_worker_count(model, monkeypatch):
    monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
    assert resolve_num_workers() == 3
    assert resolve_num_workers(2) == 2  # explicit argument wins
    assert ParallelConfig().resolved_workers() == 3
    pipeline = InferencePipeline(model)
    assert pipeline.num_workers == 3
    assert isinstance(pipeline.executor, WorkerPoolExecutor)
    monkeypatch.setenv("REPRO_NUM_WORKERS", "")
    assert resolve_num_workers() == 0
    monkeypatch.setenv("REPRO_NUM_WORKERS", "not-a-number")
    with pytest.raises(ValueError):
        resolve_num_workers()


def test_invalid_parallel_configuration(model):
    with pytest.raises(ValueError):
        resolve_num_workers(-1)
    with pytest.raises(ValueError):
        ParallelConfig(chunk_size=0)
    with pytest.raises(ValueError):
        WorkerPoolExecutor(model, num_workers=2, chunk_size=0)
    with pytest.raises(TypeError):
        WorkerPoolExecutor(WorkerPoolExecutor(model, num_workers=2), num_workers=2)


def test_worker_pool_proxies_capabilities(model, simulator):
    wrapped = WorkerPoolExecutor(model, num_workers=2)
    assert wrapped.supports_stitching
    assert wrapped.pool_factor == model.config.pool_factor
    assert not wrapped.arbitrary_size
    assert "workers=2" in wrapped.name
    sim_wrapped = WorkerPoolExecutor(simulator, num_workers=2)
    assert sim_wrapped.arbitrary_size
    assert not sim_wrapped.supports_stitching


# --------------------------------------------------------------------- #
# Lifecycle: close() idempotency, context-manager re-entry (PR 2 edges)
# --------------------------------------------------------------------- #
def test_worker_pool_close_is_idempotent(model):
    masks = _random_masks(4, 32)
    executor = WorkerPoolExecutor(model, num_workers=2)
    reference = executor.run_batch(masks[:, None])
    assert executor._pool is not None
    executor.close()
    assert executor._pool is None
    executor.close()  # second close is a no-op, not an error
    assert executor._pool is None
    # The pool respawns transparently on the next run, with the same results.
    np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
    executor.close()
    executor.close()


def test_pipeline_context_manager_reentry(model):
    masks = _random_masks(4, 32)
    pipeline = InferencePipeline(model, batch_size=2, num_workers=2)
    with pipeline as entered:
        assert entered is pipeline
        first = pipeline.predict(masks)
        assert pipeline.executor._pool is not None
    assert pipeline.executor._pool is None  # exit closed the pool
    with pipeline:  # re-entry after close respawns it
        second = pipeline.predict(masks)
        assert pipeline.executor._pool is not None
    assert pipeline.executor._pool is None
    np.testing.assert_array_equal(first, second)


def test_serial_pipeline_close_and_reentry_are_noops(model):
    masks = _random_masks(2, 32)
    pipeline = InferencePipeline(model, batch_size=2)
    with pipeline:
        first = pipeline.predict(masks)
    pipeline.close()
    pipeline.close()
    with pipeline:
        second = pipeline.predict(masks)
    np.testing.assert_array_equal(first, second)


# --------------------------------------------------------------------- #
# Error propagation
# --------------------------------------------------------------------- #
class _FailsInWorkers(Executor):
    """Succeeds in the creating process (the in-process probe), fails in
    worker processes — so the failure surfaces on the pool side."""

    name = "fails-in-workers"

    def __init__(self) -> None:
        self._parent_pid = os.getpid()

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        if os.getpid() != self._parent_pid:
            raise ValueError("deliberate worker failure (marker-1234)")
        return batch.copy()


class _AlwaysFails(Executor):
    name = "always-fails"

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        raise ValueError("deliberate failure (marker-5678)")


def test_worker_exception_propagates_with_remote_traceback():
    with WorkerPoolExecutor(_FailsInWorkers(), num_workers=2, retry=STRICT) as executor:
        with pytest.raises(WorkerPoolError) as excinfo:
            executor.run_batch(np.zeros((5, 1, 8, 8)))
    message = str(excinfo.value)
    assert "marker-1234" in message          # the original error
    assert "Traceback" in message            # ... with the remote traceback
    assert "run_batch" in message            # ... pointing into the executor
    # The error is structured: method, chunk bounds, attempt counts.
    assert excinfo.value.method == "run_batch"
    assert excinfo.value.failures
    for failure in excinfo.value.failures:
        assert 0 <= failure.start < failure.stop
        assert failure.attempts == 1
        assert failure.kind == "exception"


def test_probe_failure_raises_in_parent():
    # The output-spec probe runs in-process; its failure is the original
    # exception, not a wrapped worker error.
    with WorkerPoolExecutor(_AlwaysFails(), num_workers=2) as executor:
        with pytest.raises(ValueError, match="marker-5678"):
            executor.run_batch(np.zeros((4, 1, 8, 8)))


def test_pool_recovers_after_worker_failure(model):
    masks = _random_masks(4, 32)
    with WorkerPoolExecutor(model, num_workers=2) as executor:
        reference = ModelExecutor(model).run_batch(masks[:, None])
        assert np.array_equal(executor.run_batch(masks[:, None]), reference)
    with WorkerPoolExecutor(_FailsInWorkers(), num_workers=2, retry=STRICT) as failing:
        with pytest.raises(WorkerPoolError):
            failing.run_batch(np.zeros((5, 1, 8, 8)))
        # The pool survives a failed chunk and keeps serving.
        with pytest.raises(WorkerPoolError):
            failing.run_batch(np.zeros((5, 1, 8, 8)))


# --------------------------------------------------------------------- #
# Seed pins for the rewritten im2col / col2im hot path
# --------------------------------------------------------------------- #
def _seed_im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """The pre-rewrite slice-loop im2col, verbatim."""
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = (h + 2 * padding - kh) // stride + 1
    w_out = (w + 2 * padding - kw) // stride + 1
    cols = np.empty((n, c, kh, kw, h_out, w_out), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * h_out
        for j in range(kw):
            j_end = j + stride * w_out
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, h_out * w_out)


def _seed_col2im(cols, image_shape, kh, kw, stride, padding):
    """The pre-rewrite scatter-add col2im, verbatim."""
    n, c, h, w = image_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    h_out = (h + 2 * padding - kh) // stride + 1
    w_out = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, h_out, w_out)
    image = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * h_out
        for j in range(kw):
            j_end = j + stride * w_out
            image[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return image[:, :, padding:-padding, padding:-padding]
    return image


# (kh, kw, stride, padding): stride-1 zero-copy view, strided slicing, the
# non-overlapping col2im fast path (stride >= kernel) and 1x1 kernels.
_CONV_CONFIGS = [
    (3, 3, 1, 1),
    (3, 3, 1, 0),
    (4, 4, 2, 1),
    (3, 3, 3, 0),   # non-overlapping scatter fast path
    (2, 2, 2, 1),   # non-overlapping, padded
    (1, 1, 1, 0),
    (3, 2, 1, 1),   # rectangular kernel
]


@pytest.mark.parametrize("kh,kw,stride,padding", _CONV_CONFIGS)
def test_im2col_matches_seed_bit_for_bit(kh, kw, stride, padding):
    rng = np.random.default_rng(5)
    x = rng.standard_normal((2, 3, 12, 12))
    assert np.array_equal(
        F.im2col(x, kh, kw, stride, padding), _seed_im2col(x, kh, kw, stride, padding)
    )


@pytest.mark.parametrize("kh,kw,stride,padding", _CONV_CONFIGS)
def test_col2im_matches_seed_bit_for_bit(kh, kw, stride, padding):
    rng = np.random.default_rng(6)
    shape = (2, 3, 12, 12)
    cols = rng.standard_normal(_seed_im2col(np.zeros(shape), kh, kw, stride, padding).shape)
    assert np.array_equal(
        F.col2im(cols, shape, kh, kw, stride, padding),
        _seed_col2im(cols, shape, kh, kw, stride, padding),
    )


@pytest.mark.parametrize("kh,kw,stride,padding", _CONV_CONFIGS)
def test_col2im_is_adjoint_of_im2col(kh, kw, stride, padding):
    """<im2col(x), c> == <x, col2im(c)> — the autograd contract."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((1, 2, 10, 10))
    cols = rng.standard_normal(F.im2col(x, kh, kw, stride, padding).shape)
    lhs = float((F.im2col(x, kh, kw, stride, padding) * cols).sum())
    rhs = float((x * F.col2im(cols, x.shape, kh, kw, stride, padding)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-12)


@pytest.mark.parametrize("stride,padding,k", [(1, 1, 3), (2, 1, 4)])
def test_conv2d_gradients_match_seed_implementation(stride, padding, k):
    """Autograd through the rewritten conv matches the seed im2col algebra."""
    rng = np.random.default_rng(8)
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, k, k))
    b = rng.standard_normal(4)

    xt = Tensor(x.copy(), requires_grad=True)
    wt = Tensor(w.copy(), requires_grad=True)
    bt = Tensor(b.copy(), requires_grad=True)
    out = F.conv2d(xt, wt, bt, stride=stride, padding=padding)
    out.backward(np.ones(out.shape))

    # Seed forward/backward: im2col + einsum + col2im, verbatim.
    cols = _seed_im2col(x, k, k, stride, padding)
    w_mat = w.reshape(4, -1)
    seed_out = np.einsum("ok,nkl->nol", w_mat, cols) + b.reshape(1, 4, 1)
    seed_out = seed_out.reshape(out.shape)
    grad = np.ones(out.shape)
    grad_mat = grad.reshape(2, 4, -1)
    seed_grad_w = np.einsum("nol,nkl->ok", grad_mat, cols).reshape(w.shape)
    seed_grad_b = grad_mat.sum(axis=(0, 2))
    seed_grad_x = _seed_col2im(
        np.einsum("ok,nol->nkl", w_mat, grad_mat), x.shape, k, k, stride, padding
    )

    np.testing.assert_allclose(out.numpy(), seed_out, atol=1e-12)
    np.testing.assert_allclose(wt.grad, seed_grad_w, atol=1e-12)
    np.testing.assert_allclose(bt.grad, seed_grad_b, atol=1e-12)
    np.testing.assert_allclose(xt.grad, seed_grad_x, atol=1e-12)


def test_conv2d_is_partition_invariant(model):
    """Forwards are bit-identical however the batch is split — the property
    that makes worker-pool sharding exact for learned models."""
    rng = np.random.default_rng(9)
    x = rng.standard_normal((4, 3, 16, 16))
    w = rng.standard_normal((8, 3, 3, 3))
    whole = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).numpy()
    parts = np.concatenate(
        [F.conv2d(Tensor(x[i : i + 1]), Tensor(w), stride=1, padding=1).numpy() for i in range(4)]
    )
    assert np.array_equal(whole, parts)
