"""Tests for the batch-first inference pipeline (tile -> batch -> stitch).

The central invariant: routing the large-tile scheme through
:class:`repro.pipeline.InferencePipeline` is a pure refactor — its stitched
output on an oversized mask is *bit-for-bit* identical to the seed
``LargeTileSimulator.predict`` algorithm, which is replicated inline here as
the reference.  The suite also covers the executor adapters, batching plans,
run statistics, and the train/eval-state restoration satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DOINN, LargeTileSimulator
from repro.layout.tiling import TileSpec, extract_tiles, stitch_cores
from repro.litho import LithoSimulator
from repro.nn import Tensor, no_grad
from repro.pipeline import (
    InferencePipeline,
    ModelExecutor,
    PipelineResult,
    SimulatorExecutor,
    as_executor,
)


@pytest.fixture(scope="module")
def model(tiny_model_factory) -> DOINN:
    return tiny_model_factory("doinn")


@pytest.fixture(scope="module")
def simulator() -> LithoSimulator:
    return LithoSimulator(pixel_size=16.0, num_kernels=10, kernel_support=31)


def _random_mask(size: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# Seed LargeTileSimulator algorithm, replicated as the golden reference
# --------------------------------------------------------------------- #
def _seed_predict(model: DOINN, mask: np.ndarray, tile: int, od_pixels: int) -> np.ndarray:
    """The pre-refactor ``LargeTileSimulator.predict`` loop, verbatim."""
    pool = model.config.pool_factor
    model.eval()
    tiles, specs = extract_tiles(mask, tile)
    gp_outputs = []
    with no_grad():
        for start in range(0, tiles.shape[0], 8):
            batch = Tensor(tiles[start : start + 8][:, None])
            gp_outputs.append(model.global_perception(batch).numpy())
    gp_tiles = np.concatenate(gp_outputs, axis=0)
    pooled_specs = [
        TileSpec(row=s.row, col=s.col, y0=s.y0 // pool, x0=s.x0 // pool, size=tile // pool)
        for s in specs
    ]
    margin = max(1, int(np.ceil(od_pixels / (2 * pool))))
    h, w = mask.shape
    gp = stitch_cores(gp_tiles, pooled_specs, (h // pool, w // pool), margin)
    with no_grad():
        x = Tensor(mask[None, None])
        lp = model.local_perception(x) if model.local_perception is not None else None
        out = model.reconstruction(Tensor(gp[None]), lp)
    model.train()
    return out.numpy()[0, 0]


def _seed_predict_naive(model: DOINN, mask: np.ndarray) -> np.ndarray:
    model.eval()
    with no_grad():
        out = model(Tensor(mask[None, None]))
    model.train()
    return out.numpy()[0, 0]


def test_stitched_matches_seed_bit_for_bit(model):
    """Pipeline output on a 2x tile equals the seed algorithm exactly."""
    mask = _random_mask(64)
    expected = _seed_predict(model, mask, tile=32, od_pixels=8)
    pipeline = InferencePipeline(model, tile_size=32, batch_size=8, optical_diameter_pixels=8)
    assert np.array_equal(pipeline.predict(mask, stitch=True), expected)


def test_naive_matches_seed_bit_for_bit(model):
    mask = _random_mask(64)
    expected = _seed_predict_naive(model, mask)
    pipeline = InferencePipeline(model, tile_size=32, batch_size=8, optical_diameter_pixels=8)
    assert np.array_equal(pipeline.predict_naive(mask), expected)


def test_largetile_wrapper_matches_seed_bit_for_bit(model):
    """The LargeTileSimulator compatibility wrapper is unchanged vs seed."""
    mask = _random_mask(64, seed=5)
    runner = LargeTileSimulator(model, train_tile_size=32, optical_diameter_pixels=8)
    assert np.array_equal(runner.predict(mask), _seed_predict(model, mask, 32, 8))
    assert np.array_equal(runner.predict_naive(mask), _seed_predict_naive(model, mask))


# --------------------------------------------------------------------- #
# Train/eval-state restoration (satellite: no more train() clobbering)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("training", [True, False])
def test_pipeline_restores_train_eval_state(model, training):
    mask = _random_mask(64)
    model.train() if training else model.eval()
    pipeline = InferencePipeline(model, tile_size=32, batch_size=4, optical_diameter_pixels=8)
    pipeline.predict(mask, stitch=True)
    pipeline.predict_naive(mask)
    assert all(m.training is training for m in model.modules())
    model.train()


@pytest.mark.parametrize("training", [True, False])
def test_largetile_wrapper_restores_train_eval_state(model, training):
    mask = _random_mask(64)
    model.train() if training else model.eval()
    runner = LargeTileSimulator(model, train_tile_size=32, optical_diameter_pixels=8)
    runner.predict(mask)
    runner.predict_naive(mask)
    assert all(m.training is training for m in model.modules())
    model.train()


# --------------------------------------------------------------------- #
# Batching plans
# --------------------------------------------------------------------- #
def test_native_batching_matches_per_mask(model):
    rng = np.random.default_rng(2)
    masks = (rng.random((5, 1, 32, 32)) > 0.8).astype(float)
    pipeline = InferencePipeline(model, batch_size=2)
    batched = pipeline.predict(masks)
    singles = np.stack([pipeline.predict(masks[i, 0]) for i in range(5)])[:, None]
    np.testing.assert_allclose(batched, singles, atol=1e-10)


def test_stitched_batch_matches_per_mask(model):
    rng = np.random.default_rng(4)
    masks = (rng.random((3, 64, 64)) > 0.8).astype(float)
    pipeline = InferencePipeline(model, tile_size=32, batch_size=8, optical_diameter_pixels=8)
    batched = pipeline.predict(masks, stitch=True)
    singles = np.stack([pipeline.predict(m, stitch=True) for m in masks])
    np.testing.assert_allclose(batched, singles, atol=1e-10)


def test_input_layouts_round_trip(model):
    mask = _random_mask(32)
    pipeline = InferencePipeline(model)
    assert pipeline.predict(mask).shape == (32, 32)
    assert pipeline.predict(mask[None]).shape == (1, 32, 32)
    assert pipeline.predict(mask[None, None]).shape == (1, 1, 32, 32)
    with pytest.raises(ValueError):
        pipeline.predict(np.zeros((1, 2, 32, 32)))  # multi-channel
    with pytest.raises(ValueError):
        pipeline.predict(np.zeros((1, 1, 1, 32, 32)))


def test_empty_batch_returns_empty_output(model):
    pipeline = InferencePipeline(model)
    result = pipeline.run(np.zeros((0, 1, 32, 32)))
    assert result.outputs.shape == (0, 1, 32, 32)
    assert result.stats.num_masks == 0


def test_run_reports_stats(model):
    masks = np.stack([_random_mask(64, seed=s) for s in range(2)])
    pipeline = InferencePipeline(model, tile_size=32, batch_size=4, optical_diameter_pixels=8)
    result = pipeline.run(masks)
    assert isinstance(result, PipelineResult)
    assert result.outputs.shape == (2, 1, 64, 64)
    stats = result.stats
    assert stats.mode == "stitched"
    assert stats.num_masks == 2
    assert stats.num_tiles == 2 * 9  # 3x3 half-overlapping tiles per 2x mask
    # GP tiles are batched across the whole input stream (ceil(18/4) = 5
    # batches), not per mask (which would take 3 batches per mask = 6), plus
    # one reconstruction batch for the two full masks.
    assert stats.num_batches == 5 + 1
    assert stats.seconds > 0
    assert stats.masks_per_second > 0


def test_planner_auto_stitches_only_oversized(model):
    pipeline = InferencePipeline(model, tile_size=32, batch_size=4, optical_diameter_pixels=8)
    assert pipeline.run(_random_mask(32)).stats.mode == "native"
    assert pipeline.run(_random_mask(64)).stats.mode == "stitched"


def test_stitched_size_validation(model):
    pipeline = InferencePipeline(model, tile_size=32, optical_diameter_pixels=8)
    with pytest.raises(ValueError):
        pipeline.predict(_random_mask(48), stitch=True)


def test_invalid_configuration(model):
    with pytest.raises(ValueError):
        InferencePipeline(model, batch_size=0)
    with pytest.raises(ValueError):
        InferencePipeline(model, tile_size=30)  # not divisible by pool factor


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #
def test_simulator_pipeline_matches_direct_simulation(simulator):
    masks = np.stack([_random_mask(32, seed=s) for s in range(3)])
    pipeline = InferencePipeline(simulator, batch_size=2)
    resist = pipeline.predict(masks)
    expected = np.stack([simulator.resist_image(m) for m in masks])
    np.testing.assert_allclose(resist, expected, atol=1e-10)
    assert pipeline.run(masks).stats.mode == "native"  # size-agnostic engine


def test_simulator_executor_aerial_output(simulator):
    mask = _random_mask(32)
    pipeline = InferencePipeline(SimulatorExecutor(simulator, output="aerial"))
    np.testing.assert_allclose(pipeline.predict(mask), simulator.aerial(mask), atol=1e-12)
    with pytest.raises(ValueError):
        SimulatorExecutor(simulator, output="contour")


def test_as_executor_adapts_all_engine_kinds(model, simulator):
    assert isinstance(as_executor(model), ModelExecutor)
    assert isinstance(as_executor(simulator), SimulatorExecutor)
    executor = ModelExecutor(model)
    assert as_executor(executor) is executor
    with pytest.raises(TypeError):
        as_executor(object())
    with pytest.raises(TypeError):
        ModelExecutor(simulator)


def test_stitching_requires_capable_engine(simulator):
    pipeline = InferencePipeline(simulator, tile_size=32)
    with pytest.raises(ValueError):
        pipeline.predict(_random_mask(64), stitch=True)
