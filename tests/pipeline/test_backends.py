"""Backend-parametrized pipeline equivalence (PR 8 tentpole).

One suite, every lane, every execution plan.  The per-lane contracts:

* ``float64`` — the default; converting to it is a no-op numerically, so
  every plan is *bit*-identical to the unconverted compiled pipeline.
* ``float32`` — folded weights narrowed at compile time; equivalence to the
  float64 pipeline holds at the calibrated lane tolerance.  Still computed
  per sample, so it keeps partition invariance (pooled == serial, bitwise).
* ``blas`` — micro-batch GEMMs stacked into one threaded BLAS call.  The
  stacking reassociates the reduction, so this lane is tolerance-equal to
  float64 and deliberately NOT partition invariant: pooled-vs-serial pins
  are ``allclose``, never ``array_equal``.
* ``fft`` — FFT-domain large-kernel deconvolution, float64, computed per
  sample: tolerance-equal to the default lane and partition invariant.

Whatever the lane, the executor hands float64 back to the stitching layer,
so pipeline outputs are always float64.

This file intentionally never reads ``REPRO_BACKEND`` implicitly: every
pipeline pins its lane explicitly, so the suite passes unchanged under the
CI backend matrix.  Env resolution itself is tested with monkeypatch below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.litho import LithoSimulator
from repro.nn import compile_model
from repro.nn.backends import (
    BACKEND_ENV,
    BLAS_THREADS_ENV,
    available_backends,
    get_backend,
    resolve_backend,
    resolve_blas_threads,
)
from repro.pipeline import (
    InferencePipeline,
    ModelExecutor,
    ParallelConfig,
    as_executor,
)

LANES = ["float64", "float32", "blas", "fft"]

#: max |delta| vs the float64 compiled pipeline; resist outputs live in
#: [0, 1], so absolute bounds are meaningful.  float32 is calibrated from
#: the pinned reference run (measured ~3e-7 native, ~3e-7 stitched); blas
#: and fft only reassociate float64 summations (measured ~3e-15).
LANE_ATOL = {"float64": 0.0, "float32": 2.0e-5, "blas": 1.0e-12, "fft": 1.0e-12}

#: Lanes whose pooled/sharded plans are bit-identical to serial.
PARTITION_INVARIANT = {"float64", "float32", "fft"}


@pytest.fixture(scope="module")
def model(tiny_model_factory):
    return tiny_model_factory("doinn")


def _random_masks(n: int, size: int, seed: int = 17) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.8).astype(float)


def _assert_lane_close(actual, expected, lane, err_msg=""):
    if LANE_ATOL[lane] == 0.0:
        np.testing.assert_array_equal(actual, expected, err_msg=err_msg)
    else:
        np.testing.assert_allclose(
            actual, expected, rtol=0, atol=LANE_ATOL[lane], err_msg=err_msg
        )


# --------------------------------------------------------------------- #
# Registry and resolution
# --------------------------------------------------------------------- #
def test_registry_exposes_the_four_lanes():
    assert set(LANES) <= set(available_backends())
    assert get_backend("blas").stacked_gemm and not get_backend("blas").fft_deconv
    assert get_backend("fft").fft_deconv and not get_backend("fft").stacked_gemm
    assert get_backend("float32").dtype == np.dtype(np.float32)


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend().name == "float64"
    monkeypatch.setenv(BACKEND_ENV, "fft")
    assert resolve_backend().name == "fft"
    assert resolve_backend("blas").name == "blas"  # explicit beats env
    monkeypatch.setenv(BACKEND_ENV, "quantum")
    with pytest.raises(ValueError, match=BACKEND_ENV):
        resolve_backend()


def test_pipeline_resolves_backend_from_env(model, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "float32")
    pipeline = InferencePipeline(model, compile=True)
    assert pipeline.backend is not None and pipeline.backend.name == "float32"
    # Explicit argument wins over the environment.
    pinned = InferencePipeline(model, compile=True, backend="fft")
    assert pinned.backend.name == "fft"
    # Uncompiled pipelines ignore the env lane (no fused path to convert).
    assert InferencePipeline(model).backend.name == "float64"


def test_preconverted_graph_lane_wins_over_env(model, monkeypatch):
    """A graph already converted to a lane keeps it: the env var must not
    silently re-convert an engine the caller prepared deliberately."""
    graph = compile_model(model, backend="fft")
    monkeypatch.setenv(BACKEND_ENV, "float32")
    executor = ModelExecutor(graph)
    assert executor.backend.name == "fft"


# --------------------------------------------------------------------- #
# Error contracts
# --------------------------------------------------------------------- #
def test_backend_requires_compiled_path(model):
    with pytest.raises(ValueError, match="compile=True"):
        ModelExecutor(model, backend="float32")
    with pytest.raises(ValueError, match="compile=True"):
        InferencePipeline(model, backend="float32")
    # The default lane is the uncompiled path's native behaviour: allowed.
    assert ModelExecutor(model, backend="float64").backend.name == "float64"


def test_backend_rejects_simulator_engines():
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=6, kernel_support=31)
    with pytest.raises(ValueError, match="golden simulator"):
        as_executor(simulator, backend="float32")
    with pytest.raises(ValueError, match="golden simulator"):
        InferencePipeline(simulator, backend="float32")


# --------------------------------------------------------------------- #
# Native and stitched plans, zoo-wide
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("lane", LANES)
def test_backend_native_plan_matches_float64(zoo_model, lane):
    name, model = zoo_model
    masks = _random_masks(4, 32)
    reference = InferencePipeline(model, batch_size=2, compile=True, backend="float64")
    pipeline = InferencePipeline(model, batch_size=2, compile=True, backend=lane)
    assert pipeline.backend.name == lane
    out = pipeline.predict(masks)
    assert out.dtype == np.float64  # the executor boundary re-widens every lane
    _assert_lane_close(out, reference.predict(masks), lane, err_msg=f"{name}/{lane}")


@pytest.mark.parametrize("lane", LANES)
def test_backend_stitched_plan_matches_float64(model, lane):
    masks = _random_masks(2, 64, seed=5)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8, compile=True)
    reference = InferencePipeline(model, backend="float64", **kwargs)
    pipeline = InferencePipeline(model, backend=lane, **kwargs)
    assert pipeline.run(masks).stats.mode == "stitched"
    _assert_lane_close(
        pipeline.predict(masks, stitch=True),
        reference.predict(masks, stitch=True),
        lane,
        err_msg=f"stitched/{lane}",
    )


# --------------------------------------------------------------------- #
# Worker pool and sharded stitching per lane
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("lane", LANES)
def test_backend_pooled_matches_serial(model, lane):
    masks = _random_masks(6, 32, seed=13)
    serial = InferencePipeline(model, batch_size=2, compile=True, backend=lane)
    reference = serial.predict(masks)
    with InferencePipeline(
        model, batch_size=2, num_workers=2, compile=True, backend=lane
    ) as pooled:
        assert pooled.backend.name == lane
        out = pooled.predict(masks)
    if lane in PARTITION_INVARIANT:
        np.testing.assert_array_equal(out, reference, err_msg=lane)
    else:
        # blas stacks per-dispatch micro-batches: shard boundaries change the
        # GEMM shapes, so pooled results are tolerance-equal, not bitwise.
        np.testing.assert_allclose(out, reference, rtol=0, atol=1e-12, err_msg=lane)


@pytest.mark.parametrize("lane", LANES)
def test_backend_sharded_stitched_matches_serial(model, lane):
    masks = _random_masks(2, 64, seed=9)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8, compile=True)
    serial = InferencePipeline(model, backend=lane, **kwargs)
    reference = serial.predict(masks, stitch=True)
    with InferencePipeline(model, num_workers=2, backend=lane, **kwargs) as pooled:
        out = pooled.predict(masks, stitch=True)
    if lane in PARTITION_INVARIANT:
        np.testing.assert_array_equal(out, reference, err_msg=lane)
    else:
        np.testing.assert_allclose(out, reference, rtol=0, atol=1e-12, err_msg=lane)


# --------------------------------------------------------------------- #
# Incremental (patched) plan per lane
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("lane", LANES)
def test_backend_patched_plan_matches_stitched(model, lane):
    pipeline = InferencePipeline(
        model, tile_size=32, batch_size=8, optical_diameter_pixels=8,
        compile=True, backend=lane,
    )
    state = pipeline.incremental_state((64, 64))
    assert state.mode == "gp"
    mask = _random_masks(1, 64)[0]
    for step in range(3):
        patched = pipeline.predict_patched(mask, state)
        stitched = pipeline.predict(mask, stitch=True)
        if lane in PARTITION_INVARIANT:
            np.testing.assert_array_equal(patched, stitched, err_msg=f"{lane}/{step}")
        else:
            # Patching re-runs GP on the dirty subset only: smaller stacked
            # GEMMs, different rounding — tolerance-equal within the lane.
            np.testing.assert_allclose(
                patched, stitched, rtol=0, atol=1e-12, err_msg=f"{lane}/{step}"
            )
        mask = mask.copy()
        mask[2 * step, 3 * step] = 1.0 - mask[2 * step, 3 * step]
    assert state.counters.patched_calls >= 1


# --------------------------------------------------------------------- #
# BLAS thread-cap resolution
# --------------------------------------------------------------------- #
def test_resolve_blas_threads_precedence(monkeypatch):
    monkeypatch.delenv(BLAS_THREADS_ENV, raising=False)
    assert resolve_blas_threads(None, num_workers=0) == 0   # serial: hands off
    assert resolve_blas_threads(None, num_workers=4) == 1   # pooled: 1/worker
    assert resolve_blas_threads(2, num_workers=4) == 2      # explicit wins
    monkeypatch.setenv(BLAS_THREADS_ENV, "3")
    assert resolve_blas_threads(None, num_workers=4) == 3
    assert resolve_blas_threads(1, num_workers=4) == 1
    monkeypatch.setenv(BLAS_THREADS_ENV, "many")
    with pytest.raises(ValueError, match=BLAS_THREADS_ENV):
        resolve_blas_threads(None, num_workers=0)


def test_parallel_config_carries_blas_threads(monkeypatch):
    monkeypatch.delenv(BLAS_THREADS_ENV, raising=False)
    assert ParallelConfig(num_workers=2).resolved_blas_threads() == 1
    assert ParallelConfig(num_workers=0).resolved_blas_threads() == 0
    assert ParallelConfig(num_workers=2, blas_threads=2).resolved_blas_threads() == 2
    with pytest.raises(ValueError, match="blas_threads"):
        ParallelConfig(blas_threads=-1)


def test_pooled_pipeline_caps_worker_blas_threads(model, monkeypatch):
    monkeypatch.delenv(BLAS_THREADS_ENV, raising=False)
    with InferencePipeline(model, num_workers=2, compile=True, backend="blas") as pooled:
        assert pooled.executor.blas_threads == 1
        # The capped pool still computes the right answer.
        masks = _random_masks(2, 32)
        serial = InferencePipeline(model, compile=True, backend="blas")
        np.testing.assert_allclose(
            pooled.predict(masks), serial.predict(masks), rtol=0, atol=1e-12
        )
