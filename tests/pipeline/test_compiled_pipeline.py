"""Compiled-executor coverage: ``ModelExecutor(compile=True)`` end to end.

Pins the pipeline-level contracts of the fusion compiler: a compiled engine
is numerically equivalent to the unfused executor (<= 1e-12) on the native
and stitched plans, is *bit*-identical across micro-batch splits and worker
shardings (the partition-invariance that makes pooled execution exact), and
composes with every pipeline knob.  Also holds the micro-batch >= 1
regression guard for very large tile geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.litho import LithoSimulator
from repro.nn import FusedInferenceGraph, compile_model
from repro.nn.backends import resolve_backend
from repro.pipeline import (
    InferencePipeline,
    ModelExecutor,
    WorkerPoolExecutor,
    as_executor,
)

# Under the CI backend matrix (REPRO_BACKEND=float32) the compiled executors
# in this suite run the float32 lane while the unfused references stay
# float64, so fused-vs-unfused comparisons hold at the calibrated lane
# tolerance instead of 1e-12.  Within-lane bit-identity pins (partition
# invariance, pooled-vs-serial) are unaffected — every lane keeps those.
_LANE = resolve_backend()
if _LANE.dtype.itemsize == 8:
    TOL = dict(rtol=1e-12, atol=1e-12)
else:
    TOL = dict(rtol=1e-5, atol=1e-5)


@pytest.fixture(scope="module")
def model(tiny_model_factory):
    return tiny_model_factory("doinn")


def _random_masks(n: int, size: int, seed: int = 17) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# Executor-level compile flag
# --------------------------------------------------------------------- #
def test_model_executor_compile_equivalence(zoo_model):
    name, model = zoo_model
    batch = _random_masks(3, 32)[:, None]
    plain = ModelExecutor(model)
    fused = ModelExecutor(model, compile=True)
    assert not plain.compiled
    assert fused.compiled
    assert fused.name == f"{type(model).__name__}[compiled]"
    assert isinstance(fused.model, FusedInferenceGraph)
    np.testing.assert_allclose(fused.run_batch(batch), plain.run_batch(batch), **TOL)


def test_model_executor_accepts_precompiled_graph(model):
    graph = compile_model(model)
    executor = ModelExecutor(graph)
    assert executor.compiled
    assert executor.name == "DOINN[compiled]"
    assert executor.model is graph


def test_compiled_executor_is_partition_invariant(model):
    """Micro-batch splits and shard boundaries cannot change a single bit."""
    masks = _random_masks(5, 32)[:, None]
    executor = ModelExecutor(model, compile=True)
    whole = executor.run_batch(masks)
    singles = np.concatenate([executor.run_batch(masks[i : i + 1]) for i in range(5)])
    np.testing.assert_array_equal(whole, singles)


def test_compiled_executor_keeps_stitching_hooks(model):
    plain = ModelExecutor(model)
    fused = ModelExecutor(model, compile=True)
    assert fused.supports_stitching
    assert fused.pool_factor == plain.pool_factor == 8
    tiles = _random_masks(4, 32)
    np.testing.assert_allclose(fused.run_gp(tiles[:, None]), plain.run_gp(tiles[:, None]), **TOL)


def test_as_executor_compile_validation(model):
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=6, kernel_support=31)
    assert as_executor(model, compile=True).compiled
    with pytest.raises(ValueError, match="golden simulator"):
        as_executor(simulator, compile=True)
    with pytest.raises(ValueError, match="raw model engine"):
        as_executor(ModelExecutor(model), compile=True)


# --------------------------------------------------------------------- #
# Pipeline-level compile knob
# --------------------------------------------------------------------- #
def test_pipeline_compile_knob_equivalence(zoo_model):
    name, model = zoo_model
    masks = _random_masks(4, 32)
    plain = InferencePipeline(model, batch_size=2)
    fused = InferencePipeline(model, batch_size=2, compile=True)
    assert fused.compiled and not plain.compiled
    np.testing.assert_allclose(fused.predict(masks), plain.predict(masks), **TOL)


def test_compiled_stitched_plan_matches_unfused(model):
    masks = _random_masks(2, 64, seed=5)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    plain = InferencePipeline(model, **kwargs)
    fused = InferencePipeline(model, compile=True, **kwargs)
    assert fused.run(masks).stats.mode == "stitched"
    np.testing.assert_allclose(
        fused.predict(masks, stitch=True), plain.predict(masks, stitch=True), **TOL
    )


def test_compiled_pipeline_reports_compiled_engine_in_stats(model):
    pipeline = InferencePipeline(model, compile=True)
    result = pipeline.run(_random_masks(2, 32))
    assert result.stats.engine == "DOINN[compiled]"


def test_pipeline_compile_rejects_simulator_engines():
    simulator = LithoSimulator(pixel_size=16.0, num_kernels=6, kernel_support=31)
    with pytest.raises(ValueError, match="golden simulator"):
        InferencePipeline(simulator, compile=True)


# --------------------------------------------------------------------- #
# Interleaved batch sizes through one compiled engine (satellite regression)
# --------------------------------------------------------------------- #
def test_compiled_executor_alternating_batch_sizes(zoo_model):
    """One compiled engine serving interleaved batch sizes (streaming +
    shard_tiles produces ragged final shards) must match the unfused executor
    on every call — a shape-key collision in the fused chains' buffer cache
    would poison whichever geometry ran second."""
    name, model = zoo_model
    masks = _random_masks(5, 32, seed=23)[:, None]
    plain = ModelExecutor(model)
    fused = ModelExecutor(model, compile=True)
    for n in (4, 1, 3, 4, 2, 5, 1, 4):
        batch = masks[:n]
        np.testing.assert_allclose(
            fused.run_batch(batch), plain.run_batch(batch), err_msg=f"{name} N={n}", **TOL
        )


def test_compiled_pipeline_alternating_batch_sizes(model):
    masks = _random_masks(6, 32, seed=31)
    plain = InferencePipeline(model, batch_size=4)
    fused = InferencePipeline(model, batch_size=4, compile=True)
    # Ragged splits: 6 masks at bs=4 -> shards of 4 and 2; then bs=3 -> 3+3;
    # then bs=5 -> 5+1 — all through the same compiled engine.
    for bs in (4, 3, 5, 4, 1):
        np.testing.assert_allclose(
            fused.predict(masks, batch_size=bs), plain.predict(masks, batch_size=bs),
            err_msg=f"batch_size={bs}", **TOL,
        )


# --------------------------------------------------------------------- #
# Composition with the worker pool
# --------------------------------------------------------------------- #
def test_compiled_unet_composes_with_worker_pool(tiny_model_factory):
    """The new fused transposed-conv chains (UNet up path) must stay
    bit-identical under worker-pool sharding, like every other fused op."""
    unet = tiny_model_factory("unet")
    masks = _random_masks(6, 32, seed=13)
    reference = InferencePipeline(unet, batch_size=2, compile=True).predict(masks)
    with InferencePipeline(unet, batch_size=2, num_workers=2, compile=True) as parallel:
        np.testing.assert_array_equal(parallel.predict(masks), reference)


def test_compiled_composes_with_worker_pool(model):
    masks = _random_masks(6, 32)
    serial = InferencePipeline(model, batch_size=4, compile=True)
    reference = serial.predict(masks)
    with InferencePipeline(model, batch_size=4, num_workers=2, compile=True) as parallel:
        assert isinstance(parallel.executor, WorkerPoolExecutor)
        assert parallel.compiled and parallel.executor.compiled
        assert "[compiled]" in parallel.name and "workers=2" in parallel.name
        np.testing.assert_array_equal(parallel.predict(masks), reference)


def test_compiled_stitched_worker_pool_bit_identical(model):
    masks = _random_masks(2, 64, seed=9)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8, compile=True)
    serial = InferencePipeline(model, **kwargs)
    with InferencePipeline(model, num_workers=2, **kwargs) as parallel:
        np.testing.assert_array_equal(
            parallel.predict(masks, stitch=True), serial.predict(masks, stitch=True)
        )


# --------------------------------------------------------------------- #
# Micro-batch sizing regression (satellite)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("height,width", [(64, 64), (512, 512), (4096, 4096), (16384, 16384)])
def test_micro_batch_is_never_zero(model, height, width):
    """A tile whose activations exceed the whole cache budget still runs."""
    executor = ModelExecutor(model)
    micro = executor._micro_batch(height, width)
    assert micro >= 1
    if height >= 4096:
        assert micro == 1  # budget exceeded: exactly one sample at a time


def test_micro_batch_degenerate_geometry_does_not_divide_by_zero(model):
    assert ModelExecutor(model)._micro_batch(0, 0) >= 1
    assert ModelExecutor(model, compile=True)._micro_batch(0, 0) >= 1


@pytest.mark.parametrize("height,width", [(32, 32), (64, 64), (128, 128), (4096, 4096)])
def test_compiled_micro_batch_budgets_fused_working_set(model, height, width):
    """Satellite bugfix: compiled engines must budget with the fused estimate.

    The fused chains keep padded entry + output scratch buffers resident per
    sample, so sizing compiled micro-batches with the unfused activation
    estimate overfilled the cache (compiled bs>=2 ran ~1.3x slower per tile
    than bs=1).  The fused estimate halves the samples per micro-batch for
    the same geometry — and still never reaches 0.
    """
    plain = ModelExecutor(model)
    fused = ModelExecutor(model, compile=True)
    expected_plain = max(
        1,
        plain.MICRO_BATCH_BUDGET_BYTES // (plain.ACTIVATION_CHANNEL_ESTIMATE * height * width * 8),
    )
    expected_fused = max(
        1,
        fused.MICRO_BATCH_BUDGET_BYTES
        // (
            fused.FUSED_ACTIVATION_CHANNEL_ESTIMATE
            * height
            * width
            * fused.backend.dtype.itemsize
        ),
    )
    assert plain._micro_batch(height, width) == expected_plain
    assert fused._micro_batch(height, width) == expected_fused
    assert fused._micro_batch(height, width) <= plain._micro_batch(height, width)


def test_compiled_micro_batch_on_figure6_tiles(model):
    """The measured regression geometry: 64x64 tiles must micro-batch at 1
    compiled (fused working set ~2 MiB/sample) vs 2 unfused.  Pinned to the
    float64 lane explicitly — the float32 lane's working set is half the
    size, so its micro-batches are legitimately larger."""
    assert ModelExecutor(model)._micro_batch(64, 64) == 2
    assert ModelExecutor(model, compile=True, backend="float64")._micro_batch(64, 64) == 1
