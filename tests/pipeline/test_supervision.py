"""Supervised worker pool: chaos testing, retry, respawn, degradation.

Three invariants anchor this file:

* **chaos equivalence** — under every deterministic fault mode (remote
  exception, hard ``os._exit``, SIGKILL, hang-past-deadline) the supervised
  pool heals itself and the outputs stay **bit-identical** to serial
  execution, zoo-wide, on the native, stitched/sharded and incremental
  (``predict_patched``) plans;
* **graceful degradation** — a fault plan that outlasts the retry budget
  completes the run through the in-process fallback with a
  :class:`PoolDegradedWarning` (still bit-identical), or raises a structured
  :class:`WorkerPoolError` carrying every chunk's bounds, attempt counts and
  full failure history when ``degrade=False``;
* **deterministic bookkeeping** — the ``REPRO_WORKER_*`` / ``REPRO_FAULT_PLAN``
  knobs resolve with explicit-argument > environment > default precedence,
  and the robustness counters (retries, respawns, degraded runs, fault
  events) land per-run on :class:`PipelineStats` with exact values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import (
    DEGRADE_ENV,
    FAULT_PLAN_ENV,
    FaultPlan,
    InferencePipeline,
    InjectedFault,
    ModelExecutor,
    ParallelConfig,
    PoolDegradedWarning,
    RetryPolicy,
    SupervisedPool,
    WORKER_RETRIES_ENV,
    WORKER_TIMEOUT_ENV,
    WorkerPoolError,
    WorkerPoolExecutor,
    live_segment_names,
    resolve_fault_plan,
    resolve_retry_policy,
)


@pytest.fixture(scope="module")
def model(tiny_model_factory):
    return tiny_model_factory("doinn")


def _random_masks(n: int, size: int, seed: int = 17) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.8).astype(float)


# --------------------------------------------------------------------- #
# Knob resolution: RetryPolicy (explicit > env > default)
# --------------------------------------------------------------------- #
def test_retry_policy_defaults(monkeypatch):
    for var in (WORKER_TIMEOUT_ENV, WORKER_RETRIES_ENV, DEGRADE_ENV):
        monkeypatch.delenv(var, raising=False)
    policy = resolve_retry_policy()
    assert policy.timeout is None          # no deadline unless asked for
    assert policy.max_retries == 2
    assert policy.degrade is True          # a stream survives a dying worker


def test_retry_policy_env_overrides(monkeypatch):
    monkeypatch.setenv(WORKER_TIMEOUT_ENV, "7.5")
    monkeypatch.setenv(WORKER_RETRIES_ENV, "5")
    monkeypatch.setenv(DEGRADE_ENV, "off")
    policy = resolve_retry_policy()
    assert policy.timeout == 7.5
    assert policy.max_retries == 5
    assert policy.degrade is False
    # Explicit arguments beat the environment ...
    explicit = resolve_retry_policy(RetryPolicy(timeout=2.0, max_retries=1, degrade=True))
    assert (explicit.timeout, explicit.max_retries, explicit.degrade) == (2.0, 1, True)
    # ... including timeout=0, which explicitly disables the env deadline.
    assert resolve_retry_policy(RetryPolicy(timeout=0)).timeout is None
    assert ParallelConfig(retry=RetryPolicy(max_retries=0)).resolved_retry().max_retries == 0


def test_retry_policy_env_validation(monkeypatch):
    monkeypatch.setenv(WORKER_TIMEOUT_ENV, "soon")
    with pytest.raises(ValueError):
        resolve_retry_policy()
    monkeypatch.delenv(WORKER_TIMEOUT_ENV)
    monkeypatch.setenv(WORKER_RETRIES_ENV, "-2")
    with pytest.raises(ValueError):
        resolve_retry_policy()
    monkeypatch.delenv(WORKER_RETRIES_ENV)
    monkeypatch.setenv(DEGRADE_ENV, "sideways")
    with pytest.raises(ValueError):
        resolve_retry_policy()


def test_retry_policy_field_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)
    with pytest.raises(ValueError):
        SupervisedPool(0, lambda task, attempt: None)


# --------------------------------------------------------------------- #
# Knob resolution: FaultPlan syntax
# --------------------------------------------------------------------- #
def test_fault_plan_parse():
    plan = FaultPlan.parse("raise@0:1, kill@*:2x3 ; hang@4:*~2.5")
    assert len(plan.specs) == 3
    first, second, third = plan.specs
    assert (first.mode, first.call, first.chunk, first.attempts) == ("raise", 0, 1, 1)
    assert (second.mode, second.call, second.chunk, second.attempts) == ("kill", None, 2, 3)
    assert (third.mode, third.call, third.chunk, third.seconds) == ("hang", 4, None, 2.5)
    # Matching respects wildcards and the per-attempt window.
    assert plan.find(0, 1, 0) is first
    assert plan.find(0, 1, 1) is None      # raise fires on the first attempt only
    assert plan.find(9, 2, 2) is second    # x3: attempts 0..2
    assert plan.find(9, 2, 3) is None
    assert plan.events_for(9, 2, 5) == 3   # parent-side deterministic count


@pytest.mark.parametrize("text", ["boom@0:0", "raise@0", "raise@a:b", "", " , "])
def test_fault_plan_rejects_bad_syntax(text):
    with pytest.raises(ValueError):
        FaultPlan.parse(text)


def test_fault_plan_resolution(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    assert resolve_fault_plan() is None    # production default: no injection
    prebuilt = FaultPlan.parse("raise@0:0")
    assert resolve_fault_plan(prebuilt) is prebuilt
    assert resolve_fault_plan("exit@1:2").specs[0].mode == "exit"
    monkeypatch.setenv(FAULT_PLAN_ENV, "kill@0:0")
    assert resolve_fault_plan().specs[0].mode == "kill"
    monkeypatch.setenv(FAULT_PLAN_ENV, "")
    assert resolve_fault_plan() is None


def test_fault_plan_raise_mode_fires_injected_fault():
    plan = FaultPlan.parse("raise@0:0")
    with pytest.raises(InjectedFault):
        plan.inject(0, 0, 0)
    plan.inject(1, 0, 0)  # no spec scheduled: a no-op


# --------------------------------------------------------------------- #
# Chaos equivalence: every fault mode heals bit-identically
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["raise", "exit", "kill"])
def test_fault_heals_bit_identical(model, mode):
    """One chunk fails once (exception / hard exit / SIGKILL); the retry —
    on a respawned worker for the crash modes — reproduces the serial output
    bit for bit, because every chunk owns its ``[start, stop)`` slice."""
    masks = _random_masks(6, 32)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(model, num_workers=2, fault_plan=f"{mode}@0:1") as executor:
        out = executor.run_batch(masks[:, None])
        np.testing.assert_array_equal(out, reference)
        counters = executor.robustness
        assert counters.chunks_retried == 1
        assert counters.fault_events == 1
        assert counters.degraded_runs == 0
        if mode == "raise":
            assert counters.workers_respawned == 0   # the worker survived
        else:
            assert counters.workers_respawned >= 1   # the worker did not
        # The healed pool keeps serving (call 1 is not in the plan).
        np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
        assert counters.fault_events == 1


def test_hang_is_killed_at_the_deadline_and_retried(model):
    masks = _random_masks(6, 32, seed=19)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    policy = RetryPolicy(timeout=1.0, max_retries=1)
    with WorkerPoolExecutor(
        model, num_workers=2, retry=policy, fault_plan="hang@0:0~30"
    ) as executor:
        out = executor.run_batch(masks[:, None])
        np.testing.assert_array_equal(out, reference)
        assert executor.robustness.chunks_retried == 1
        assert executor.robustness.workers_respawned == 1


def test_chaos_equivalence_whole_zoo(zoo_model, monkeypatch):
    """``REPRO_FAULT_PLAN`` chaos on every registry model: chunk 0 of every
    dispatch fails once, outputs stay bit-identical to serial — stitched +
    intra-mask sharded when the model supports it, native otherwise."""
    name, model = zoo_model
    monkeypatch.setenv(FAULT_PLAN_ENV, "raise@*:0")
    executor = ModelExecutor(model)
    if executor.supports_stitching:
        masks = _random_masks(2, 64, seed=51)
        kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
        reference = InferencePipeline(model, **kwargs).run(masks, stitch=True)
        with InferencePipeline(model, num_workers=2, **kwargs) as pooled:
            result = pooled.run(masks, stitch=True)
            assert result.stats.sharded_tiles
            np.testing.assert_array_equal(result.outputs, reference.outputs)
            assert result.stats.chunks_retried >= 1
            assert result.stats.fault_events >= 1
    else:
        masks = _random_masks(4, 32, seed=53)
        reference = InferencePipeline(model, batch_size=2).predict(masks)
        with InferencePipeline(model, batch_size=2, num_workers=2) as pooled:
            np.testing.assert_array_equal(pooled.predict(masks), reference)
            assert pooled.executor.robustness.chunks_retried >= 1


def test_chaos_predict_patched_matches_serial(model, monkeypatch):
    """Hard worker crashes under the incremental patched plan still match the
    serial prediction exactly — patched windows are just chunks with slices."""
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    serial = InferencePipeline(model, **kwargs)
    monkeypatch.setenv(FAULT_PLAN_ENV, "exit@*:0")
    with InferencePipeline(model, num_workers=2, **kwargs) as pooled:
        state = pooled.incremental_state((64, 64))
        assert state.mode == "gp"
        mask = _random_masks(1, 64, seed=55)[0]
        # First call: full refresh — the whole GP tile stream goes through
        # the pool, and the fault plan kills a worker per dispatch.
        out = pooled.predict_patched(mask, state)
        assert np.array_equal(out, serial.predict(mask, stitch=True))
        assert pooled.executor.robustness.workers_respawned >= 1
        mask = mask.copy()
        mask[8, 8] = 1.0 - mask[8, 8]
        out = pooled.predict_patched(mask, state)
        assert np.array_equal(out, serial.predict(mask, stitch=True))
    assert live_segment_names() == ()


def test_unsupervised_baseline_stays_bit_identical(model):
    """``supervised=False`` keeps the pre-supervision blind ``pool.map``
    dispatch alive (the bench baseline): same outputs, no monitoring."""
    masks = _random_masks(6, 32, seed=57)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(model, num_workers=2, supervised=False) as executor:
        assert not isinstance(executor._pool, SupervisedPool)  # lazily None, then mp.Pool
        np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
        assert not isinstance(executor._pool, SupervisedPool)


# --------------------------------------------------------------------- #
# Graceful degradation and structured failure
# --------------------------------------------------------------------- #
def test_exhausted_retries_degrade_with_warning(model):
    """A fault that outlasts every retry completes through the in-process
    fallback: correct (bit-identical) result, one PoolDegradedWarning."""
    masks = _random_masks(6, 32, seed=59)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(
        model, num_workers=2, retry=RetryPolicy(max_retries=1, degrade=True),
        fault_plan="raise@0:0x9",
    ) as executor:
        with pytest.warns(PoolDegradedWarning) as record:
            out = executor.run_batch(masks[:, None])
        np.testing.assert_array_equal(out, reference)
        warning = record[0].message
        assert warning.method == "run_batch"
        assert len(warning.chunks) == 1 == len(warning.failures)
        start, stop = warning.chunks[0]
        assert 0 <= start < stop
        failure = warning.failures[0]
        assert failure.attempts == 2                      # 1 try + 1 retry
        assert [kind for kind, _ in failure.history] == ["exception", "exception"]
        counters = executor.robustness
        assert counters.degraded_runs == 1
        assert counters.chunks_retried == 1
        assert counters.fault_events == 2
        # The degraded pool is still healthy for the next (clean) call.
        np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
        assert counters.degraded_runs == 1


def test_exhausted_retries_raise_structured_error_when_degrade_off(model):
    masks = _random_masks(5, 32, seed=61)
    with WorkerPoolExecutor(
        model, num_workers=2, retry=RetryPolicy(max_retries=1, degrade=False),
        fault_plan="raise@0:0x9;raise@0:1x9",
    ) as executor:
        with pytest.raises(WorkerPoolError) as excinfo:
            executor.run_batch(masks[:, None])
    error = excinfo.value
    assert error.method == "run_batch"
    assert len(error.failures) == 2                       # ALL chunks reported
    bounds = sorted((f.start, f.stop) for f in error.failures)
    assert bounds == [(1, 3), (3, 5)]                     # probe leads 1 item
    for failure in error.failures:
        assert failure.attempts == 2
        assert failure.kind == "exception"
        assert len(failure.history) == 2                  # every attempt kept
    message = str(error)
    assert "2 worker chunk(s)" in message
    assert message.count("injected fault") >= 4           # all remote tracebacks


def test_irrecoverable_pool_degrades_and_rebuilds(model):
    """Killing every attempt exhausts the respawn budget: the run completes
    in-process (warned), the broken pool is torn down, and the next call
    rebuilds a fresh one that serves normally."""
    masks = _random_masks(6, 32, seed=63)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(model, num_workers=2, fault_plan="kill@0:*x99") as executor:
        with pytest.warns(PoolDegradedWarning):
            out = executor.run_batch(masks[:, None])
        np.testing.assert_array_equal(out, reference)
        assert executor._pool is None                     # broken pool torn down
        counters = executor.robustness
        assert counters.degraded_runs == 1
        assert counters.workers_respawned >= 1
        # Call 1 is not in the plan: a fresh pool serves it cleanly.
        np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
        assert executor._pool is not None
        assert counters.degraded_runs == 1
    assert live_segment_names() == ()


# --------------------------------------------------------------------- #
# Per-run counters on PipelineStats
# --------------------------------------------------------------------- #
def test_pipeline_stats_report_per_run_deltas(model):
    masks = _random_masks(6, 32, seed=65)
    reference = InferencePipeline(model, batch_size=6).predict(masks)
    executor = WorkerPoolExecutor(model, num_workers=2, fault_plan="raise@0:0")
    with InferencePipeline(executor, batch_size=6) as pooled:
        first = pooled.run(masks)
        np.testing.assert_array_equal(first.outputs[:, 0], reference)
        assert first.stats.chunks_retried == 1
        assert first.stats.fault_events == 1
        assert first.stats.workers_respawned == 0
        assert first.stats.degraded_runs == 0
        # Counters are per run, not cumulative: a clean second run reads 0.
        second = pooled.run(masks)
        np.testing.assert_array_equal(second.outputs, first.outputs)
        assert second.stats.chunks_retried == 0
        assert second.stats.fault_events == 0
    # The executor keeps the cumulative ledger.
    assert executor.robustness.chunks_retried == 1


def test_serial_pipeline_stats_counters_stay_zero(model):
    stats = InferencePipeline(model, batch_size=4).run(_random_masks(4, 32)).stats
    assert stats.chunks_retried == 0
    assert stats.workers_respawned == 0
    assert stats.degraded_runs == 0
    assert stats.fault_events == 0
