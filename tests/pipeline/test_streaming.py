"""Streaming worker-pool coverage: persistent shm ring + intra-mask sharding.

Three invariants anchor this file:

* the streaming ring is a pure transport change — outputs across >= 3
  consecutive pipeline calls are **bit-identical** to the per-call shm path
  and to serial execution, while the mapped segments are created once and
  reused (generation-tagged regrowth only when the geometry outgrows a slot);
* segment lifetime is fully owned — ``close()`` is idempotent and releases
  everything, a forced :class:`WorkerPoolError` leaves nothing stale, and a
  process that exits without closing is cleaned by the registry's atexit
  hook, so ``/dev/shm`` never accumulates ``repro`` segments;
* the stitched plan's intra-mask tile sharding is **bit-identical** to
  single-worker stitching, for every registry model the pipeline serves.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.pipeline import (
    STREAMING_ENV,
    InferencePipeline,
    ModelExecutor,
    ParallelConfig,
    RetryPolicy,
    SegmentRing,
    WorkerPoolError,
    WorkerPoolExecutor,
    live_segment_names,
    resolve_streaming,
)
from repro.pipeline.executors import Executor
from repro.pipeline.streaming import SEGMENT_PREFIX

#: Pre-supervision failure semantics: no retries, no degradation — a worker
#: failure surfaces immediately as WorkerPoolError (graceful degradation has
#: its own coverage in tests/pipeline/test_supervision.py).
STRICT = RetryPolicy(max_retries=0, degrade=False)


@pytest.fixture(scope="module")
def model(tiny_model_factory):
    return tiny_model_factory("doinn")


def _random_masks(n: int, size: int, seed: int = 13) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) > 0.8).astype(float)


def _repro_shm_files() -> list[str]:
    """``repro`` segments currently visible in /dev/shm (Linux only)."""
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return []


# --------------------------------------------------------------------- #
# Knob resolution
# --------------------------------------------------------------------- #
def test_streaming_resolution(monkeypatch):
    monkeypatch.delenv(STREAMING_ENV, raising=False)
    assert resolve_streaming() is True                  # default: on
    assert resolve_streaming(False) is False            # explicit argument wins
    monkeypatch.setenv(STREAMING_ENV, "0")
    assert resolve_streaming() is False
    assert resolve_streaming(True) is True
    monkeypatch.setenv(STREAMING_ENV, "on")
    assert resolve_streaming() is True
    assert ParallelConfig(streaming=False).resolved_streaming() is False
    monkeypatch.setenv(STREAMING_ENV, "sideways")
    with pytest.raises(ValueError):
        resolve_streaming()


def test_env_override_controls_transport(model, monkeypatch):
    monkeypatch.setenv(STREAMING_ENV, "0")
    assert not WorkerPoolExecutor(model, num_workers=2).streaming
    monkeypatch.setenv(STREAMING_ENV, "1")
    assert WorkerPoolExecutor(model, num_workers=2).streaming
    pipeline = InferencePipeline(model, num_workers=2, streaming=False)
    assert not pipeline.streaming  # explicit argument beats the env var
    pipeline.close()


# --------------------------------------------------------------------- #
# Ring reuse across consecutive calls
# --------------------------------------------------------------------- #
def test_ring_reuses_segments_across_calls(model):
    masks = _random_masks(6, 32)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(model, num_workers=2) as executor:
        assert executor.streaming
        outputs = [executor.run_batch(masks[:, None]) for _ in range(3)]
        for out in outputs:
            np.testing.assert_array_equal(out, reference)
        ring = executor._ring
        assert ring is not None and ring.regrow_count == 0
        names = {slot.shm.name for slot in ring.slots().values()}
        assert names and all(name.startswith(SEGMENT_PREFIX) for name in names)
        executor.run_batch(masks[:, None])
        assert {slot.shm.name for slot in ring.slots().values()} == names  # no churn
    assert live_segment_names() == ()  # close() released every slot


def test_streaming_pipeline_bit_identical_across_calls(model):
    """>= 3 consecutive pipeline calls: ring == per-call == serial, bit for bit."""
    masks = _random_masks(6, 32, seed=23)
    serial = InferencePipeline(model, batch_size=4, num_workers=0)
    reference = serial.predict(masks)
    with InferencePipeline(model, batch_size=4, num_workers=2) as ring_pipe, \
         InferencePipeline(model, batch_size=4, num_workers=2, streaming=False) as per_call:
        assert ring_pipe.streaming and not per_call.streaming
        for _ in range(3):
            np.testing.assert_array_equal(ring_pipe.predict(masks), reference)
            np.testing.assert_array_equal(per_call.predict(masks), reference)


def test_per_call_mode_leaves_no_live_segments(model):
    masks = _random_masks(4, 32)
    with WorkerPoolExecutor(model, num_workers=2, streaming=False) as executor:
        executor.run_batch(masks[:, None])
        assert live_segment_names() == ()  # released inside the call already


# --------------------------------------------------------------------- #
# Geometry-change regrowth
# --------------------------------------------------------------------- #
def test_ring_regrows_on_geometry_change(model):
    small = _random_masks(4, 32, seed=3)
    big = _random_masks(4, 64, seed=4)
    ref_small = ModelExecutor(model).run_batch(small[:, None])
    ref_big = ModelExecutor(model).run_batch(big[:, None])
    with WorkerPoolExecutor(model, num_workers=2) as executor:
        np.testing.assert_array_equal(executor.run_batch(small[:, None]), ref_small)
        generations = {r: s.generation for r, s in executor._ring.slots().items()}
        assert set(generations.values()) == {0}
        # Larger geometry: every slot regrows once (new segment, generation+1).
        np.testing.assert_array_equal(executor.run_batch(big[:, None]), ref_big)
        regrown = executor._ring.slots()
        assert executor._ring.regrow_count == len(regrown) > 0
        assert all(slot.generation == 1 for slot in regrown.values())
        # Back to the small geometry: capacity suffices, no further regrow.
        np.testing.assert_array_equal(executor.run_batch(small[:, None]), ref_small)
        assert executor._ring.regrow_count == len(regrown)
        assert {r: s.generation for r, s in executor._ring.slots().items()} == {
            role: 1 for role in regrown
        }


def test_slot_capacity_never_shrinks():
    ring = SegmentRing()
    try:
        slot = ring.acquire("in0", 1 << 16)
        assert slot.capacity >= 1 << 16
        assert ring.acquire("in0", 1 << 12) is slot  # smaller request reuses
        grown = ring.acquire("in0", 1 << 20)
        assert grown.generation == slot.generation + 1
        assert grown.capacity >= 1 << 20
        assert ring.regrow_count == 1
    finally:
        ring.close()
    assert live_segment_names() == ()


# --------------------------------------------------------------------- #
# Lifecycle: close() idempotency, reuse after close, atexit teardown
# --------------------------------------------------------------------- #
def test_ring_close_is_idempotent_and_respawns(model):
    masks = _random_masks(4, 32)
    executor = WorkerPoolExecutor(model, num_workers=2)
    reference = executor.run_batch(masks[:, None])
    assert executor._ring is not None and len(executor._ring) > 0
    executor.close()
    assert executor._ring is None
    assert live_segment_names() == ()
    executor.close()  # second close is a no-op, not an error
    # Ring and pool respawn transparently on the next run, same results.
    np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)
    assert executor._ring is not None
    executor.close()
    assert live_segment_names() == ()


def test_segment_ring_close_itself_idempotent():
    ring = SegmentRing()
    ring.acquire("out", 4096)
    ring.close()
    ring.close()
    assert len(ring) == 0
    assert live_segment_names() == ()


def test_atexit_releases_unclosed_ring_segments(tmp_path):
    """A process that exits without close() strands nothing in /dev/shm."""
    src = Path(__file__).resolve().parents[2] / "src"
    script = textwrap.dedent(
        """
        import numpy as np
        from repro.core import create_model
        from repro.pipeline import WorkerPoolExecutor, live_segment_names
        model = create_model("doinn", image_size=32, gp_channels=4, lp_base_channels=2)
        executor = WorkerPoolExecutor(model, num_workers=2)
        executor.run_batch(np.zeros((4, 1, 32, 32)))
        assert executor.streaming and live_segment_names()
        print("LIVE:" + ",".join(live_segment_names()))
        # exit WITHOUT close(): the registry's atexit hook must unlink.
        """
    )
    env = dict(os.environ, PYTHONPATH=f"{src}{os.pathsep}" + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    line = next(l for l in proc.stdout.splitlines() if l.startswith("LIVE:"))
    leaked = [name for name in line[len("LIVE:"):].split(",") if name]
    assert leaked  # the child really had live segments before exiting
    present = _repro_shm_files()
    assert not any(name in present for name in leaked)


def test_atexit_with_unjoined_pools_exits_quietly():
    """Interpreter shutdown with live pools (supervised and blind) must not
    traceback: teardown is step-by-step guarded because worker handles may
    already be reaped when ``__del__``/atexit run."""
    src = Path(__file__).resolve().parents[2] / "src"
    script = textwrap.dedent(
        """
        import numpy as np
        from repro.core import create_model
        from repro.pipeline import WorkerPoolExecutor
        model = create_model("doinn", image_size=32, gp_channels=4, lp_base_channels=2)
        supervised = WorkerPoolExecutor(model, num_workers=2)
        supervised.run_batch(np.zeros((4, 1, 32, 32)))
        blind = WorkerPoolExecutor(model, num_workers=2, supervised=False)
        blind.run_batch(np.zeros((4, 1, 32, 32)))
        print("RAN")
        # exit WITHOUT close(): __del__ + atexit must tear down quietly.
        """
    )
    env = dict(os.environ, PYTHONPATH=f"{src}{os.pathsep}" + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    assert "RAN" in proc.stdout
    assert "Traceback" not in proc.stderr, proc.stderr


# --------------------------------------------------------------------- #
# No stale segments after worker failures (the PR 2 leak)
# --------------------------------------------------------------------- #
class _FailsInWorkers(Executor):
    """Succeeds in the creating process (the in-process probe), fails in
    worker processes — so the failure surfaces on the pool side, after the
    shared segments were created."""

    name = "fails-in-workers"

    def __init__(self) -> None:
        self._parent_pid = os.getpid()

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        if os.getpid() != self._parent_pid:
            raise ValueError("deliberate worker failure (marker-4242)")
        return batch.copy()


@pytest.mark.parametrize("streaming", [True, False])
def test_no_stale_segments_after_worker_error(streaming):
    before = _repro_shm_files()
    with WorkerPoolExecutor(
        _FailsInWorkers(), num_workers=2, streaming=streaming, retry=STRICT
    ) as executor:
        with pytest.raises(WorkerPoolError, match="marker-4242"):
            executor.run_batch(np.zeros((5, 1, 8, 8)))
        if not streaming:
            # Per-call transport: the try/finally released everything while
            # the error was still propagating.
            assert live_segment_names() == ()
    # Either way, close() leaves the registry and /dev/shm clean.
    assert live_segment_names() == ()
    assert _repro_shm_files() == before


@pytest.mark.parametrize("streaming", [True, False])
def test_sigkilled_worker_mid_batch_leaves_shm_clean(model, streaming):
    """A worker SIGKILLed mid-batch (deterministic ``kill@0:0`` plan): the
    supervised pool respawns it, the retried chunk reproduces the serial
    output bit for bit, and ``close()`` leaves /dev/shm free of ``repro``
    segments on both the ring and the per-call transport."""
    before = _repro_shm_files()
    masks = _random_masks(6, 32, seed=47)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(
        model, num_workers=2, streaming=streaming, fault_plan="kill@0:0"
    ) as executor:
        out = executor.run_batch(masks[:, None])
        np.testing.assert_array_equal(out, reference)
        assert executor.robustness.workers_respawned >= 1
        assert executor.robustness.chunks_retried >= 1
    assert live_segment_names() == ()
    assert _repro_shm_files() == before


@pytest.mark.parametrize("streaming", [True, False])
def test_atexit_cleans_shm_after_sigkilled_worker(streaming):
    """Exit without close() *after* a worker was SIGKILLed mid-batch: the
    registry's atexit hook still unlinks everything — a killed worker cannot
    strand its mapped segments (workers never own them)."""
    src = Path(__file__).resolve().parents[2] / "src"
    script = textwrap.dedent(
        f"""
        import numpy as np
        from repro.core import create_model
        from repro.pipeline import WorkerPoolExecutor, live_segment_names
        model = create_model("doinn", image_size=32, gp_channels=4, lp_base_channels=2)
        executor = WorkerPoolExecutor(
            model, num_workers=2, streaming={streaming}, fault_plan="kill@0:0"
        )
        executor.run_batch(np.zeros((6, 1, 32, 32)))
        assert executor.robustness.workers_respawned >= 1
        print("LIVE:" + ",".join(live_segment_names()))
        # exit WITHOUT close(): the registry's atexit hook must unlink.
        """
    )
    env = dict(os.environ, PYTHONPATH=f"{src}{os.pathsep}" + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    line = next(l for l in proc.stdout.splitlines() if l.startswith("LIVE:"))
    leaked = [name for name in line[len("LIVE:"):].split(",") if name]
    if streaming:
        assert leaked  # the ring really was live when the child exited
    else:
        assert not leaked  # per-call transport released inside the call
    present = _repro_shm_files()
    assert not any(name in present for name in leaked)


def test_streaming_pool_recovers_after_worker_failure(model):
    masks = _random_masks(4, 32)
    reference = ModelExecutor(model).run_batch(masks[:, None])
    with WorkerPoolExecutor(_FailsInWorkers(), num_workers=2, retry=STRICT) as failing:
        with pytest.raises(WorkerPoolError):
            failing.run_batch(np.zeros((5, 1, 8, 8)))
        # The ring survives a failed batch and keeps serving the next one.
        with pytest.raises(WorkerPoolError):
            failing.run_batch(np.zeros((5, 1, 8, 8)))
    with WorkerPoolExecutor(model, num_workers=2) as executor:
        np.testing.assert_array_equal(executor.run_batch(masks[:, None]), reference)


# --------------------------------------------------------------------- #
# Intra-mask tile sharding (stitched plan)
# --------------------------------------------------------------------- #
def test_intra_mask_sharding_single_large_mask_bit_identical(model):
    """The tiles of ONE large mask shard across the pool, bit-identically."""
    mask = _random_masks(1, 64, seed=31)[0]
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    serial = InferencePipeline(model, **kwargs)
    reference = serial.run(mask[None, None], stitch=True)
    assert not reference.stats.sharded_tiles
    with InferencePipeline(model, num_workers=2, **kwargs) as sharded:
        result = sharded.run(mask[None, None], stitch=True)
        assert result.stats.sharded_tiles
        assert result.stats.num_tiles == reference.stats.num_tiles
        # The GP stream went to the pool in workers x batch_size
        # super-batches (plus the reconstruction batch) — fewer pool calls
        # than one per batch_size chunk.
        assert result.stats.num_batches < reference.stats.num_batches
        np.testing.assert_array_equal(result.outputs, reference.outputs)


def test_shard_tiles_opt_out_matches_chunked_plan(model):
    masks = _random_masks(2, 64, seed=33)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    reference = InferencePipeline(model, **kwargs).predict(masks, stitch=True)
    with InferencePipeline(model, num_workers=2, shard_tiles=False, **kwargs) as chunked:
        result = chunked.run(masks, stitch=True)
        assert not result.stats.sharded_tiles
        np.testing.assert_array_equal(result.outputs[:, 0], reference)
    # Serial pipelines never shard, even with the knob forced on.
    forced = InferencePipeline(model, shard_tiles=True, **kwargs)
    assert not forced.run(masks, stitch=True).stats.sharded_tiles


def test_gp_features_shard_across_pool(model):
    mask = _random_masks(1, 64, seed=35)[0]
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
    reference = InferencePipeline(model, **kwargs).gp_features(mask)
    with InferencePipeline(model, num_workers=2, **kwargs) as sharded:
        np.testing.assert_array_equal(sharded.gp_features(mask), reference)


def test_run_gp_micro_batches_are_partition_invariant(model):
    """run_gp now micro-batches internally — bit-identical at any split."""
    tiles = _random_masks(7, 32, seed=37)[:, None]
    executor = ModelExecutor(model)
    whole = executor.run_gp(tiles)
    singles = np.concatenate([executor.run_gp(tiles[i : i + 1]) for i in range(7)])
    np.testing.assert_array_equal(whole, singles)


def test_streaming_and_sharding_equivalence_whole_zoo(zoo_model):
    """Every registry model: pooled streaming == serial, on the stitched plan
    when the model supports it and the native plan otherwise."""
    name, model = zoo_model
    executor = ModelExecutor(model)
    if executor.supports_stitching:
        masks = _random_masks(2, 64, seed=41)
        kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8)
        serial = InferencePipeline(model, **kwargs)
        reference = serial.predict(masks, stitch=True)
        with InferencePipeline(model, num_workers=2, **kwargs) as pooled:
            np.testing.assert_array_equal(pooled.predict(masks, stitch=True), reference)
    else:
        masks = _random_masks(4, 32, seed=43)
        reference = InferencePipeline(model, batch_size=2).predict(masks)
        with InferencePipeline(model, batch_size=2, num_workers=2) as pooled:
            np.testing.assert_array_equal(pooled.predict(masks), reference)


def test_sharding_composes_with_compiled_engines(model):
    masks = _random_masks(2, 64, seed=45)
    kwargs = dict(tile_size=32, batch_size=4, optical_diameter_pixels=8, compile=True)
    reference = InferencePipeline(model, **kwargs).predict(masks, stitch=True)
    with InferencePipeline(model, num_workers=2, **kwargs) as pooled:
        assert pooled.compiled
        np.testing.assert_array_equal(pooled.predict(masks, stitch=True), reference)
