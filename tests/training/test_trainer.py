"""Tests for the training configuration and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DOINN, DOINNConfig
from repro.data import MaskResistDataset
from repro.training import Trainer, TrainingConfig, TrainingHistory


def toy_dataset(n=8, size=32):
    """A learnable toy problem: the resist is a blurred, thresholded mask."""
    rng = np.random.default_rng(5)
    masks = np.zeros((n, size, size))
    resists = np.zeros_like(masks)
    for i in range(n):
        r, c = rng.integers(4, size - 12, size=2)
        masks[i, r : r + 8, c : c + 8] = 1.0
        resists[i, r + 1 : r + 7, c + 1 : c + 7] = 1.0
    return MaskResistDataset(masks, resists, name="toy", pixel_size=16.0)


def tiny_model():
    return DOINN(DOINNConfig(gp_channels=4, lp_base_channels=2, modes=2))


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #
def test_paper_config_matches_table8():
    config = TrainingConfig.paper()
    rows = dict(config.as_rows())
    assert rows["Max Epoch"] == 10
    assert rows["Initial Learning Rate"] == 0.002
    assert rows["Learning Rate Decay Factor"] == 0.5
    assert rows["Batch Size"] == 16
    assert rows["Optimizer"] == "Adam"
    assert rows["Weight Decay"] == 1e-4
    assert rows["Loss"] == "MSE"


def test_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(max_epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(loss="hinge")


def test_fast_config_is_smaller_than_paper():
    fast = TrainingConfig.fast()
    assert fast.max_epochs < TrainingConfig.paper().max_epochs


# --------------------------------------------------------------------- #
# Trainer
# --------------------------------------------------------------------- #
def test_training_reduces_loss():
    data = toy_dataset()
    trainer = Trainer(tiny_model(), TrainingConfig.fast(max_epochs=4, batch_size=4))
    history = trainer.fit(data)
    assert history.epochs == 4
    assert history.improved()
    assert history.final_loss < history.epoch_losses[0]
    assert history.wall_time > 0


def test_learning_rate_decays_during_training():
    data = toy_dataset(n=4)
    trainer = Trainer(tiny_model(), TrainingConfig.fast(max_epochs=5, batch_size=4))
    history = trainer.fit(data)
    assert history.learning_rates[-1] < history.learning_rates[0]


def test_validation_miou_recorded():
    data = toy_dataset()
    trainer = Trainer(tiny_model(), TrainingConfig.fast(max_epochs=2, batch_size=4))
    history = trainer.fit(data, validation_data=data)
    assert len(history.validation_miou) == 2
    assert all(0.0 <= v <= 1.0 for v in history.validation_miou)


def test_train_step_returns_finite_loss():
    data = toy_dataset(n=4)
    trainer = Trainer(tiny_model(), TrainingConfig.fast(max_epochs=1, batch_size=2))
    loss = trainer.train_step(data.masks[:2], data.resists[:2])
    assert np.isfinite(loss)


@pytest.mark.parametrize("loss_name", ["mse", "bce", "dice"])
def test_all_losses_trainable(loss_name):
    data = toy_dataset(n=4)
    config = TrainingConfig(max_epochs=1, batch_size=2, learning_rate=0.002, loss=loss_name)
    trainer = Trainer(tiny_model(), config)
    history = trainer.fit(data)
    assert np.isfinite(history.final_loss)


def test_history_helpers():
    history = TrainingHistory(epoch_losses=[1.0, 0.5])
    assert history.improved()
    assert history.final_loss == 0.5
    empty = TrainingHistory()
    assert not empty.improved()
    assert np.isnan(empty.final_loss)
