"""Quickstart: train a small DOINN lithography simulator end to end.

This script exercises the whole public API on a laptop-scale configuration:

1. generate synthetic via-layer layouts (ISPD-2019-style design rules),
2. label them with the golden Hopkins/SOCS simulator,
3. train a scaled-down DOINN with the paper's Table 8 recipe,
4. evaluate mPA / mIOU on held-out tiles and visualize one prediction.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DOINN, DOINNConfig
from repro.data import BenchmarkConfig, build_benchmark
from repro.evaluation import evaluate_model
from repro.litho import LithoSimulator
from repro.pipeline import ExecutionConfig, InferencePipeline
from repro.training import Trainer, TrainingConfig
from repro.utils import seed_everything, to_ascii


def main() -> None:
    seed_everything(0)

    # 1-2. Synthetic benchmark: 1 um^2 via tiles at 16 nm/pixel, labelled by the
    #      golden simulator (threshold resist, 193i annular illumination).
    print("Building the synthetic ISPD-2019-style dataset ...")
    simulator = LithoSimulator(pixel_size=16.0)
    config = BenchmarkConfig(
        benchmark="ispd2019", num_train=32, num_test=8,
        image_size=64, pixel_size=16.0, density_scale=1.5,
    )
    data = build_benchmark(config, simulator)
    print(f"  {len(data.train)} training tiles, {len(data.test)} test tiles, "
          f"{data.train.tile_area_um2:.2f} um^2 each")

    # 3. Train a scaled DOINN with the paper's recipe (shortened for CPU).
    model = DOINN(DOINNConfig.scaled(config.image_size))
    print(f"DOINN parameters: {model.num_parameters():,}")
    trainer = Trainer(model, TrainingConfig.fast(max_epochs=6, batch_size=4))
    history = trainer.fit(data.train)
    print("Per-epoch training loss:", [round(loss, 4) for loss in history.epoch_losses])

    # 4. Evaluate and visualize through the batch-first inference pipeline
    #    (the execution path production serving uses).
    pipeline = InferencePipeline(model, config=ExecutionConfig(batch_size=8))
    score = evaluate_model(pipeline, data.test)
    mpa, miou = score.as_row()
    print(f"Held-out accuracy: mPA = {mpa:.2f}%  mIOU = {miou:.2f}%")

    mask = data.test.masks[0]
    prediction = pipeline.predict(mask[None])[0, 0]
    golden = data.test.resists[0, 0]
    print("\nMask (OPC'ed, with SRAFs):")
    print(to_ascii(mask[0], width=48))
    print("\nGolden resist contour:")
    print(to_ascii(golden, width=48))
    print("\nDOINN prediction (thresholded):")
    print(to_ascii((prediction >= 0.5).astype(float), width=48))


if __name__ == "__main__":
    main()
