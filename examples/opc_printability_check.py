"""Use a learned lithography simulator as a fast printability checker inside OPC.

This is the motivating use case of the paper's Figure 8: during mask
optimization the simulator is called at every iteration, so a fast learned
model (DOINN) can replace the golden engine for intermediate checks.  The
script runs the edge-based OPC engine on a metal tile, then compares the
printability trajectory (mIOU of the printed contour against the design
target) reported by the golden simulator and by DOINN.

Run with:  python examples/opc_printability_check.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DOINN, DOINNConfig
from repro.data import BenchmarkConfig, build_benchmark
from repro.layout import ICCAD2013_RULES, generate_metal_layout
from repro.litho import LithoSimulator
from repro.metrics import mean_iou
from repro.opc import OPCConfig, OPCEngine
from repro.training import Trainer, TrainingConfig
from repro.utils import format_table, seed_everything


def main() -> None:
    seed_everything(2)
    simulator = LithoSimulator(pixel_size=16.0)

    print("Training DOINN on ICCAD-2013-style metal tiles ...")
    config = BenchmarkConfig(
        benchmark="iccad2013", num_train=32, num_test=4,
        image_size=64, pixel_size=16.0, density_scale=1.2,
    )
    data = build_benchmark(config, simulator)
    model = DOINN(DOINNConfig.scaled(config.image_size))
    Trainer(model, TrainingConfig.fast(max_epochs=6, batch_size=4)).fit(data.train)

    print("Running edge-based OPC on a fresh metal tile ...")
    layout = generate_metal_layout(
        ICCAD2013_RULES, np.random.default_rng(5), tile_size=config.image_size * 16.0,
        density_scale=1.2,
    )
    opc = OPCEngine(simulator, OPCConfig(iterations=12, record_history=True))
    result = opc.correct(layout)

    rows = []
    for iteration, mask in enumerate(result.mask_history[:12], start=1):
        golden = simulator.resist_image(mask)
        predicted = model.predict(mask[None, None])[0, 0]
        rows.append(
            [
                iteration,
                f"{mean_iou(golden, result.target):.3f}",
                f"{mean_iou((predicted >= 0.5).astype(float), result.target):.3f}",
                f"{mean_iou(predicted, golden):.3f}",
            ]
        )
    print(
        format_table(
            ["OPC iter", "golden vs target", "DOINN vs target", "DOINN vs golden"],
            rows,
            title="Printability during OPC: golden simulator vs DOINN fast check",
        )
    )
    print(f"\nFinal mean |EPE| reported by the OPC engine: {result.converged_epe_nm:.1f} nm")


if __name__ == "__main__":
    main()
