"""Compare DOINN against the UNet and DAMO-DLS baselines on one benchmark.

A miniature version of the paper's Table 2 / Figure 6: all three models are
trained with the same recipe on the same synthetic via-layer dataset, then
compared on accuracy, model size and inference throughput.

Run with:  python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.core import create_model, model_size
from repro.data import BenchmarkConfig, build_benchmark
from repro.evaluation import evaluate_model, measure_model_throughput
from repro.litho import LithoSimulator
from repro.training import Trainer, TrainingConfig
from repro.utils import format_table, seed_everything


def main() -> None:
    seed_everything(3)
    simulator = LithoSimulator(pixel_size=16.0)
    config = BenchmarkConfig(
        benchmark="ispd2019", num_train=24, num_test=6,
        image_size=64, pixel_size=16.0, density_scale=1.5,
    )
    data = build_benchmark(config, simulator)

    rows = []
    for name, label in (("unet", "UNet"), ("damo-dls", "DAMO-DLS"), ("doinn", "DOINN (ours)")):
        print(f"Training {label} ...")
        model = create_model(name, image_size=config.image_size)
        history = Trainer(model, TrainingConfig.fast(max_epochs=4, batch_size=4)).fit(data.train)
        score = evaluate_model(model, data.test)
        throughput = measure_model_throughput(
            model, data.test.masks[0, 0], config.pixel_size, repeats=2
        )
        mpa, miou = score.as_row()
        rows.append(
            [
                label,
                model_size(model),
                f"{mpa:.2f}",
                f"{miou:.2f}",
                f"{throughput.um2_per_second:.1f}",
                f"{history.wall_time:.1f}",
            ]
        )

    print(
        format_table(
            ["Model", "Params", "mPA (%)", "mIOU (%)", "um^2/s", "train s"],
            rows,
            title="Baseline comparison (ISPD-2019-style via tiles)",
        )
    )


if __name__ == "__main__":
    main()
