"""Large-tile simulation with a DOINN trained on small tiles (paper §3.2).

Trains a DOINN on 1 um^2 tiles, then simulates tiles four times that area in
two ways: by feeding the whole tile through the network (quality degrades,
Table 4 row "DOINN") and with the half-overlapping large-tile scheme
(quality restored, row "DOINN-LT").  Both paths route through the batch-first
:class:`repro.pipeline.InferencePipeline`, which plans the tiling, batches the
tile forwards across the whole large-tile set, and stitches the cores back.

Run with:  python examples/large_tile_simulation.py [--num-workers N] [--compile]
           [--per-call-shm] [--no-shard-tiles] [--worker-timeout S]
           [--worker-retries N] [--no-degrade]

``--num-workers`` shards the pipeline's tile batches across a worker pool
(see :mod:`repro.pipeline.parallel`); predictions are bit-identical to the
serial path, so the tables below do not change — only the wall time does.
A pooled run streams through a persistent shared-memory ring and shards the
tiles of each large mask across all workers by default; ``--per-call-shm``
restores the PR 2 per-call segment transport and ``--no-shard-tiles`` the
batch-size-chunked GP loop (both for A/B timing — outputs are identical).
``--compile`` runs the trained model as a fused inference graph
(:mod:`repro.nn.fusion`: conv->BN->LeakyReLU folded into single passes with a
pad-once buffer cache) — numerically equivalent within 1e-12, and typically
well over 1.3x faster per tile on one core.
``--worker-timeout`` / ``--worker-retries`` / ``--no-degrade`` tune the pool's
supervision policy (:mod:`repro.pipeline.supervision`): per-chunk deadline,
retry budget, and whether an exhausted chunk is recomputed in-process (with a
warning) or raises a structured error.  See docs/configuration.md for the
matching ``REPRO_*`` environment variables.
"""

from __future__ import annotations

import argparse

from repro.core import DOINN, DOINNConfig
from repro.data import BenchmarkConfig, build_benchmark, build_large_tile_benchmark
from repro.evaluation import evaluate_predictions
from repro.litho import LithoSimulator
from repro.pipeline import ExecutionConfig, InferencePipeline, RetryPolicy
from repro.training import Trainer, TrainingConfig
from repro.utils import format_table, seed_everything


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="worker processes for the inference pipeline (default: REPRO_NUM_WORKERS or 0)",
    )
    parser.add_argument(
        "--compile",
        action="store_true",
        help="compile the model into a fused inference graph (conv+BN+act fusion)",
    )
    parser.add_argument(
        "--per-call-shm",
        action="store_true",
        help="disable the persistent shared-memory ring (per-call segments, PR 2 transport)",
    )
    parser.add_argument(
        "--no-shard-tiles",
        action="store_true",
        help="disable intra-mask tile sharding on the stitched plan",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="per-chunk deadline in seconds for pooled runs (default: REPRO_WORKER_TIMEOUT)",
    )
    parser.add_argument(
        "--worker-retries",
        type=int,
        default=None,
        help="retry budget per failed chunk (default: REPRO_WORKER_RETRIES or 2)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="raise a structured WorkerPoolError instead of recomputing exhausted chunks in-process",
    )
    args = parser.parse_args()
    retry = None
    if args.worker_timeout is not None or args.worker_retries is not None or args.no_degrade:
        retry = RetryPolicy(
            timeout=args.worker_timeout,
            max_retries=args.worker_retries,
            degrade=False if args.no_degrade else None,
        )
    seed_everything(1)
    simulator = LithoSimulator(pixel_size=16.0)
    config = BenchmarkConfig(
        benchmark="ispd2019", num_train=32, num_test=4,
        image_size=64, pixel_size=16.0, density_scale=1.5,
    )

    print("Training DOINN on small (1 um^2) tiles ...")
    data = build_benchmark(config, simulator)
    model = DOINN(DOINNConfig.scaled(config.image_size))
    Trainer(model, TrainingConfig.fast(max_epochs=6, batch_size=4)).fit(data.train)

    print("Building dense large tiles (4x the training area) ...")
    large = build_large_tile_benchmark(config, simulator, num_tiles=3, scale=2)

    # All CLI flags fold into one execution document; unset flags stay None
    # so the REPRO_* environment knobs (then the defaults) still apply.
    execution = ExecutionConfig(
        tile_size=config.image_size,
        batch_size=8,
        optical_diameter_pixels=simulator.optical_diameter_pixels,
        num_workers=args.num_workers,
        compile=args.compile,
        streaming=False if args.per_call_shm else None,
        shard_tiles=False if args.no_shard_tiles else None,
        retry=retry,
    )
    pipeline = InferencePipeline(model, config=execution)
    if args.compile:
        executor = getattr(pipeline.executor, "inner", pipeline.executor)
        print(f"Compiled inference: {pipeline.name} ({executor.model.num_fused_ops} fused ops)")
    if pipeline.num_workers > 1:
        transport = "persistent shm ring" if pipeline.streaming else "per-call shm segments"
        print(f"Worker pool: {pipeline.num_workers} workers, {transport}")
    naive = pipeline.predict_naive(large.masks)
    result = pipeline.run(large.masks, stitch=True)
    pipeline.close()
    print(
        f"  stitched plan: {result.stats.num_tiles} GP tiles in "
        f"{result.stats.num_batches} batches"
        f"{' (intra-mask sharded)' if result.stats.sharded_tiles else ''}, "
        f"{result.stats.seconds:.2f} s"
    )

    naive_score = evaluate_predictions(naive, large.resists)
    lt_score = evaluate_predictions(result.outputs, large.resists)
    print(
        format_table(
            ["Pipeline", "mPA (%)", "mIOU (%)"],
            [
                ["DOINN (naive, whole tile)", *map(lambda v: f"{v:.2f}", naive_score.as_row())],
                ["DOINN-LT (large-tile scheme)", *map(lambda v: f"{v:.2f}", lt_score.as_row())],
            ],
            title=f"Large tile simulation on {len(large)} tiles of {large.tile_area_um2:.1f} um^2",
        )
    )


if __name__ == "__main__":
    main()
