#!/usr/bin/env bash
# Smoke check: tier-1 tests plus the pipeline throughput micro-benchmark on
# small sizes.  Run before merging any change to an inference hot path so
# perf regressions show up here (and in the BENCH_*.json trajectories)
# instead of in production throughput.
#
# Usage:  scripts/smoke.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_PROFILE="${REPRO_PROFILE:-quick}"

echo "== repro.analysis lint =="
python -m repro.analysis src benchmarks examples scripts

echo "== tier-1 tests =="
python -m pytest -x -q tests "$@"

echo "== streaming + parallel worker-pool tests =="
python -m pytest -x -q tests/pipeline/test_parallel.py tests/pipeline/test_streaming.py "$@"

echo "== pipeline throughput bench (quick profile) =="
python -m pytest -x -q benchmarks/bench_pipeline_throughput.py "$@"

echo "== pipeline throughput mini-bench (2 workers) =="
python -m pytest -x -q benchmarks/bench_pipeline_throughput.py --num-workers 2 "$@"

echo "== Compiled inference =="
# Fused-graph equivalence across the model zoo, then the throughput bench
# with the worker sweep running compiled pipelines (records the >=1.3x
# model-forward speedup into artifacts/results/pipeline_throughput.txt).
python -m pytest -x -q tests/nn/test_fusion.py tests/pipeline/test_compiled_pipeline.py "$@"
python -m pytest -x -q benchmarks/bench_pipeline_throughput.py --compile "$@"
