#!/usr/bin/env python
"""Regenerate the knob tables in docs/configuration.md from repro.knobs.

The central knob registry (src/repro/knobs.py) is the single source of
truth for every ``REPRO_*`` environment variable: name, parser, default,
and doc text.  This script rewrites the generated tables between the
``knob-table:<section>:begin/end`` markers in docs/configuration.md so the
reference cannot drift from the code.  The ENV002 lint rule
(``python -m repro.analysis``) runs the same ``knobs.sync_markdown`` and
fails CI when the committed docs are stale.

Usage:
    python scripts/gen_config_docs.py           # rewrite in place
    python scripts/gen_config_docs.py --check   # exit 1 if stale, write nothing
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import knobs  # noqa: E402  (path bootstrap above)

DOC_PATH = REPO_ROOT / "docs" / "configuration.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed tables are current; write nothing",
    )
    args = parser.parse_args(argv)

    original = DOC_PATH.read_text(encoding="utf-8")
    updated, problems = knobs.sync_markdown(original)
    for problem in problems:
        print(f"gen_config_docs: {problem}", file=sys.stderr)
    if problems:
        return 1

    if updated == original:
        print(f"gen_config_docs: {DOC_PATH.relative_to(REPO_ROOT)} is current")
        return 0
    if args.check:
        print(
            f"gen_config_docs: {DOC_PATH.relative_to(REPO_ROOT)} is stale; "
            "run python scripts/gen_config_docs.py",
            file=sys.stderr,
        )
        return 1
    DOC_PATH.write_text(updated, encoding="utf-8")
    print(f"gen_config_docs: rewrote {DOC_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
