#!/usr/bin/env bash
# CI entry point: the tier-1 suite, an explicit pass over the fusion
# equivalence suites (every registry model, fused vs unfused, <= 1e-12), an
# explicit pass over the streaming + parallel worker-pool suites (persistent
# shm ring, per-call transport, intra-mask sharding — all bit-identical to
# serial), the supervision chaos gate (deterministic fault injection: crash
# detection, chunk retry, worker respawn, graceful degradation), and /dev/shm
# leak checks after the chaos gate and at the end.
# Runs with -p no:cacheprovider so repeated CI invocations on read-only or
# shared checkouts never write .pytest_cache state.
#
# Usage:  scripts/ci.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The whole run must leave /dev/shm clean: every pipeline segment is named
# repro_<pid>_<token> and owned by the registry in repro.pipeline.streaming.
# A segment whose owning pid is still alive belongs to a concurrent run (a
# live persistent ring is by design); only segments of dead processes are
# leaks, which keeps the gate race-free on shared runners.
check_shm_clean() {
    echo "== /dev/shm leak check ($1) =="
    if [ -d /dev/shm ]; then
        leftovers=""
        for seg in /dev/shm/repro_*; do
            [ -e "${seg}" ] || continue
            name=$(basename "${seg}")
            pid=$(echo "${name}" | cut -d_ -f2)
            if ! kill -0 "${pid}" 2>/dev/null; then
                leftovers="${leftovers}${name} "
            fi
        done
        if [ -n "${leftovers}" ]; then
            echo "stale repro shared-memory segments (owners dead): ${leftovers}" >&2
            exit 1
        fi
        echo "clean"
    else
        echo "skipped (/dev/shm not present)"
    fi
}

# Static-analysis gate first: the AST linter machine-checks the engine's
# conventions (knob registry, shm hygiene, dtype boundaries, hot-path
# allocation discipline, exception discipline — see docs/static_analysis.md)
# over every Python file in the tree, with zero baseline entries.  It is the
# cheapest gate, so a convention violation fails the build before any test
# time is spent.
echo "== repro.analysis static-analysis gate (zero findings, zero baseline) =="
python -m repro.analysis src benchmarks examples scripts

# The stages partition the tier-1 suite (no test runs twice): everything
# except the fusion, streaming/parallel, incremental/caching and supervision
# files first, then each suite as its own visibly-labelled gate.
echo "== tier-1 tests =="
python -m pytest -x -q -p no:cacheprovider tests \
    --ignore=tests/nn/test_fusion.py --ignore=tests/pipeline/test_compiled_pipeline.py \
    --ignore=tests/pipeline/test_parallel.py --ignore=tests/pipeline/test_streaming.py \
    --ignore=tests/pipeline/test_cache.py --ignore=tests/opc/test_incremental.py \
    --ignore=tests/pipeline/test_supervision.py --ignore=tests/pipeline/test_backends.py \
    --ignore=tests/pipeline/test_config.py "$@"

# The execution-config contract (docs/architecture.md): one resolved
# ExecutionConfig document with explicit > REPRO_* > default precedence and
# per-field provenance, JSON-round-tripping ExecutionPlans that match the
# executed stats, deprecation warnings on every legacy kwarg shim, and the
# config route bit-identical to the kwarg route across the zoo.
echo "== execution-config suite (config == kwargs, plans == stats, shims warn) =="
python -m pytest -x -q -p no:cacheprovider \
    -W "error::DeprecationWarning" \
    tests/pipeline/test_config.py "$@"

# -W error::FusionFallbackWarning: a fallback silently re-appearing anywhere
# in the zoo (e.g. a transposed-conv declaration rotting back to unfused)
# fails the build instead of just degrading throughput.  Tests that exercise
# the fallback machinery on purpose catch the warning with pytest.warns,
# which scopes its own filter, so they still pass under the global error.
echo "== fusion equivalence suite (compiled == unfused for the whole zoo, no fallbacks) =="
python -m pytest -x -q -p no:cacheprovider \
    -W "error::repro.nn.fusion.FusionFallbackWarning" \
    tests/nn/test_fusion.py tests/pipeline/test_compiled_pipeline.py "$@"

# Backend matrix: the per-lane pipeline suite runs under the default
# environment (every lane pinned explicitly), then the fusion + compiled
# pipeline + backend suites re-run with REPRO_BACKEND=float32 — proving the
# env knob engages end to end while compile_model and every explicitly
# pinned comparison stay deterministic.  Both legs keep the fallback
# warning escalated: no lane may reintroduce a silent unfused fallback.
echo "== compute-backend matrix: per-lane pipeline suite (float64 env) =="
python -m pytest -x -q -p no:cacheprovider \
    -W "error::repro.nn.fusion.FusionFallbackWarning" \
    tests/pipeline/test_backends.py "$@"

echo "== compute-backend matrix: REPRO_BACKEND=float32 over fusion + pipeline suites =="
REPRO_BACKEND=float32 python -m pytest -x -q -p no:cacheprovider \
    -W "error::repro.nn.fusion.FusionFallbackWarning" \
    tests/nn/test_fusion.py tests/pipeline/test_compiled_pipeline.py \
    tests/pipeline/test_backends.py "$@"

echo "== streaming + parallel worker-pool suites (pooled == serial, bit for bit) =="
python -m pytest -x -q -p no:cacheprovider \
    tests/pipeline/test_parallel.py tests/pipeline/test_streaming.py "$@"

echo "== incremental OPC + result-cache suites (patched == full re-simulation, bit for bit) =="
python -m pytest -x -q -p no:cacheprovider \
    tests/pipeline/test_cache.py tests/opc/test_incremental.py "$@"

# The chaos gate kills, crashes and hangs workers on purpose (deterministic
# REPRO_FAULT_PLAN injection); its own /dev/shm check right after proves the
# supervision + registry teardown survives every fault mode without leaking.
echo "== supervision chaos gate (fault injection: heal bit-identically or fail structured) =="
python -m pytest -x -q -p no:cacheprovider \
    tests/pipeline/test_supervision.py "$@"
check_shm_clean "after chaos gate"

check_shm_clean "final"
