#!/usr/bin/env bash
# CI entry point: the tier-1 suite plus an explicit pass over the fusion
# equivalence suites (every registry model, fused vs unfused, <= 1e-12).
# Runs with -p no:cacheprovider so repeated CI invocations on read-only or
# shared checkouts never write .pytest_cache state.
#
# Usage:  scripts/ci.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The two stages partition the tier-1 suite (no test runs twice): everything
# except the fusion files first, then the equivalence suite as its own
# visibly-labelled gate.
echo "== tier-1 tests =="
python -m pytest -x -q -p no:cacheprovider tests \
    --ignore=tests/nn/test_fusion.py --ignore=tests/pipeline/test_compiled_pipeline.py "$@"

echo "== fusion equivalence suite (compiled == unfused for the whole zoo) =="
python -m pytest -x -q -p no:cacheprovider \
    tests/nn/test_fusion.py tests/pipeline/test_compiled_pipeline.py "$@"
