"""Benchmark E6 — regenerate Figure 7 (GP / LP feature-map analysis)."""

from __future__ import annotations

from repro.experiments import format_figure7, run_figure7
from repro.nn import Tensor, no_grad

from conftest import record_report


def test_figure7_feature_maps(benchmark, harness):
    result = run_figure7(harness)
    record_report("Figure 7 feature maps", format_figure7(result))

    # The paper's qualitative observation, stated quantitatively: the Fourier
    # (GP) features track the aerial intensity more than raw edges, and the
    # convolutional (LP) features respond to edges.
    assert result["gp_aerial_correlation"] > 0.15
    assert result["gp_aerial_correlation"] > result["gp_edge_correlation"]
    assert result["lp_edge_correlation"] > 0.05
    assert "artifact_path" in result

    # Timed kernel: one GP-path forward (the Fourier unit at work).
    model, _ = harness.trained_model("doinn", "ispd2019", "L")
    data = harness.benchmark("ispd2019", "L")
    x = Tensor(data.test.masks[:1])

    def gp_forward():
        with no_grad():
            return model.global_perception(x)

    benchmark(gp_forward)
