"""Benchmark E3 — regenerate Table 3 (ablation study on ICCAD-2013 (L))."""

from __future__ import annotations

from repro.core import DOINN, DOINNConfig
from repro.experiments import format_table3, run_table3
from repro.nn import Tensor

from conftest import record_report


def test_table3_ablation(benchmark, harness):
    rows = run_table3(harness)
    record_report("Table 3 ablation", format_table3(rows))

    assert [row["id"] for row in rows] == [1, 2, 3, 4]
    # Every component increases model capacity ...
    params = [row["params"] for row in rows]
    assert params == sorted(params)
    # ... and the full DOINN is at least as accurate as the GP-only variant
    # (the paper reports a monotone improvement; small-scale training keeps the
    # end-points ordering).
    assert rows[3]["miou"] >= rows[0]["miou"]

    # Timed kernel: forward pass of the full configuration.
    data = harness.benchmark("iccad2013", "L")
    model = DOINN(DOINNConfig.scaled(data.train.image_size))
    x = Tensor(data.test.masks[:2])
    benchmark(lambda: model(x))
