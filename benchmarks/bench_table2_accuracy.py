"""Benchmark E2 — regenerate Table 2 (accuracy comparison with UNet / DAMO-DLS).

Trains UNet, DAMO-DLS and DOINN on every benchmark row with the shared recipe
and reports mPA / mIOU.  Trained weights are cached under ``artifacts/`` so
re-running the suite re-uses them.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import evaluate_model
from repro.experiments import TABLE2_ROWS, format_table2, run_table2

from conftest import record_report


def test_table2_accuracy(benchmark, harness):
    results = run_table2(harness)
    record_report("Table 2 accuracy", format_table2(results))

    assert len(results) == len(TABLE2_ROWS)
    for row in results:
        doinn = row["doinn"]
        unet = row["unet"]
        # Learned simulators must beat a trivial all-background predictor by a
        # wide margin on every benchmark.
        assert doinn["miou"] > 55.0
        assert unet["miou"] > 50.0
        # Paper ordering: DOINN beats the plain CNN baseline on every row.
        assert doinn["miou"] > unet["miou"] - 1.0
        if row["resolution"] == "L":
            # At the (L) working resolution DOINN stays the smallest learned
            # model (at (H) the retained-mode weights grow with the spectrum).
            assert doinn["params"] < unet["params"]
        if row.get("damo-dls"):
            assert doinn["params"] < row["damo-dls"]["params"] * 1.2

    # Paper headline: DOINN is competitive with or better than the baselines on
    # average across benchmarks.
    doinn_mean = np.mean([r["doinn"]["miou"] for r in results])
    unet_mean = np.mean([r["unet"]["miou"] for r in results])
    assert doinn_mean > unet_mean - 5.0

    # Timed kernel: DOINN inference on one held-out test set (the deployment
    # operation Table 2 cares about).
    data = harness.benchmark("ispd2019", "L")
    model, _ = harness.trained_model("doinn", "ispd2019", "L")
    benchmark(lambda: evaluate_model(model, data.test))
