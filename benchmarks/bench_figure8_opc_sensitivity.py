"""Benchmark E7 — regenerate Figure 8 (sensitivity to OPC-iteration perturbations)."""

from __future__ import annotations

import time

import numpy as np

from repro.experiments import format_figure8, run_figure8
from repro.layout.design_rules import ISPD2019_RULES
from repro.layout.generators import generate_via_layout
from repro.litho.simulator import LithoSimulator
from repro.opc.engine import OPCConfig, OPCEngine

from conftest import record_report


def test_incremental_opc_resimulation(benchmark):
    """Incremental OPC (dirty-tile patching) vs full re-simulation.

    Large-tile via layout (2048 nm at 8 nm -> 256 px, 49 tile windows).  The
    incremental run must be bit-identical to the full run while simulating
    materially fewer tile-equivalents than ``iterations x n_tiles``, and
    faster wall-clock.
    """
    iterations = 24
    simulator = LithoSimulator(pixel_size=8.0, num_kernels=10, kernel_support=31)
    simulator.kernels  # warm the SOCS kernel cache outside the timed region

    def correct(incremental: bool):
        layout = generate_via_layout(
            ISPD2019_RULES,
            np.random.default_rng(3),
            tile_size=2048.0,
            density_scale=1.5,
        )
        config = OPCConfig(
            iterations=iterations, freeze_after=2, incremental=incremental
        )
        start = time.perf_counter()
        result = OPCEngine(simulator, config).correct(layout)
        return result, time.perf_counter() - start

    # Warm-up pass, then one measured pass of each mode.
    correct(False), correct(True)
    full, full_seconds = correct(False)
    inc, inc_seconds = correct(True)

    # Bit-identical corrections: same final mask and same EPE trajectory.
    assert np.array_equal(inc.final_mask, full.final_mask)
    assert inc.mask_history == full.mask_history
    assert all(
        np.array_equal(a.values, b.values)
        for a, b in zip(inc.epe_history, full.epe_history)
    )

    # Materially fewer tile simulations than iterations x n_tiles.
    n_tiles = inc.dirty_history[0]  # first iteration is a full refresh
    assert n_tiles > 1
    spent = inc.counters.tile_equivalents(n_tiles)
    assert spent < 0.75 * iterations * n_tiles
    # Measurably faster wall-clock than the full re-simulation run.
    assert inc_seconds < full_seconds

    report = "\n".join(
        [
            "Incremental OPC re-simulation (via layout, 2048 nm / 8 nm, "
            f"{n_tiles} tiles, {iterations} iterations, freeze_after=2)",
            f"  full re-simulation : {full_seconds * 1e3:8.1f} ms",
            f"  incremental        : {inc_seconds * 1e3:8.1f} ms "
            f"({full_seconds / inc_seconds:.2f}x speedup)",
            f"  tile-equivalents   : {spent} vs {iterations * n_tiles} "
            "(iterations x n_tiles)",
            f"  dirty trajectory   : {inc.dirty_history}",
            f"  frozen fragments   : {inc.epe_history[-1].frozen_fragments}",
            f"  final mean |EPE|   : {inc.epe_history[-1].mean_abs_nm:.2f} nm",
        ]
    )
    record_report("Incremental OPC re-simulation", report)

    # Timed kernel: one incremental correction pass.
    benchmark(lambda: correct(True))


def test_figure8_opc_sensitivity(benchmark, harness):
    result = run_figure8(harness)
    cache_line = (
        f"\nresult cache: {result['cache_hits']} hits / "
        f"{result['cache_misses']} misses; "
        f"dirty tile-equivalents per iteration: {result['dirty_history']}"
    )
    record_report("Figure 8 OPC sensitivity", format_figure8(result) + cache_line)
    # Every golden snapshot re-simulation hits the mask-hash result cache
    # (the OPC loop already simulated those exact masks).
    assert result["cache_hits"] >= len(result["iterations"])

    assert len(result["iterations"]) == harness.profile.opc_iterations
    # Both models improve as the mask approaches the trained (OPC'ed)
    # distribution: the last quarter of iterations scores above the first.
    quarter = max(1, len(result["iterations"]) // 4)
    for series in ("doinn_miou", "unet_miou"):
        early = float(np.mean(result[series][:quarter]))
        late = float(np.mean(result[series][-quarter:]))
        assert late >= early - 0.05
    # DOINN keeps its advantage over the CNN-only baseline on average.
    assert result["doinn_mean"] >= result["unet_mean"] - 0.10

    # Timed kernel: one DOINN prediction on an intermediate OPC snapshot.
    model, _ = harness.trained_model("doinn", "iccad2013", "L")
    data = harness.benchmark("iccad2013", "L")
    mask = data.test.masks[:1]
    benchmark(lambda: model.predict(mask, batch_size=1))
