"""Benchmark E7 — regenerate Figure 8 (sensitivity to OPC-iteration perturbations)."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure8, run_figure8

from conftest import record_report


def test_figure8_opc_sensitivity(benchmark, harness):
    result = run_figure8(harness)
    record_report("Figure 8 OPC sensitivity", format_figure8(result))

    assert len(result["iterations"]) == harness.profile.opc_iterations
    # Both models improve as the mask approaches the trained (OPC'ed)
    # distribution: the last quarter of iterations scores above the first.
    quarter = max(1, len(result["iterations"]) // 4)
    for series in ("doinn_miou", "unet_miou"):
        early = float(np.mean(result[series][:quarter]))
        late = float(np.mean(result[series][-quarter:]))
        assert late >= early - 0.05
    # DOINN keeps its advantage over the CNN-only baseline on average.
    assert result["doinn_mean"] >= result["unet_mean"] - 0.10

    # Timed kernel: one DOINN prediction on an intermediate OPC snapshot.
    model, _ = harness.trained_model("doinn", "iccad2013", "L")
    data = harness.benchmark("iccad2013", "L")
    mask = data.test.masks[:1]
    benchmark(lambda: model.predict(mask, batch_size=1))
