"""Benchmark E8 — regenerate Tables 5-7 (DOINN architecture appendix)."""

from __future__ import annotations

from repro.experiments import format_table5_7, run_table5_7

from conftest import record_report


def test_table5_7_architecture(benchmark):
    result = run_table5_7(image_size=2048)
    record_report("Tables 5-7 architecture", format_table5_7(result))

    # The paper-scale model lands at the published ~1.3 M parameters.
    assert 1_200_000 < result["parameters"] < 1_500_000
    # Table 5: the retained frequency block is 50x50 coefficients.
    assert result["modes_per_axis"] == 50
    gp_rows = [r for r in result["rows"] if r["path"] == "GP"]
    assert gp_rows[0]["output"][:2] == (256, 256)

    # Timed kernel: building the paper-scale model (weight allocation + init).
    benchmark(lambda: run_table5_7(image_size=2048))
