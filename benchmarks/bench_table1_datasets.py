"""Benchmark E1 — regenerate Table 1 (dataset details)."""

from __future__ import annotations

from repro.experiments import format_table1, run_table1

from conftest import record_report


def test_table1_datasets(benchmark, harness):
    rows = run_table1(harness)
    record_report("Table 1 datasets", format_table1(rows))

    labels = {row["dataset"] for row in rows}
    assert {"ICCAD-2013", "ISPD-2019", "ISPD-2019-LT", "N14"} <= labels
    for row in rows:
        if row["dataset"] != "ISPD-2019-LT":
            assert row["train"] > 0
        assert row["test"] > 0
    large = next(r for r in rows if r["dataset"] == "ISPD-2019-LT")
    small = next(r for r in rows if r["dataset"] == "ISPD-2019")
    assert large["tile_um2"] > small["tile_um2"]

    # Timed kernel: rebuilding the dataset statistics from the cached datasets.
    benchmark(lambda: run_table1(harness))
