"""Benchmark E4 — regenerate Table 4 and Figure 9 (large-tile simulation)."""

from __future__ import annotations

import numpy as np

from repro.core import LargeTileSimulator
from repro.experiments import format_table4, run_table4

from conftest import record_report


def test_table4_large_tile(benchmark, harness, execution_config):
    result = run_table4(harness, config=execution_config)
    record_report("Table 4 large tile", format_table4(result))

    # Both pipelines must track the golden contours on tiles larger than the
    # training size.  The paper's headline (naive DOINN degrades, DOINN-LT
    # recovers 92 -> 98 mIOU) needs tiles many times the training area; at the
    # quick profile's 2x scale the naive pipeline has not collapsed yet, so we
    # assert sanity and closeness here and record the comparison in
    # EXPERIMENTS.md rather than a strict ordering.
    assert result["doinn"]["miou"] > 60.0
    assert result["doinn_lt"]["miou"] > 60.0
    assert abs(result["doinn_lt"]["miou"] - result["doinn"]["miou"]) < 15.0
    assert result["figure9_path"] is not None

    # Timed kernel: the stitched large-tile prediction itself.
    model, _ = harness.trained_model("doinn", "ispd2019", "L")
    config = harness.benchmark_config("ispd2019", "L")
    simulator = harness.simulator(config.pixel_size)
    runner = LargeTileSimulator(
        model,
        train_tile_size=config.image_size,
        optical_diameter_pixels=simulator.optical_diameter_pixels,
    )
    with np.load(result["figure9_path"]) as archive:
        mask = archive["mask"]
    benchmark(lambda: runner.predict(mask))
