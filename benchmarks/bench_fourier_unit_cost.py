"""Benchmark E10 — optimized Fourier unit vs. baseline FNO layer cost (§3.1.1)."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_fourier_cost, run_fourier_cost
from repro.nn import OptimizedFourierUnit, Tensor, no_grad

from conftest import record_report


def test_fourier_unit_cost(benchmark):
    result = run_fourier_cost(image_size=256, channels=16, modes=16, repeats=2)
    record_report("Fourier unit cost", format_fourier_cost(result))

    # The optimized unit is cheaper than one lifted-channel baseline Fourier
    # layer (the paper estimates ~50% savings from skipping C-1 of the C FFTs),
    # and far cheaper than a stacked baseline FNO.
    assert result["single_layer_speedup"] > 1.2
    assert result["stack_speedup"] > 4.0 * 1.2

    unit = OptimizedFourierUnit(1, 16, modes=16, rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).random((1, 1, 256, 256)))

    def forward():
        with no_grad():
            return unit(x)

    benchmark(forward)
