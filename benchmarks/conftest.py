"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The formatted
tables are collected in ``REPORTS`` and printed in the terminal summary (so
they appear even with output capture enabled) as well as written to
``artifacts/results/``.
"""

from __future__ import annotations

import pytest

from repro import knobs
from repro.experiments import Harness, artifacts_dir, get_profile
from repro.pipeline import ExecutionConfig, resolve_num_workers

REPORTS: list[tuple[str, str]] = []


def pytest_addoption(parser):
    """Shared ``--num-workers`` / ``--compile`` flags for every ``bench_*.py``.

    ``--num-workers`` defaults to the ``REPRO_NUM_WORKERS`` environment
    variable (then 0 = serial); ``--compile`` defaults to the mirror-image
    ``REPRO_COMPILE`` variable — so both CLI flags and the fleet-wide env
    overrides reach each benchmark's inference pipelines.
    """
    parser.addoption(
        "--num-workers",
        action="store",
        type=int,
        default=None,
        help="worker processes for pipeline benchmarks (default: REPRO_NUM_WORKERS or 0)",
    )
    parser.addoption(
        "--compile",
        action="store_true",
        default=None,
        help="run model pipelines as fused inference graphs (default: REPRO_COMPILE or off)",
    )


@pytest.fixture(scope="session")
def execution_config(request) -> ExecutionConfig:
    """One execution document built from the run's CLI flags.

    Every benchmark derives its pipeline configuration from this single
    fixture instead of threading separate per-knob fixtures around.  Only
    the CLI-backed knobs are set; everything else stays ``None`` so each
    consumer's own defaults (harness profile batch size, ``REPRO_*``
    registry, then the built-in defaults) still apply.
    """
    compile_flag = request.config.getoption("--compile")
    if compile_flag is None:
        compile_flag = bool(knobs.read_flag("REPRO_COMPILE"))
    return ExecutionConfig(
        num_workers=resolve_num_workers(request.config.getoption("--num-workers")),
        compile=bool(compile_flag),
    )


@pytest.fixture(scope="session")
def num_workers(execution_config) -> int:
    """Resolved worker count for the benchmark run (0 = serial)."""
    return execution_config.num_workers


@pytest.fixture(scope="session")
def compile_inference(execution_config) -> bool:
    """Whether model pipelines in this run should use compiled fused graphs."""
    return execution_config.compile


def record_report(title: str, text: str) -> None:
    """Register a formatted table for the terminal summary and write it to disk."""
    REPORTS.append((title, text))
    results_dir = artifacts_dir() / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    safe = title.lower().replace(" ", "_").replace("/", "-")
    (results_dir / f"{safe}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def harness() -> Harness:
    """One shared experiment harness (dataset/model caches) for the whole run."""
    return Harness(get_profile())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORTS:
        return
    terminalreporter.write_sep("=", "paper tables and figures (regenerated)")
    for title, text in REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
