"""Benchmark E9 — regenerate Table 8 (training configurations)."""

from __future__ import annotations

from repro.experiments import format_table8, run_table8
from repro.training import TrainingConfig

from conftest import record_report


def test_table8_training_config(benchmark, harness):
    result = run_table8(harness)
    record_report("Table 8 training configuration", format_table8(result))

    paper = dict(result["paper"])
    assert paper["Max Epoch"] == 10
    assert paper["Initial Learning Rate"] == 0.002
    assert paper["Optimizer"] == "Adam"
    assert paper["Loss"] == "MSE"

    benchmark(lambda: TrainingConfig.paper().as_rows())
