"""Benchmark P1 — batch-first inference pipeline throughput.

Guards the three headlines of the pipeline perf work:

* **Batched aerial path** (PR 1): the frequency-domain
  :func:`repro.litho.aerial_image` (one padded mask FFT reused across all
  cached SOCS transfer functions) must beat the seed per-kernel
  ``fftconvolve`` loop by >= 2x on the Figure 6 tile size with 12 kernels,
  while staying numerically equivalent within 1e-8.
* **Batch/worker scaling** (PR 2): the zero-copy conv hot path must keep
  batched model inference at least as fast per tile as ``batch_size=1``
  (the seed ``im2col`` path made bs=4 ~1.6x *slower* per tile), and the
  :class:`~repro.pipeline.parallel.WorkerPoolExecutor` must produce
  bit-identical outputs while scaling throughput with the physical cores
  (>= 1.8x with 4 workers, asserted when the host has >= 4 cores).
* **Fused inference graphs** (PR 3): compiling the model
  (:mod:`repro.nn.fusion`: conv->BN->LeakyReLU folded into single passes
  with a pad-once buffer cache) must give >= 1.3x model-forward throughput
  at ``batch_size=1`` while staying numerically equivalent within 1e-12;
  the sweep records fused and unfused columns side by side — and, with the
  fused-aware micro-batch budget (PR 4), compiled batched execution must be
  at least as fast per tile as compiled ``batch_size=1`` (the bs>=2
  regression PR 3 documented).
* **Streaming shm ring** (PR 4): on a repeated-call workload (a stream of
  small pipeline calls, the shape of OPC iteration loops and full-chip tile
  streams) the persistent shared-memory ring must beat the per-call segment
  transport by >= 1.2x masks/sec at the acceptance worker count (asserted
  when the host has >= 4 physical cores), while staying bit-identical.
* **Fused transposed-conv chains** (PR 5): with the decoder half of the
  graph compiled too (``conv_transpose_bn_act``: DOINN's ``dconvN -> vggN``
  stages, the UNet up path), compiled DOINN *and* compiled UNet must each
  beat their unfused pipelines by >= 1.2x ms/tile at ``batch_size=1`` while
  staying within 1e-12 — the UNet rows exist precisely because its whole up
  path is transposed convs, so they pin the deconv fusion win end to end.
* **Compute backends** (PR 8): the serial compiled DOINN pipeline is timed
  once per compute lane (:mod:`repro.nn.backends`): ``float64`` must stay
  bit-identical to the default compiled pipeline, ``float32`` must hold the
  calibrated lane tolerance while being at least as fast per tile, and the
  ``blas`` / ``fft`` lanes must stay within 1e-12 — the per-lane rows land
  in the sweep table either way.
* **Supervision overhead** (PR 7): the supervised dispatch (liveness
  monitoring, per-chunk deadlines, retry/respawn bookkeeping in
  :mod:`repro.pipeline.supervision`) must cost <= 3% happy-path throughput
  vs the retained blind ``pool.map`` baseline (``supervised=False``) on the
  same repeated-call streaming workload, with every robustness counter at
  zero (no retries, no respawns, no degradation on a healthy pool).

The full engine x batch-size x worker-count sweep — including a ``Shm``
column naming the transport of each pooled row — is written to
``artifacts/results/pipeline_throughput.txt`` via the shared report hook.
Run with ``--num-workers N`` (or ``REPRO_NUM_WORKERS``) to add a custom
worker count to the sweep, and ``--compile`` (or ``REPRO_COMPILE``) to run
the worker sweep on compiled pipelines.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

from repro.core import create_model
from repro.litho import LithoSimulator, aerial_image, aerial_image_loop
from repro.pipeline import ExecutionConfig, InferencePipeline, ModelExecutor, WorkerPoolExecutor
from repro.utils import format_table

from conftest import record_report

# Serial throughput is noisy on a busy host; batched execution passes when it
# is at least as fast as bs=1 within this timing tolerance (the regression
# guarded against was a 1.6x per-tile slowdown, far outside it).
_NOISE_TOLERANCE = 1.05
_PARALLEL_SPEEDUP_TARGET = 1.8
_PARALLEL_SPEEDUP_CORES = 4
_FUSED_SPEEDUP_TARGET = 1.3
#: Floor for *both* compiled DOINN and compiled UNet once the transposed-conv
#: chains are fused (PR 5) — UNet's up path is entirely transposed convs.
_FUSED_DECONV_SPEEDUP_TARGET = 1.2
_FUSED_EQUIVALENCE_ATOL = 1e-12
#: Compute lanes swept on the serial compiled pipeline, with the max |delta|
#: each may show vs the default compiled float64 pipeline (float32 bound from
#: the calibrated tolerance suite in tests/nn/test_fusion.py).
# repro: ok(DTYPE001, registered backend lane names from repro.nn.backends, not a dtype narrowing)
_BACKEND_LANES = {"float64": 0.0, "float32": 2e-5, "blas": 1e-12, "fft": 1e-12}
#: float32 must be at least as fast per tile as float64 within timing noise
#: (the lane halves memory traffic and doubles BLAS FLOP throughput; the
#: measured win on a dedicated core is well above 1x, but a shared 1-core
#: host only supports asserting not-slower).
_FLOAT32_NOISE_TOLERANCE = 1.05
_STREAMING_SPEEDUP_TARGET = 1.2
#: Calls per timed round of the streaming comparison.  The streaming win is
#: per *call* (segment creation, mmap and page warming skipped), so the
#: workload is a stream of small calls — masks-per-call sized to one tile
#: per worker — rather than one big batch.
_STREAMING_REPEAT_CALLS = 8
#: Happy-path cost ceiling of the supervised dispatch vs the blind pool.map
#: baseline (PR 7): monitoring a healthy pool must be nearly free.
_SUPERVISION_OVERHEAD_LIMIT = 1.03


def _physical_cores() -> int:
    """Physical core count (SMT siblings collapsed); logical count fallback.

    The 1.8x/4-worker target assumes 4 real cores — two hyperthreaded cores
    exposing 4 logical CPUs cannot double a BLAS/FFT-bound workload.
    """
    try:
        cores = set()
        for entry in os.listdir("/sys/devices/system/cpu"):
            if entry.startswith("cpu") and entry[3:].isdigit():
                topology = f"/sys/devices/system/cpu/{entry}/topology"
                with open(f"{topology}/physical_package_id") as handle:
                    package = handle.read().strip()
                with open(f"{topology}/core_id") as handle:
                    cores.add((package, handle.read().strip()))
        if cores:
            return len(cores)
    except OSError:
        pass
    return os.cpu_count() or 1


def _interleaved_best(runs: dict, rounds: int = 5) -> dict:
    """Per-config minimum over round-robin rounds.

    Configurations compared against each other (seed loop vs batched FFT,
    bs=1 vs batched) are timed in alternating rounds, so load drift on a
    shared host biases every config equally instead of whichever happened to
    run first.  Each minimum is clamped to one timer tick so a
    sub-resolution run cannot yield a zero (and downstream an infinite
    throughput).
    """
    best: dict = {}
    for _ in range(rounds):
        for key, run in runs.items():
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            best[key] = min(best.get(key, float("inf")), elapsed)
    return {key: max(value, 1e-9) for key, value in best.items()}


def test_pipeline_throughput(benchmark, harness, execution_config):
    num_workers = execution_config.num_workers
    compile_inference = execution_config.compile
    profile = harness.profile
    size = profile.low_res_size
    rng = np.random.default_rng(7)
    masks = (rng.random((8, size, size)) > 0.7).astype(float)

    simulator = LithoSimulator(pixel_size=profile.low_res_pixel, num_kernels=12)
    kernels = simulator.kernels

    # Numerical equivalence first (also warms the transfer-function cache).
    reference = np.stack([aerial_image_loop(m, kernels) for m in masks])
    np.testing.assert_allclose(aerial_image(masks, kernels), reference, atol=1e-8)

    aerial_times = _interleaved_best(
        {
            "loop": lambda: [aerial_image_loop(m, kernels) for m in masks],
            "batched": lambda: aerial_image(masks, kernels),
        }
    )
    loop_per_mask = aerial_times["loop"] / len(masks)
    batched_per_mask = aerial_times["batched"] / len(masks)
    aerial_speedup = loop_per_mask / batched_per_mask

    # ------------------------------------------------------------------ #
    # Engine x batch-size x worker-count sweep on the DOINN tile workload
    # ------------------------------------------------------------------ #
    model = create_model("doinn", image_size=size)
    # The serial baselines are pinned to num_workers=0 so they stay serial
    # even under a fleet-wide REPRO_NUM_WORKERS override.
    serial = harness.model_pipeline(model, config=ExecutionConfig(num_workers=0))
    fused_serial = harness.model_pipeline(
        model, config=ExecutionConfig(num_workers=0, compile=True)
    )
    serial.predict(masks)        # warm-up (weights, FFT plans, window views)
    fused_serial.predict(masks)  # warm-up (BN folds, pad-once buffer cache)

    # Config-vs-kwarg parity (the satellite pinning the refactor): routing
    # the same knobs through ExecutionConfig must leave the measured outputs
    # bit-identical to the deprecated per-knob keyword path.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        kwarg_serial = harness.model_pipeline(model, num_workers=0)
    kwarg_outputs = kwarg_serial.predict(masks, batch_size=profile.batch_size)

    reference_outputs = serial.predict(masks, batch_size=profile.batch_size)
    assert np.array_equal(kwarg_outputs, reference_outputs), (
        "ExecutionConfig-routed pipeline diverged from the legacy kwarg path"
    )
    fused_outputs = fused_serial.predict(masks, batch_size=profile.batch_size)
    fused_max_err = float(np.abs(fused_outputs - reference_outputs).max())
    assert fused_max_err <= _FUSED_EQUIVALENCE_ATOL, (
        f"compiled pipeline diverged from the unfused path: max |delta| = {fused_max_err:.3e}"
    )

    batch_sizes = sorted({1, 2, profile.batch_size, 2 * profile.batch_size})
    # Default sweep covers the acceptance worker counts; an explicit
    # --num-workers N narrows it to {0, N} (the smoke.sh mini-bench).
    worker_counts = [0, num_workers] if num_workers else [0, 2, _PARALLEL_SPEEDUP_CORES]

    # Serial rounds time the unfused and compiled engines interleaved, so
    # host-load drift cannot bias the fused-speedup ratio.
    per_tile: dict[tuple[str, int, int], float] = {}  # (engine, workers, bs)
    serial_runs = {}
    for bs in batch_sizes:
        serial_runs[("plain", bs)] = lambda bs=bs: serial.predict(masks, batch_size=bs)
        serial_runs[("fused", bs)] = lambda bs=bs: fused_serial.predict(masks, batch_size=bs)
    for (engine, bs), seconds in _interleaved_best(serial_runs).items():
        per_tile[(engine, 0, bs)] = seconds / len(masks)

    # The worker sweep runs whichever engine --compile selects; parallel
    # outputs must be bit-identical to the same engine run serially.
    pool_engine = "fused" if compile_inference else "plain"
    pool_expected = fused_outputs if compile_inference else reference_outputs
    for workers in worker_counts:
        if workers == 0:
            continue
        # streaming=True is pinned explicitly (not left to REPRO_STREAMING)
        # so the sweep rows labeled "ring" below really ran the ring.
        pipeline = (
            (fused_serial if compile_inference else serial)
            if workers <= 1
            else harness.model_pipeline(
                model,
                config=execution_config.merged(num_workers=workers, streaming=True),
            )
        )
        if workers > 1:
            outputs = pipeline.predict(masks, batch_size=profile.batch_size)
            assert np.array_equal(outputs, pool_expected), (
                f"worker-pool outputs (workers={workers}, {pool_engine}) must be "
                "bit-identical to the serial run of the same engine"
            )
        timings = _interleaved_best(
            {
                bs: (lambda bs=bs: pipeline.predict(masks, batch_size=bs))
                for bs in batch_sizes
            },
            rounds=3,
        )
        for bs, seconds in timings.items():
            per_tile[(pool_engine, workers, bs)] = seconds / len(masks)
        if pipeline is not serial and pipeline is not fused_serial:
            pipeline.close()

    # ------------------------------------------------------------------ #
    # Fused-deconv rows: UNet's up path is entirely transposed convs, so a
    # compiled-vs-unfused UNet comparison isolates the PR 5 chain link the
    # way the DOINN rows above isolate the conv/BN/act fusion.
    # ------------------------------------------------------------------ #
    unet = create_model("unet", image_size=size)
    unet_serial = harness.model_pipeline(unet, config=ExecutionConfig(num_workers=0))
    unet_fused = harness.model_pipeline(
        unet, config=ExecutionConfig(num_workers=0, compile=True)
    )
    unet_serial.predict(masks)  # warm-up
    unet_fused.predict(masks)   # warm-up (BN folds, scatter/pad buffer cache)
    unet_reference = unet_serial.predict(masks, batch_size=profile.batch_size)
    unet_fused_outputs = unet_fused.predict(masks, batch_size=profile.batch_size)
    unet_max_err = float(np.abs(unet_fused_outputs - unet_reference).max())
    assert unet_max_err <= _FUSED_EQUIVALENCE_ATOL, (
        f"compiled UNet pipeline diverged from the unfused path: max |delta| = {unet_max_err:.3e}"
    )
    unet_times = _interleaved_best(
        {
            "plain": lambda: unet_serial.predict(masks, batch_size=1),
            "fused": lambda: unet_fused.predict(masks, batch_size=1),
        }
    )
    unet_per_tile = {key: seconds / len(masks) for key, seconds in unet_times.items()}
    unet_speedup = unet_per_tile["plain"] / unet_per_tile["fused"]

    # ------------------------------------------------------------------ #
    # Compute-backend lanes (PR 8): serial compiled DOINN, one row per lane
    # ------------------------------------------------------------------ #
    backend_pipes = {
        lane: harness.model_pipeline(
            model, config=ExecutionConfig(num_workers=0, compile=True, backend=lane)
        )
        for lane in _BACKEND_LANES
    }
    backend_max_err = {}
    for lane, pipe in backend_pipes.items():
        pipe.predict(masks)  # warm-up (lane conversion, workspace/spectrum caches)
        outputs = pipe.predict(masks, batch_size=profile.batch_size)
        backend_max_err[lane] = float(np.abs(outputs - fused_outputs).max())
    for lane, bound in _BACKEND_LANES.items():
        assert backend_max_err[lane] <= bound, (
            f"{lane} lane diverged from the compiled float64 pipeline: "
            f"max |delta| = {backend_max_err[lane]:.3e} (bound {bound:.0e})"
        )
    backend_times = _interleaved_best(
        {
            lane: (lambda p=pipe: p.predict(masks, batch_size=profile.batch_size))
            for lane, pipe in backend_pipes.items()
        }
    )
    backend_per_tile = {lane: seconds / len(masks) for lane, seconds in backend_times.items()}
    # repro: ok(DTYPE001, backend lane name used as a dict key, not a dtype narrowing)
    float32_speedup = backend_per_tile["float64"] / backend_per_tile["float32"]

    # ------------------------------------------------------------------ #
    # Streaming shm ring vs per-call segments on a repeated-call workload
    # ------------------------------------------------------------------ #
    # OPC iteration loops and full-chip tile streams issue many consecutive
    # small pipeline calls; the ring's win is per call (no shm_open/mmap/page
    # warming after the first), so the comparison streams
    # _STREAMING_REPEAT_CALLS calls of one-tile-per-worker batches.
    stream_workers = num_workers if num_workers and num_workers > 1 else (
        _PARALLEL_SPEEDUP_CORES if _physical_cores() >= _PARALLEL_SPEEDUP_CORES else 2
    )
    stream_masks = masks[:stream_workers]
    stream_expected = pool_expected[: stream_masks.shape[0]]
    # Both transports are pinned explicitly so a fleet-wide REPRO_STREAMING
    # override cannot turn the A/B comparison into ring-vs-ring (or fail it).
    ring_pipe = harness.model_pipeline(
        model, config=execution_config.merged(num_workers=stream_workers, streaming=True)
    )
    percall_pipe = harness.model_pipeline(
        model, config=execution_config.merged(num_workers=stream_workers, streaming=False)
    )
    assert ring_pipe.streaming and not percall_pipe.streaming
    for pipe, transport in ((ring_pipe, "ring"), (percall_pipe, "per-call")):
        outputs = pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
        assert np.array_equal(outputs, stream_expected), (
            f"streaming-comparison outputs ({transport}, workers={stream_workers}) "
            "must be bit-identical to the serial run of the same engine"
        )
    stream_times = _interleaved_best(
        {
            "ring": lambda: [
                ring_pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
                for _ in range(_STREAMING_REPEAT_CALLS)
            ],
            "per-call": lambda: [
                percall_pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
                for _ in range(_STREAMING_REPEAT_CALLS)
            ],
        },
        rounds=3,
    )
    ring_pipe.close()
    percall_pipe.close()
    stream_tiles = _STREAMING_REPEAT_CALLS * stream_masks.shape[0]
    stream_per_tile = {key: seconds / stream_tiles for key, seconds in stream_times.items()}
    streaming_speedup = stream_per_tile["per-call"] / stream_per_tile["ring"]

    # ------------------------------------------------------------------ #
    # Supervised vs blind dispatch on the same repeated-call workload
    # ------------------------------------------------------------------ #
    # The supervised pool (PR 7) watches pipes + process sentinels and keeps
    # retry/respawn ledgers per dispatch; on a healthy pool that bookkeeping
    # must be nearly free.  supervised=False retains the pre-supervision
    # blind pool.map dispatch as the baseline.
    supervised_pipe = harness.model_pipeline(
        model, config=execution_config.merged(num_workers=stream_workers, streaming=True)
    )
    blind_pipe = InferencePipeline(
        WorkerPoolExecutor(
            ModelExecutor(model, compile=compile_inference),
            num_workers=stream_workers,
            streaming=True,
            supervised=False,
        ),
        config=ExecutionConfig(batch_size=profile.batch_size),
    )
    for pipe, dispatch in ((supervised_pipe, "supervised"), (blind_pipe, "blind")):
        outputs = pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
        assert np.array_equal(outputs, stream_expected), (
            f"{dispatch}-dispatch outputs (workers={stream_workers}) must be "
            "bit-identical to the serial run of the same engine"
        )
    dispatch_times = _interleaved_best(
        {
            "supervised": lambda: [
                supervised_pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
                for _ in range(_STREAMING_REPEAT_CALLS)
            ],
            "blind": lambda: [
                blind_pipe.predict(stream_masks, batch_size=stream_masks.shape[0])
                for _ in range(_STREAMING_REPEAT_CALLS)
            ],
        },
        rounds=3,
    )
    # A healthy pool must report a clean ledger: monitoring is observability,
    # not behaviour — any nonzero counter here means supervision interfered.
    happy_counters = supervised_pipe.executor.robustness
    assert (
        happy_counters.chunks_retried,
        happy_counters.workers_respawned,
        happy_counters.degraded_runs,
        happy_counters.fault_events,
    ) == (0, 0, 0, 0), f"happy-path run dirtied the robustness ledger: {happy_counters}"
    supervised_pipe.close()
    blind_pipe.close()
    dispatch_per_tile = {key: seconds / stream_tiles for key, seconds in dispatch_times.items()}
    supervision_overhead = dispatch_per_tile["supervised"] / dispatch_per_tile["blind"]

    def _engine_label(engine: str) -> str:
        return "DOINN pipeline [compiled]" if engine == "fused" else "DOINN pipeline"

    # Pooled sweep rows run the default transport (the persistent ring);
    # serial rows have no shm transport at all.
    rows = [
        [
            _engine_label(engine),
            str(bs),
            str(workers),
            "ring" if workers else "-",
            f"{per_tile[(engine, workers, bs)] * 1e3:.2f}",
            f"{1.0 / per_tile[(engine, workers, bs)]:.1f}",
        ]
        for engine, workers, bs in sorted(per_tile, key=lambda k: (k[0] == "fused", k[1], k[2]))
    ]
    for engine in ("plain", "fused"):
        rows.append(
            [
                "UNet pipeline [compiled]" if engine == "fused" else "UNet pipeline",
                "1",
                "0",
                "-",
                f"{unet_per_tile[engine] * 1e3:.2f}",
                f"{1.0 / unet_per_tile[engine]:.1f}",
            ]
        )
    for lane in _BACKEND_LANES:
        rows.append(
            [
                f"DOINN pipeline [compiled, {lane}]",
                str(profile.batch_size),
                "0",
                "-",
                f"{backend_per_tile[lane] * 1e3:.2f}",
                f"{1.0 / backend_per_tile[lane]:.1f}",
            ]
        )
    stream_label = f"{_engine_label(pool_engine)} (x{_STREAMING_REPEAT_CALLS}-call stream)"
    for transport in ("per-call", "ring"):
        rows.append(
            [
                stream_label,
                str(stream_masks.shape[0]),
                str(stream_workers),
                transport,
                f"{stream_per_tile[transport] * 1e3:.2f}",
                f"{1.0 / stream_per_tile[transport]:.1f}",
            ]
        )
    for dispatch in ("blind", "supervised"):
        rows.append(
            [
                f"{stream_label[:-1]}, {dispatch} dispatch)",
                str(stream_masks.shape[0]),
                str(stream_workers),
                "ring",
                f"{dispatch_per_tile[dispatch] * 1e3:.2f}",
                f"{1.0 / dispatch_per_tile[dispatch]:.1f}",
            ]
        )

    fused_speedup = per_tile[("plain", 0, 1)] / per_tile[("fused", 0, 1)]
    table = format_table(
        ["Engine", "Batch size", "Workers", "Shm", "ms / tile", "masks / s"],
        [
            ["Hopkins per-kernel loop (seed)", "1", "0", "-", f"{loop_per_mask * 1e3:.2f}", "-"],
            ["Hopkins batched FFT", str(len(masks)), "0", "-", f"{batched_per_mask * 1e3:.2f}",
             f"{aerial_speedup:.2f}x vs seed"],
            *rows,
        ],
        title=(
            f"Pipeline throughput ({size}x{size} tiles, 12 SOCS kernels, "
            f"{os.cpu_count()} core(s))"
        ),
    )
    summary = (
        f"model-forward speedup at bs=1 (compiled vs unfused): {fused_speedup:.2f}x; "
        f"fused max |delta| = {fused_max_err:.3e}\n"
        f"fused transposed-conv chains (compiled vs unfused, bs=1): "
        f"DOINN {fused_speedup:.2f}x, UNet {unet_speedup:.2f}x; "
        f"UNet fused max |delta| = {unet_max_err:.3e}\n"
        f"compute lanes (serial compiled, bs={profile.batch_size}): "
        + ", ".join(
            f"{lane} {backend_per_tile[lane] * 1e3:.2f} ms/tile "
            f"(max |delta| {backend_max_err[lane]:.1e})"
            for lane in _BACKEND_LANES
        )
        + f"; float32 vs float64: {float32_speedup:.2f}x\n"
        f"streaming ring vs per-call shm ({stream_workers} workers, "
        f"x{_STREAMING_REPEAT_CALLS}-call stream): {streaming_speedup:.2f}x masks/sec\n"
        f"supervised vs blind dispatch ({stream_workers} workers, happy path): "
        f"{supervision_overhead:.3f}x ms/tile (ceiling {_SUPERVISION_OVERHEAD_LIMIT}x), "
        "robustness counters all zero"
    )
    record_report("Pipeline throughput", table + "\n" + summary)

    assert aerial_speedup >= 2.0, (
        f"batched aerial path must be >=2x the per-kernel loop, got {aerial_speedup:.2f}x"
    )

    # The fusion headline: the compiled graph must beat the unfused path by
    # >= 1.3x per tile at batch_size=1 (measured: ~2x on one x86 core).
    assert fused_speedup >= _FUSED_SPEEDUP_TARGET, (
        f"compiled pipeline must give >= {_FUSED_SPEEDUP_TARGET}x model-forward "
        f"throughput at bs=1, got {fused_speedup:.2f}x"
    )

    # The fused-deconv acceptance (PR 5): with the transposed-conv chains
    # compiled, both upsampling models must beat their unfused pipelines.
    for label, speedup in (("DOINN", fused_speedup), ("UNet", unet_speedup)):
        assert speedup >= _FUSED_DECONV_SPEEDUP_TARGET, (
            f"compiled {label} must give >= {_FUSED_DECONV_SPEEDUP_TARGET}x "
            f"model-forward throughput at bs=1, got {speedup:.2f}x"
        )

    # The float32 lane halves memory traffic and doubles BLAS throughput: it
    # must never be slower per tile than the float64 lane (beyond noise).
    assert (
        backend_per_tile["float32"]  # repro: ok(DTYPE001, backend lane name keying the timing dict)
        <= backend_per_tile["float64"] * _FLOAT32_NOISE_TOLERANCE
    ), (
        f"float32 lane regressed vs float64: "
        f"{backend_per_tile['float32'] * 1e3:.2f} ms/tile vs "  # repro: ok(DTYPE001, backend lane name keying the timing dict)
        f"{backend_per_tile['float64'] * 1e3:.2f} ms/tile"
    )

    # The bs=4 regression fix: batched execution must be at least as fast per
    # tile as single-tile execution (seed im2col made it 1.6x slower).
    single = per_tile[("plain", 0, 1)]
    batched = per_tile[("plain", 0, profile.batch_size)]
    assert batched <= single * _NOISE_TOLERANCE, (
        f"batched (bs={profile.batch_size}) execution regressed vs bs=1: "
        f"{batched * 1e3:.2f} ms/tile vs {single * 1e3:.2f} ms/tile"
    )

    # The compiled micro-batch retune (PR 4): with the fused-aware budget,
    # compiled batched execution must also be at least as fast per tile as
    # compiled bs=1 (the unfused budget made compiled bs>=2 ~1.3x slower).
    fused_single = per_tile[("fused", 0, 1)]
    fused_batched = per_tile[("fused", 0, profile.batch_size)]
    assert fused_batched <= fused_single * _NOISE_TOLERANCE, (
        f"compiled batched (bs={profile.batch_size}) execution regressed vs compiled "
        f"bs=1: {fused_batched * 1e3:.2f} ms/tile vs {fused_single * 1e3:.2f} ms/tile"
    )

    # Streaming acceptance: where there are cores for the pool to win on,
    # the persistent ring must beat per-call segments by >= 1.2x masks/sec
    # on the repeated-call stream (smaller hosts still record the numbers).
    if _physical_cores() >= _PARALLEL_SPEEDUP_CORES:
        assert streaming_speedup >= _STREAMING_SPEEDUP_TARGET, (
            f"streaming ring must give >= {_STREAMING_SPEEDUP_TARGET}x masks/sec over "
            f"per-call shm on a repeated-call workload, got {streaming_speedup:.2f}x"
        )

    # Supervision acceptance (PR 7): monitored dispatch must stay within 3%
    # of the blind baseline on the happy path.  Like every pool-vs-pool
    # timing ratio, this is only meaningful where the workers have real cores
    # to run on; a 1-core host oversubscribes the parent against the workers
    # and the ratio measures scheduler noise (the numbers are still recorded).
    if _physical_cores() >= _PARALLEL_SPEEDUP_CORES:
        assert supervision_overhead <= _SUPERVISION_OVERHEAD_LIMIT, (
            f"supervised dispatch must cost <= {_SUPERVISION_OVERHEAD_LIMIT}x the blind "
            f"pool.map baseline on the happy path, got {supervision_overhead:.3f}x"
        )

    # Worker-pool scaling holds where there are cores to scale onto; on
    # smaller hosts the sweep is still recorded (sharding overhead on one
    # core is a small net loss, not a win — see the pipeline docstring).
    if (
        _PARALLEL_SPEEDUP_CORES in worker_counts
        and _physical_cores() >= _PARALLEL_SPEEDUP_CORES
    ):
        best_serial = min(t for (e, w, _), t in per_tile.items() if w == 0 and e == pool_engine)
        best_parallel = min(
            t for (e, w, _), t in per_tile.items()
            if w == _PARALLEL_SPEEDUP_CORES and e == pool_engine
        )
        assert best_serial / best_parallel >= _PARALLEL_SPEEDUP_TARGET, (
            f"{_PARALLEL_SPEEDUP_CORES} workers must give >= {_PARALLEL_SPEEDUP_TARGET}x "
            f"pipeline throughput, got {best_serial / best_parallel:.2f}x"
        )

    # Timed kernel: the batched aerial path on the full mask stream.
    benchmark(lambda: aerial_image(masks, kernels))
