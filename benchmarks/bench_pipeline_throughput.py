"""Benchmark P1 — batch-first inference pipeline throughput.

Guards the headline of the batch-first refactor: the frequency-domain
:func:`repro.litho.aerial_image` (one padded mask FFT reused across all
cached SOCS transfer functions) must beat the seed per-kernel
``fftconvolve`` loop by >= 2x on the Figure 6 tile size with 12 kernels,
while staying numerically equivalent within 1e-8.  Also records
:class:`repro.pipeline.InferencePipeline` model throughput at ``batch_size``
1 vs the profile batch size, so the batching win stays visible in the
BENCH_*.json trajectories.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import create_model
from repro.evaluation import measure_pipeline_throughput
from repro.litho import LithoSimulator, aerial_image, aerial_image_loop
from repro.utils import format_table

from conftest import record_report


def _best_of(run, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` runs (robust to scheduler noise)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return min(times)


def test_pipeline_throughput(benchmark, harness):
    profile = harness.profile
    size = profile.low_res_size
    rng = np.random.default_rng(7)
    masks = (rng.random((8, size, size)) > 0.7).astype(float)

    simulator = LithoSimulator(pixel_size=profile.low_res_pixel, num_kernels=12)
    kernels = simulator.kernels

    # Numerical equivalence first (also warms the transfer-function cache).
    reference = np.stack([aerial_image_loop(m, kernels) for m in masks])
    np.testing.assert_allclose(aerial_image(masks, kernels), reference, atol=1e-8)

    loop_per_mask = _best_of(lambda: [aerial_image_loop(m, kernels) for m in masks]) / len(masks)
    batched_per_mask = _best_of(lambda: aerial_image(masks, kernels)) / len(masks)
    speedup = loop_per_mask / batched_per_mask

    # Model pipeline: the batch_size knob on the same DOINN tile workload.
    model = create_model("doinn", image_size=size)
    pipeline = harness.model_pipeline(model)
    single = measure_pipeline_throughput(
        pipeline, masks[0], profile.low_res_pixel, repeats=2, batch_size=1
    )
    batched = measure_pipeline_throughput(
        pipeline, masks[0], profile.low_res_pixel, repeats=2, batch_size=profile.batch_size
    )

    record_report(
        "Pipeline throughput",
        format_table(
            ["Path", "ms / tile", "Speedup / note"],
            [
                ["Hopkins per-kernel loop (seed)", f"{loop_per_mask * 1e3:.2f}", "baseline"],
                ["Hopkins batched FFT", f"{batched_per_mask * 1e3:.2f}", f"{speedup:.2f}x"],
                [
                    "DOINN pipeline (bs=1)",
                    f"{single.seconds_per_tile * 1e3:.2f}",
                    f"{single.um2_per_second:.1f} um^2/s",
                ],
                [
                    f"DOINN pipeline (bs={profile.batch_size})",
                    f"{batched.seconds_per_tile * 1e3:.2f}",
                    f"{batched.um2_per_second:.1f} um^2/s",
                ],
            ],
            title=f"Pipeline throughput ({size}x{size} tiles, 12 SOCS kernels)",
        ),
    )

    assert speedup >= 2.0, (
        f"batched aerial path must be >=2x the per-kernel loop, got {speedup:.2f}x"
    )

    # Timed kernel: the batched aerial path on the full mask stream.
    benchmark(lambda: aerial_image(masks, kernels))
