"""Benchmark E5 — regenerate Figure 6 (throughput comparison) and the
model-size / speedup claims from the abstract."""

from __future__ import annotations

from repro.core import create_model
from repro.experiments import format_figure6, run_figure6

from conftest import record_report


def test_figure6_runtime(benchmark, harness, execution_config):
    results = run_figure6(harness, repeats=2, config=execution_config)
    record_report("Figure 6 runtime", format_figure6(results))

    by_name = {row["engine"]: row for row in results}
    assert set(by_name) == {"UNet", "DAMO", "Ours", "Ref"}
    # Shape of the published figure: the golden (rigorous) engine is the
    # slowest, DAMO is much slower than DOINN, and DOINN is in the same class
    # as UNet.
    assert by_name["Ref"]["um2_per_s"] < by_name["Ours"]["um2_per_s"]
    assert by_name["DAMO"]["um2_per_s"] < by_name["Ours"]["um2_per_s"]
    assert by_name["Ours"]["speedup_over_ref"] > 1.0

    # Timed kernel: DOINN single-tile inference (the quantity Figure 6 plots).
    data = harness.benchmark("ispd2019", "L")
    model = create_model("doinn", image_size=data.test.image_size)
    mask = data.test.masks[:1]
    benchmark(lambda: model.predict(mask, batch_size=1))
