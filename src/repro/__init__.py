"""Reproduction of "Generic Lithography Modeling with Dual-band Optics-Inspired
Neural Networks" (DAC 2022).

Sub-packages
------------
``repro.nn``
    NumPy deep-learning framework (autograd, layers, spectral ops, optimizers).
``repro.litho``
    Golden Hopkins/SOCS lithography simulator and resist models.
``repro.layout``
    Layout geometry, synthetic benchmark generators, rasterization and tiling.
``repro.opc``
    Edge-based OPC engine and SRAF insertion.
``repro.data``
    Datasets and data loaders for mask/resist image pairs.
``repro.core``
    The DOINN model, baselines (UNet, DAMO-DLS, FNO) and the large-tile
    simulation scheme.
``repro.metrics`` / ``repro.evaluation`` / ``repro.training``
    mIOU/mPA/EPE metrics, the training loop (Table 8 recipe) and evaluation
    utilities including throughput measurement.
``repro.experiments``
    One harness per paper table/figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
