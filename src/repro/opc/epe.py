"""Edge placement error (EPE) measurement.

EPE is the signed distance (in pixels here, convertible to nm by the caller)
between a target edge and the printed resist contour, measured along the edge
normal at a fragment's control point.  Positive EPE means the printed contour
lies outside the target (over-printing); negative means under-printing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fragments import EdgeFragment, FragmentedShape

__all__ = ["EPEStatistics", "measure_fragment_epe", "measure_layout_epe"]


@dataclass(frozen=True)
class EPEStatistics:
    """Summary of EPE over all measured control points.

    ``frozen_fragments`` counts the fragments *skipped* by the measurement
    because the OPC engine froze them as converged
    (``OPCConfig.freeze_after``); ``values`` covers only the active ones.
    """

    values: np.ndarray
    pixel_size: float
    frozen_fragments: int = 0

    @property
    def mean_abs_nm(self) -> float:
        return float(np.mean(np.abs(self.values))) * self.pixel_size if self.values.size else 0.0

    @property
    def max_abs_nm(self) -> float:
        return float(np.max(np.abs(self.values))) * self.pixel_size if self.values.size else 0.0

    @property
    def rms_nm(self) -> float:
        return float(np.sqrt(np.mean(self.values**2))) * self.pixel_size if self.values.size else 0.0

    def violations(self, tolerance_nm: float) -> int:
        """Number of control points whose |EPE| exceeds ``tolerance_nm``."""
        return int(np.sum(np.abs(self.values) * self.pixel_size > tolerance_nm))


def measure_fragment_epe(
    resist: np.ndarray,
    fragment: EdgeFragment,
    shape_interior: tuple[int, int],
    search_range: int = 24,
) -> float:
    """Measure the EPE of one fragment against a resist image (in pixels).

    The measurement walks from a point just inside the shape outward along the
    fragment normal and records where the resist value drops from printed to
    unprinted.  ``shape_interior`` is a (row, col) point inside the shape used
    to anchor the walk when the control point itself did not print.
    """
    h, w = resist.shape
    row, col = fragment.control_point
    drow, dcol = fragment.outward_normal

    def printed(r: int, c: int) -> bool:
        if 0 <= r < h and 0 <= c < w:
            return resist[r, c] >= 0.5
        return False

    if printed(row, col):
        # Contour lies at or outside the target edge: walk outward.
        distance = 0
        r, c = row, col
        while distance < search_range and printed(r + drow, c + dcol):
            r, c = r + drow, c + dcol
            distance += 1
        return float(distance)
    # Contour lies inside the target (or the feature vanished): walk inward.
    distance = 0
    r, c = row, col
    while distance < search_range and not printed(r, c):
        r, c = r - drow, c - dcol
        distance += 1
        if (r, c) == shape_interior:
            break
    return float(-distance)


def measure_layout_epe(
    resist: np.ndarray,
    shapes: list[FragmentedShape],
    pixel_size: float,
    search_range: int = 24,
    skip_frozen: bool = False,
) -> EPEStatistics:
    """Measure EPE at every fragment control point of every shape.

    With ``skip_frozen=True``, fragments the OPC engine froze as converged
    are not walked (their count is reported in ``frozen_fragments`` instead)
    — this is what shrinks the measurement loop as OPC converges.  ``values``
    keeps the deterministic (shape, fragment) scan order over the active
    fragments, which the engine's move step relies on.
    """
    values = []
    frozen = 0
    for shape in shapes:
        row0, col0, row1, col1 = shape.rect_pixels
        interior = ((row0 + row1) // 2, (col0 + col1) // 2)
        for fragment in shape.fragments:
            if skip_frozen and fragment.frozen:
                frozen += 1
                continue
            values.append(measure_fragment_epe(resist, fragment, interior, search_range))
    return EPEStatistics(
        values=np.asarray(values, dtype=np.float64),
        pixel_size=pixel_size,
        frozen_fragments=frozen,
    )
