"""Iterative edge-based OPC engine.

The engine reproduces the mask-correction loop that generated the paper's
training masks and the 24-iteration snapshots of Figure 8: fragment the target
edges, simulate the current mask with the golden simulator, measure the edge
placement error at every fragment and move each fragment against its error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..layout.geometry import Layout
from ..layout.rasterize import rasterize
from ..litho.simulator import LithoSimulator
from ..pipeline import InferencePipeline
from .epe import EPEStatistics, measure_fragment_epe, measure_layout_epe
from .fragments import FragmentedShape, build_mask, fragment_layout
from .sraf import insert_srafs, sraf_rects_pixels

__all__ = ["OPCConfig", "OPCResult", "OPCEngine", "rule_based_retarget"]


@dataclass(frozen=True)
class OPCConfig:
    """Tuning knobs of the OPC engine."""

    iterations: int = 12
    gain: float = 0.5                 # fraction of the measured EPE corrected per iteration
    max_step: float = 3.0             # max fragment movement per iteration (pixels)
    max_offset: float = 12.0          # max total fragment offset (pixels)
    max_fragment_length: int = 32     # pixels
    use_srafs: bool = True
    epe_search_range: int = 24        # pixels
    record_history: bool = True
    num_workers: int | None = None    # worker pool for the simulation pipeline
    #: Persistent shared-memory ring for the simulation pipeline.  OPC is the
    #: canonical streaming workload — the iterate-simulate-measure loop calls
    #: the simulator once per iteration on same-shaped masks, so the ring's
    #: segments are mapped once and reused for the whole run.  ``None``
    #: defers to ``REPRO_STREAMING`` (then on).
    streaming: bool | None = None


@dataclass
class OPCResult:
    """Outcome of an OPC run."""

    final_mask: np.ndarray
    target: np.ndarray
    mask_history: list[np.ndarray] = field(default_factory=list)
    epe_history: list[EPEStatistics] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.epe_history)

    @property
    def converged_epe_nm(self) -> float:
        return self.epe_history[-1].mean_abs_nm if self.epe_history else float("nan")


def rule_based_retarget(layout: Layout, bias: float = 20.0) -> Layout:
    """Cheap one-shot OPC: grow every shape by a constant bias (nm per side).

    Used by the dataset builders when a full iterative OPC run per tile would
    be too slow; the bias value approximates the average correction the
    iterative engine converges to for the default optical settings.
    """
    retargeted = Layout(bounds=layout.bounds, name=layout.name + "-retarget")
    for rect in layout.shapes:
        grown = rect.expanded(bias)
        clipped = grown.clipped_to(layout.bounds)
        if clipped is not None:
            retargeted.add(clipped)
    return retargeted


class OPCEngine:
    """Edge-based OPC driven by the golden lithography simulator.

    Simulation runs through the batch-first
    :class:`~repro.pipeline.InferencePipeline` — the same execution path every
    other inference consumer uses (the batched single-FFT aerial path with
    cached SOCS transfer functions lives in :mod:`repro.litho.hopkins` and is
    shared by all callers).  Routing the iterate-simulate-measure loop through
    the pipeline keeps one uniform engine interface and opens the door to
    batching multiple mask candidates per OPC iteration.
    """

    def __init__(self, simulator: LithoSimulator, config: OPCConfig | None = None) -> None:
        self.simulator = simulator
        self.config = config or OPCConfig()
        self.pipeline = InferencePipeline(
            simulator,
            num_workers=self.config.num_workers,
            streaming=self.config.streaming,
        )

    def close(self) -> None:
        """Release the simulation pipeline's worker pool (no-op when serial)."""
        self.pipeline.close()

    def __enter__(self) -> "OPCEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def correct(self, layout: Layout) -> OPCResult:
        """Run iterative OPC on a layout and return the corrected mask.

        The target (desired wafer contour) is the drawn layout itself,
        rasterized at the simulator's pixel size.
        """
        config = self.config
        pixel_size = self.simulator.pixel_size
        image_size = int(round(layout.bounds.width / pixel_size))
        target = rasterize(layout, pixel_size=pixel_size, image_size=image_size)

        shapes = fragment_layout(layout, pixel_size, config.max_fragment_length)
        sraf_boxes = (
            sraf_rects_pixels(insert_srafs(layout), pixel_size) if config.use_srafs else []
        )

        result = OPCResult(final_mask=target.copy(), target=target)
        for _ in range(config.iterations):
            mask = build_mask(shapes, image_size, extra_rects=sraf_boxes)
            resist = self.pipeline.predict(mask)
            stats = measure_layout_epe(resist, shapes, pixel_size, config.epe_search_range)
            if config.record_history:
                result.mask_history.append(mask)
            result.epe_history.append(stats)
            self._move_fragments(shapes, resist)
            result.final_mask = mask

        # Build the mask with the final fragment positions (post last update).
        result.final_mask = build_mask(shapes, image_size, extra_rects=sraf_boxes)
        if config.record_history:
            result.mask_history.append(result.final_mask)
        return result

    # ------------------------------------------------------------------ #
    def _move_fragments(self, shapes: list[FragmentedShape], resist: np.ndarray) -> None:
        """Move every fragment against its measured EPE."""
        config = self.config
        for shape in shapes:
            row0, col0, row1, col1 = shape.rect_pixels
            interior = ((row0 + row1) // 2, (col0 + col1) // 2)
            for fragment in shape.fragments:
                epe = measure_fragment_epe(resist, fragment, interior, config.epe_search_range)
                if epe <= -config.epe_search_range:
                    # The feature did not print at all at this control point.
                    # Grow gently instead of jumping by the (saturated) error,
                    # which would overshoot and oscillate with a binary resist.
                    step = 1.0
                else:
                    step = float(np.clip(-config.gain * epe, -config.max_step, config.max_step))
                # Damp oscillation: if the correction reversed direction since
                # the previous iteration, take only half a step.
                if step * fragment.last_step < 0.0:
                    step *= 0.5
                fragment.last_step = step
                fragment.offset = float(
                    np.clip(fragment.offset + step, -config.max_offset, config.max_offset)
                )
