"""Iterative edge-based OPC engine.

The engine reproduces the mask-correction loop that generated the paper's
training masks and the 24-iteration snapshots of Figure 8: fragment the target
edges, simulate the current mask with the golden simulator, measure the edge
placement error at every fragment and move each fragment against its error.

Incremental re-simulation
-------------------------
Each move step perturbs a handful of fragment offsets, so most of the mask —
and, by the finite optical influence radius, most of the aerial image — is
unchanged between iterations.  With ``incremental`` enabled (the default) the
loop runs through :meth:`repro.pipeline.InferencePipeline.predict_patched`:
a static fragment->tile index (:class:`~repro.opc.fragments.FragmentTileIndex`)
narrows the windows a move step can have touched, per-window content hashes
confirm the actually-dirty ones, and only those are re-simulated — their
ownership regions spliced into a cached full-image aerial.  A hybrid cost
model falls back to one native whole-mask refresh when the dirty set is large
(early iterations), so the incremental loop never loses materially to the
plain one; the savings grow as fragments converge — especially with
``freeze_after``, which is what actually collapses the dirty set (a converged
fragment otherwise keeps jittering across the pixel-rounding boundary and
keeps its windows dirty forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import knobs
from ..layout.geometry import Layout
from ..layout.rasterize import rasterize
from ..litho.simulator import LithoSimulator
from ..pipeline import ExecutionConfig, IncrementalCounters, InferencePipeline, RetryPolicy
from .epe import EPEStatistics, measure_layout_epe
from .fragments import FragmentedShape, FragmentTileIndex, build_mask, fragment_layout
from .sraf import insert_srafs, sraf_rects_pixels

__all__ = [
    "INCREMENTAL_ENV",
    "MaskHistory",
    "OPCConfig",
    "OPCResult",
    "OPCEngine",
    "resolve_incremental",
    "rule_based_retarget",
]

#: Environment variable consulted when ``OPCConfig.incremental`` is ``None``.
INCREMENTAL_ENV = "REPRO_INCREMENTAL_OPC"


# repro: ok(CONFIG001, retained single-knob resolver with a pinned public contract; ExecutionConfig.resolve() is the config-document route)
def resolve_incremental(incremental: bool | None = None) -> bool:
    """Resolve the incremental knob: argument > ``REPRO_INCREMENTAL_OPC`` > on.

    Incremental re-simulation defaults to **on**: the hybrid cost model makes
    it no slower than the plain loop when every window is dirty, and strictly
    cheaper once the dirty set shrinks (equivalence pinned by
    ``tests/opc/test_incremental.py``).
    """
    if incremental is not None:
        return bool(incremental)
    value = knobs.read_flag(INCREMENTAL_ENV)
    return True if value is None else value


@dataclass(frozen=True)
class OPCConfig:
    """Tuning knobs of the OPC engine."""

    iterations: int = 12
    gain: float = 0.5                 # fraction of the measured EPE corrected per iteration
    max_step: float = 3.0             # max fragment movement per iteration (pixels)
    max_offset: float = 12.0          # max total fragment offset (pixels)
    max_fragment_length: int = 32     # pixels
    use_srafs: bool = True
    epe_search_range: int = 24        # pixels
    record_history: bool = True
    #: Execution document for the simulation pipeline
    #: (:class:`repro.pipeline.ExecutionConfig`): workers, streaming, BLAS
    #: threads, result cache, supervision, incremental re-simulation — one
    #: config instead of six mirrored fields.  The per-knob fields below are
    #: a deprecated shim layered on top of it (an explicitly-set per-knob
    #: field overrides the embedded config); see :meth:`execution_config`.
    execution: "ExecutionConfig | None" = None
    num_workers: int | None = None    # worker pool for the simulation pipeline
    #: BLAS thread cap for the simulation pipeline (see
    #: :func:`repro.nn.backends.resolve_blas_threads`): ``None`` defers to
    #: ``REPRO_BLAS_THREADS``, then 1-per-worker when pooled so pool workers
    #: and BLAS threads don't oversubscribe the cores.
    blas_threads: int | None = None
    #: Persistent shared-memory ring for the simulation pipeline.  OPC is the
    #: canonical streaming workload — the iterate-simulate-measure loop calls
    #: the simulator once per iteration on same-shaped masks, so the ring's
    #: segments are mapped once and reused for the whole run.  ``None``
    #: defers to ``REPRO_STREAMING`` (then on).
    streaming: bool | None = None
    #: Incremental re-simulation: track dirty tile windows per iteration and
    #: re-simulate only those (:meth:`InferencePipeline.predict_patched`),
    #: with a native whole-mask fallback when the dirty set is large.  The
    #: result matches the plain loop (same ``final_mask``, same
    #: ``epe_history``).  ``None`` defers to ``REPRO_INCREMENTAL_OPC``
    #: (then on); ``False`` restores the always-full simulation loop.
    incremental: bool | None = None
    #: Content-hash result cache on the simulation pipeline
    #: (:class:`repro.pipeline.MaskResultCache`): exact mask repeats —
    #: convergence re-checks, the Figure 8 golden snapshot sims — are free.
    #: ``True`` enables the default byte budget, an ``int`` sets the budget,
    #: ``None`` defers to ``REPRO_RESULT_CACHE`` (then off).
    result_cache: bool | int | None = None
    #: Supervision policy for the pooled simulation dispatch
    #: (:class:`repro.pipeline.RetryPolicy`): per-chunk deadline, chunk retry
    #: budget, and graceful in-process degradation — a long OPC run survives a
    #: dying worker instead of losing the whole iteration history.  ``None``
    #: defers to ``REPRO_WORKER_TIMEOUT`` / ``REPRO_WORKER_RETRIES`` /
    #: ``REPRO_DEGRADE`` (then the policy defaults).
    retry: "RetryPolicy | None" = None
    #: Freeze a fragment once |EPE| stayed within ``freeze_tolerance`` for
    #: this many consecutive iterations: it stops being measured and never
    #: moves again, shrinking both the EPE walk and the dirty-tile set as the
    #: mask converges.  Default ``None`` (off) — freezing changes the
    #: correction dynamics slightly, so the Figure 8 numbers are produced
    #: with the unfrozen loop.
    freeze_after: int | None = None
    #: |EPE| tolerance (in pixels) a fragment must hold to count as stable
    #: for ``freeze_after``.
    freeze_tolerance: float = 1.0

    def execution_config(self) -> ExecutionConfig:
        """Execution document for the simulation pipeline.

        Starts from :attr:`execution` (or an empty config) and overlays the
        legacy per-knob mirror fields — any that were explicitly set win, so
        old-style ``OPCConfig(num_workers=4)`` call sites keep working while
        new code sets ``execution=ExecutionConfig(...)`` directly.
        """
        base = self.execution if self.execution is not None else ExecutionConfig()
        return base.merged(
            num_workers=self.num_workers,
            blas_threads=self.blas_threads,
            streaming=self.streaming,
            incremental=self.incremental,
            result_cache=self.result_cache,
            retry=self.retry,
        )


class MaskHistory:
    """List-like storage of binary mask snapshots, bit-packed via ``np.packbits``.

    The OPC loop records one full mask per iteration; stored as ``float64``
    images a 24-iteration 128 px run holds ~3.3 MB of redundant 0.0/1.0
    planes.  Binary snapshots are packed to one bit per pixel (64x smaller)
    and lazily unpacked — ``history[i]``, slices and iteration all return the
    original ``float64`` arrays bit-for-bit.  Non-binary snapshots (never
    produced by :func:`~repro.opc.fragments.build_mask`, but accepted for
    robustness) are kept raw.
    """

    def __init__(self, masks=None) -> None:
        self._entries: list[tuple] = []
        for mask in masks or []:
            self.append(mask)

    def append(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask)
        bits = mask != 0
        if np.array_equal(bits.astype(mask.dtype), mask):
            self._entries.append(("packed", np.packbits(bits, axis=None), mask.shape, mask.dtype))
        else:
            self._entries.append(("raw", mask.copy()))

    def _unpack(self, entry: tuple) -> np.ndarray:
        if entry[0] == "raw":
            return entry[1].copy()
        _, packed, shape, dtype = entry
        count = int(np.prod(shape))
        return np.unpackbits(packed, count=count).reshape(shape).astype(dtype)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._unpack(entry) for entry in self._entries[index]]
        return self._unpack(self._entries[index])

    def __iter__(self):
        return (self._unpack(entry) for entry in self._entries)

    def __eq__(self, other) -> bool:
        if isinstance(other, MaskHistory):
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(np.array_equal(mine, theirs) for mine, theirs in zip(self, other))

    @property
    def nbytes(self) -> int:
        """Bytes held by the stored (packed) snapshots."""
        return sum(
            entry[1].nbytes for entry in self._entries
        )


@dataclass
class OPCResult:
    """Outcome of an OPC run."""

    final_mask: np.ndarray
    target: np.ndarray
    mask_history: MaskHistory = field(default_factory=MaskHistory)
    epe_history: list[EPEStatistics] = field(default_factory=list)
    #: Work ledger of the incremental plan (``None`` when it was disabled).
    counters: IncrementalCounters | None = None
    #: Tile-simulation equivalents spent per iteration (full refresh counts
    #: as ``n_tiles``); empty when the incremental plan was disabled.
    dirty_history: list[int] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.epe_history)

    @property
    def converged_epe_nm(self) -> float:
        return self.epe_history[-1].mean_abs_nm if self.epe_history else float("nan")


def rule_based_retarget(layout: Layout, bias: float = 20.0) -> Layout:
    """Cheap one-shot OPC: grow every shape by a constant bias (nm per side).

    Used by the dataset builders when a full iterative OPC run per tile would
    be too slow; the bias value approximates the average correction the
    iterative engine converges to for the default optical settings.
    """
    retargeted = Layout(bounds=layout.bounds, name=layout.name + "-retarget")
    for rect in layout.shapes:
        grown = rect.expanded(bias)
        clipped = grown.clipped_to(layout.bounds)
        if clipped is not None:
            retargeted.add(clipped)
    return retargeted


class OPCEngine:
    """Edge-based OPC driven by the golden lithography simulator.

    Simulation runs through the batch-first
    :class:`~repro.pipeline.InferencePipeline` — the same execution path every
    other inference consumer uses (the batched single-FFT aerial path with
    cached SOCS transfer functions lives in :mod:`repro.litho.hopkins` and is
    shared by all callers).  With ``config.incremental`` (default on) the loop
    uses the pipeline's patched plan: only the tile windows a move step
    actually changed are re-simulated (see the module docstring), with
    counters surfaced on :class:`OPCResult`.
    """

    def __init__(self, simulator: LithoSimulator, config: OPCConfig | None = None) -> None:
        self.simulator = simulator
        self.config = config or OPCConfig()
        self.pipeline = InferencePipeline(simulator, config=self.config.execution_config())

    def close(self) -> None:
        """Release the simulation pipeline's worker pool (no-op when serial)."""
        self.pipeline.close()

    def __enter__(self) -> "OPCEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def correct(self, layout: Layout) -> OPCResult:
        """Run iterative OPC on a layout and return the corrected mask.

        The target (desired wafer contour) is the drawn layout itself,
        rasterized at the simulator's pixel size.  ``final_mask`` always
        reflects the *post-update* fragment positions — with ``iterations=0``
        that is the uncorrected rasterized target (plus SRAFs).
        """
        config = self.config
        pixel_size = self.simulator.pixel_size
        image_size = int(round(layout.bounds.width / pixel_size))
        target = rasterize(layout, pixel_size=pixel_size, image_size=image_size)

        shapes = fragment_layout(layout, pixel_size, config.max_fragment_length)
        sraf_boxes = (
            sraf_rects_pixels(insert_srafs(layout), pixel_size) if config.use_srafs else []
        )

        state = None
        index = None
        if self.pipeline.config.incremental:
            state = self.pipeline.incremental_state((image_size, image_size))
            if state.n_tiles > 1:
                index = FragmentTileIndex(shapes, state.specs, image_size, config.max_offset)

        result = OPCResult(
            final_mask=target.copy(),
            target=target,
            counters=state.counters if state is not None else None,
        )
        candidates = None
        for _ in range(config.iterations):
            mask = build_mask(shapes, image_size, extra_rects=sraf_boxes)
            if state is not None:
                spent = state.counters.tile_equivalents(state.n_tiles)
                resist = self.pipeline.predict_patched(mask, state, candidates=candidates)
                result.dirty_history.append(
                    state.counters.tile_equivalents(state.n_tiles) - spent
                )
            else:
                resist = self.pipeline.predict(mask)
            stats = measure_layout_epe(
                resist, shapes, pixel_size, config.epe_search_range, skip_frozen=True
            )
            if config.record_history:
                result.mask_history.append(mask)
            result.epe_history.append(stats)
            moved = self._apply_moves(shapes, stats)
            candidates = index.tiles_for(moved) if index is not None else None

        # Build the mask with the final fragment positions (post last update).
        result.final_mask = build_mask(shapes, image_size, extra_rects=sraf_boxes)
        if config.record_history:
            result.mask_history.append(result.final_mask)
        return result

    # ------------------------------------------------------------------ #
    def _apply_moves(
        self, shapes: list[FragmentedShape], stats: EPEStatistics
    ) -> list[tuple[int, int]]:
        """Move every active fragment against its measured EPE.

        Consumes ``stats.values`` in the same deterministic (shape, fragment)
        scan order :func:`~repro.opc.epe.measure_layout_epe` produced them —
        one EPE walk per iteration serves both the statistics and the move
        step.  Returns the ``(shape, fragment)`` ids whose *rounded* offset
        changed (the only moves that can repaint mask pixels), which feed the
        fragment->tile index for dirty-window candidates.  With
        ``freeze_after`` set, fragments whose |EPE| held within tolerance for
        that many consecutive iterations are frozen here.
        """
        config = self.config
        values = iter(stats.values.tolist())
        moved: list[tuple[int, int]] = []
        for si, shape in enumerate(shapes):
            for fi, fragment in enumerate(shape.fragments):
                if fragment.frozen:
                    continue
                epe = next(values)
                if config.freeze_after is not None:
                    if abs(epe) <= config.freeze_tolerance:
                        fragment.stable_iters += 1
                        if fragment.stable_iters >= config.freeze_after:
                            fragment.frozen = True
                            continue
                    else:
                        fragment.stable_iters = 0
                if epe <= -config.epe_search_range:
                    # The feature did not print at all at this control point.
                    # Grow gently instead of jumping by the (saturated) error,
                    # which would overshoot and oscillate with a binary resist.
                    step = 1.0
                else:
                    step = float(np.clip(-config.gain * epe, -config.max_step, config.max_step))
                # Damp oscillation: if the correction reversed direction since
                # the previous iteration, take only half a step.
                if step * fragment.last_step < 0.0:
                    step *= 0.5
                fragment.last_step = step
                previous_pixels = int(round(fragment.offset))
                fragment.offset = float(
                    np.clip(fragment.offset + step, -config.max_offset, config.max_offset)
                )
                if int(round(fragment.offset)) != previous_pixels:
                    moved.append((si, fi))
        return moved
