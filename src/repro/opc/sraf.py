"""Rule-based sub-resolution assist feature (SRAF) insertion.

SRAFs are narrow bars placed next to isolated feature edges.  They are below
the resolution limit, so they do not print themselves, but they change the
diffraction environment of the main feature and improve its process window.
The paper's benchmark masks contain SRAFs (DAMO splits them into a dedicated
colour channel); this module adds them with simple distance rules so the
synthetic datasets exercise the same mask content.
"""

from __future__ import annotations

import numpy as np

from ..layout.geometry import Layout, Rect

__all__ = ["insert_srafs", "sraf_rects_pixels"]


def insert_srafs(
    layout: Layout,
    sraf_width: float = 24.0,
    sraf_distance: float = 90.0,
    sraf_length_margin: float = 10.0,
    min_clearance: float = 40.0,
) -> list[Rect]:
    """Compute SRAF bars for a layout (in layout/nm coordinates).

    A bar is placed parallel to each edge of each shape at ``sraf_distance``
    from the edge, provided the bar does not come closer than
    ``min_clearance`` to any other shape and stays inside the layout bounds.
    """
    srafs: list[Rect] = []
    for rect in layout.shapes:
        length_x = rect.width - 2.0 * sraf_length_margin
        length_y = rect.height - 2.0 * sraf_length_margin
        candidates = []
        if length_x > sraf_width:
            x0 = rect.x0 + sraf_length_margin
            x1 = rect.x1 - sraf_length_margin
            candidates.append(Rect(x0, rect.y0 - sraf_distance - sraf_width, x1, rect.y0 - sraf_distance))
            candidates.append(Rect(x0, rect.y1 + sraf_distance, x1, rect.y1 + sraf_distance + sraf_width))
        if length_y > sraf_width:
            y0 = rect.y0 + sraf_length_margin
            y1 = rect.y1 - sraf_length_margin
            candidates.append(Rect(rect.x0 - sraf_distance - sraf_width, y0, rect.x0 - sraf_distance, y1))
            candidates.append(Rect(rect.x1 + sraf_distance, y0, rect.x1 + sraf_distance + sraf_width, y1))

        for candidate in candidates:
            if not layout.bounds.contains_rect(candidate):
                continue
            grown = candidate.expanded(min_clearance)
            if any(grown.intersects(other) for other in layout.shapes):
                continue
            if any(grown.intersects(existing) for existing in srafs):
                continue
            srafs.append(candidate)
    return srafs


def sraf_rects_pixels(srafs: list[Rect], pixel_size: float) -> list[tuple[int, int, int, int]]:
    """Convert SRAF rectangles to integer pixel boxes (row0, col0, row1, col1)."""
    boxes = []
    for rect in srafs:
        col0 = int(round(rect.x0 / pixel_size))
        col1 = max(col0 + 1, int(round(rect.x1 / pixel_size)))
        row0 = int(round(rect.y0 / pixel_size))
        row1 = max(row0 + 1, int(round(rect.y1 / pixel_size)))
        boxes.append((row0, col0, row1, col1))
    return boxes
