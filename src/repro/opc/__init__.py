"""Edge-based OPC engine, SRAF insertion and EPE metrics."""

from .engine import OPCConfig, OPCEngine, OPCResult, rule_based_retarget
from .epe import EPEStatistics, measure_fragment_epe, measure_layout_epe
from .fragments import EdgeFragment, FragmentedShape, build_mask, fragment_layout
from .sraf import insert_srafs, sraf_rects_pixels

__all__ = [
    "OPCConfig",
    "OPCEngine",
    "OPCResult",
    "rule_based_retarget",
    "EPEStatistics",
    "measure_fragment_epe",
    "measure_layout_epe",
    "EdgeFragment",
    "FragmentedShape",
    "build_mask",
    "fragment_layout",
    "insert_srafs",
    "sraf_rects_pixels",
]
