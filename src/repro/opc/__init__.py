"""Edge-based OPC engine, SRAF insertion and EPE metrics."""

from .engine import (
    INCREMENTAL_ENV,
    MaskHistory,
    OPCConfig,
    OPCEngine,
    OPCResult,
    resolve_incremental,
    rule_based_retarget,
)
from .epe import EPEStatistics, measure_fragment_epe, measure_layout_epe
from .fragments import (
    EdgeFragment,
    FragmentedShape,
    FragmentTileIndex,
    build_mask,
    fragment_footprint,
    fragment_layout,
)
from .sraf import insert_srafs, sraf_rects_pixels

__all__ = [
    "INCREMENTAL_ENV",
    "MaskHistory",
    "OPCConfig",
    "OPCEngine",
    "OPCResult",
    "resolve_incremental",
    "rule_based_retarget",
    "EPEStatistics",
    "measure_fragment_epe",
    "measure_layout_epe",
    "EdgeFragment",
    "FragmentedShape",
    "FragmentTileIndex",
    "build_mask",
    "fragment_footprint",
    "fragment_layout",
    "insert_srafs",
    "sraf_rects_pixels",
]
