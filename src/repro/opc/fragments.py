"""Edge fragmentation for edge-based OPC.

Every target rectangle is decomposed into edge *fragments*: sub-segments of
its four edges, each carrying a movable offset (in pixels, positive = outward
from the shape).  The OPC engine measures the edge placement error at each
fragment's control point and moves the fragment to compensate — the classical
edge-based OPC formulation used by the flows that produced the paper's
training data (MOSAIC, Calibre).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..layout.geometry import Layout, Rect
from ..layout.tiling import TileSpec

__all__ = [
    "EdgeFragment",
    "FragmentedShape",
    "FragmentTileIndex",
    "fragment_layout",
    "fragment_footprint",
    "build_mask",
]

# Edge identifiers: which side of the rectangle the fragment belongs to.
LEFT, RIGHT, BOTTOM, TOP = "left", "right", "bottom", "top"


@dataclass
class EdgeFragment:
    """A movable fragment of one rectangle edge (pixel coordinates).

    ``span`` is the (start, end) pixel range along the edge direction;
    ``position`` is the fixed pixel coordinate of the drawn edge;
    ``offset`` is the current OPC correction in pixels (positive = outward).
    """

    side: str
    span: tuple[int, int]
    position: int
    offset: float = 0.0
    last_step: float = 0.0
    #: Converged-and-frozen flag (``OPCConfig.freeze_after``): a frozen
    #: fragment is skipped by EPE measurement and never moves again.
    frozen: bool = False
    #: Consecutive iterations with |EPE| inside the freeze tolerance.
    stable_iters: int = 0

    @property
    def control_point(self) -> tuple[int, int]:
        """(row, col) of the control point at the fragment midpoint on the drawn edge."""
        mid = (self.span[0] + self.span[1]) // 2
        if self.side in (LEFT, RIGHT):
            return (mid, self.position)
        return (self.position, mid)

    @property
    def outward_normal(self) -> tuple[int, int]:
        """(drow, dcol) unit step pointing out of the shape."""
        return {
            LEFT: (0, -1),
            RIGHT: (0, 1),
            BOTTOM: (-1, 0),
            TOP: (1, 0),
        }[self.side]


@dataclass
class FragmentedShape:
    """A target rectangle together with its movable edge fragments."""

    rect_pixels: tuple[int, int, int, int]   # (row0, col0, row1, col1), exclusive end
    fragments: list[EdgeFragment] = field(default_factory=list)


def _fragment_spans(start: int, end: int, max_length: int) -> list[tuple[int, int]]:
    """Split ``[start, end)`` into spans no longer than ``max_length``."""
    length = end - start
    if length <= 0:
        return []
    n = max(1, int(np.ceil(length / max_length)))
    edges = np.linspace(start, end, n + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]


def fragment_layout(
    layout: Layout, pixel_size: float, max_fragment_length: int = 32
) -> list[FragmentedShape]:
    """Fragment every rectangle of a layout into movable edges (pixel space)."""
    shapes: list[FragmentedShape] = []
    for rect in layout.shapes:
        col0 = int(round(rect.x0 / pixel_size))
        col1 = int(round(rect.x1 / pixel_size))
        row0 = int(round(rect.y0 / pixel_size))
        row1 = int(round(rect.y1 / pixel_size))
        if col1 <= col0 or row1 <= row0:
            continue
        fragments: list[EdgeFragment] = []
        for span in _fragment_spans(row0, row1, max_fragment_length):
            fragments.append(EdgeFragment(LEFT, span, col0))
            fragments.append(EdgeFragment(RIGHT, span, col1 - 1))
        for span in _fragment_spans(col0, col1, max_fragment_length):
            fragments.append(EdgeFragment(BOTTOM, span, row0))
            fragments.append(EdgeFragment(TOP, span, row1 - 1))
        shapes.append(FragmentedShape((row0, col0, row1, col1), fragments))
    return shapes


def fragment_footprint(
    fragment: EdgeFragment, max_offset: float
) -> tuple[int, int, int, int]:
    """Conservative pixel bound of everything a fragment can ever paint.

    Returns ``(row0, col0, row1, col1)`` (exclusive ends, unclipped): the
    fragment's span along its edge crossed with ``position +- reach`` across
    it, where ``reach`` covers the largest grow/trim strip any legal offset
    (``|offset| <= max_offset``) can produce in :func:`build_mask`.  Static
    per fragment — offsets move the painted strip only *within* this bound,
    which is what makes the fragment->tile index buildable once per OPC run.
    """
    reach = int(np.ceil(max_offset)) + 1
    lo, hi = fragment.span
    if fragment.side in (LEFT, RIGHT):
        return (lo, fragment.position - reach, hi, fragment.position + reach + 1)
    return (fragment.position - reach, lo, fragment.position + reach + 1, hi)


class FragmentTileIndex:
    """Static fragment -> tile-window index for dirty-tile candidates.

    Maps every ``(shape_index, fragment_index)`` to the tile windows of the
    half-overlapping grid its :func:`fragment_footprint` intersects.  After an
    OPC move step, the union over the *moved* fragments is a sound candidate
    set for the dirty windows: a pixel outside every moved fragment's
    footprint is painted identically by :func:`build_mask`, so windows
    outside the union cannot have changed.  The engine still content-hashes
    the candidates, so an over-approximation costs hashing, never correctness.
    """

    def __init__(
        self,
        shapes: list[FragmentedShape],
        specs: list[TileSpec],
        image_size: int,
        max_offset: float,
    ) -> None:
        self._tiles: dict[tuple[int, int], tuple[int, ...]] = {}
        for si, shape in enumerate(shapes):
            for fi, fragment in enumerate(shape.fragments):
                row0, col0, row1, col1 = fragment_footprint(fragment, max_offset)
                row0, col0 = max(row0, 0), max(col0, 0)
                row1, col1 = min(row1, image_size), min(col1, image_size)
                self._tiles[(si, fi)] = tuple(
                    ti
                    for ti, s in enumerate(specs)
                    if row0 < s.y0 + s.size and row1 > s.y0 and col0 < s.x0 + s.size and col1 > s.x0
                )

    def tiles_for(self, moved: list[tuple[int, int]]) -> list[int]:
        """Sorted union of candidate tile indices for the moved fragments."""
        out: set[int] = set()
        for key in moved:
            out.update(self._tiles.get(key, ()))
        return sorted(out)


def build_mask(
    shapes: list[FragmentedShape],
    image_size: int,
    extra_rects: list[tuple[int, int, int, int]] | None = None,
) -> np.ndarray:
    """Rasterize fragmented shapes (with their current offsets) into a mask image.

    The drawn rectangle is filled first; each fragment then grows (positive
    offset) or trims (negative offset) a strip along its edge span.
    ``extra_rects`` (row0, col0, row1, col1) are painted afterwards — used for
    SRAF bars, which are not OPC-corrected.
    """
    mask = np.zeros((image_size, image_size), dtype=np.float64)
    for shape in shapes:
        row0, col0, row1, col1 = shape.rect_pixels
        mask[max(row0, 0) : min(row1, image_size), max(col0, 0) : min(col1, image_size)] = 1.0

    # Apply fragment growth, then trims (trims win where they overlap growth of
    # the same shape, matching how OPC biases are resolved on manufacturing grids).
    for grow in (True, False):
        for shape in shapes:
            row0, col0, row1, col1 = shape.rect_pixels
            for fragment in shape.fragments:
                offset = int(round(fragment.offset))
                if offset == 0 or (offset > 0) != grow:
                    continue
                lo, hi = fragment.span
                lo, hi = max(lo, 0), min(hi, image_size)
                if hi <= lo:
                    continue
                value = 1.0 if grow else 0.0
                magnitude = abs(offset)
                if fragment.side == LEFT:
                    a = col0 - magnitude if grow else col0
                    b = col0 if grow else col0 + magnitude
                    mask[lo:hi, max(a, 0) : min(b, image_size)] = value
                elif fragment.side == RIGHT:
                    a = col1 if grow else col1 - magnitude
                    b = col1 + magnitude if grow else col1
                    mask[lo:hi, max(a, 0) : min(b, image_size)] = value
                elif fragment.side == BOTTOM:
                    a = row0 - magnitude if grow else row0
                    b = row0 if grow else row0 + magnitude
                    mask[max(a, 0) : min(b, image_size), lo:hi] = value
                elif fragment.side == TOP:
                    a = row1 if grow else row1 - magnitude
                    b = row1 + magnitude if grow else row1
                    mask[max(a, 0) : min(b, image_size), lo:hi] = value

    if extra_rects:
        for row0, col0, row1, col1 in extra_rects:
            mask[max(row0, 0) : min(row1, image_size), max(col0, 0) : min(col1, image_size)] = 1.0
    return mask
