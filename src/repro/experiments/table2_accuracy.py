"""Experiment E2 — regenerate Table 2 (accuracy vs. UNet and DAMO-DLS).

For every benchmark/resolution row of Table 2, train UNet, DAMO-DLS and DOINN
with the same recipe and report mPA / mIOU on the held-out tiles.  As in the
paper, DAMO-DLS is only evaluated at the low resolution (the published model
"only supports 1000x1000 inputs").
"""

from __future__ import annotations

from ..evaluation.evaluator import evaluate_model
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["TABLE2_ROWS", "run_table2", "format_table2"]

# (benchmark key, resolution, paper row label)
TABLE2_ROWS = [
    ("ispd2019", "L", "ISPD-2019 (L)"),
    ("ispd2019", "H", "ISPD-2019 (H)"),
    ("iccad2013", "L", "ICCAD-2013 (L)"),
    ("iccad2013", "H", "ICCAD-2013 (H)"),
    ("n14", "L", "N14"),
]

_MODELS = ["unet", "damo-dls", "doinn"]


def run_table2(
    harness: Harness | None = None,
    rows: list[tuple[str, str, str]] | None = None,
    models: list[str] | None = None,
) -> list[dict]:
    """Train and evaluate every (row, model) combination of Table 2."""
    harness = harness or Harness()
    rows = rows or TABLE2_ROWS
    models = models or _MODELS

    results: list[dict] = []
    for benchmark, resolution, label in rows:
        data = harness.benchmark(benchmark, resolution)
        row: dict = {"benchmark": label, "resolution": resolution}
        for model_name in models:
            if model_name == "damo-dls" and resolution.upper() == "H":
                # Matches the "-" entries of the published table.
                row["damo-dls"] = None
                continue
            model, history = harness.trained_model(model_name, benchmark, resolution)
            score = evaluate_model(harness.model_pipeline(model), data.test)
            mpa, miou = score.as_row()
            row[model_name] = {
                "mpa": mpa,
                "miou": miou,
                "params": model.num_parameters(),
                "train_time_s": history["wall_time"],
            }
        results.append(row)
    return results


def format_table2(results: list[dict]) -> str:
    headers = ["Benchmark", "UNet mPA", "UNet mIOU", "DAMO mPA", "DAMO mIOU", "Ours mPA", "Ours mIOU"]
    body = []
    for row in results:
        def cell(model, key):
            entry = row.get(model)
            return f"{entry[key]:.2f}" if entry else "-"

        body.append(
            [
                row["benchmark"],
                cell("unet", "mpa"),
                cell("unet", "miou"),
                cell("damo-dls", "mpa"),
                cell("damo-dls", "miou"),
                cell("doinn", "mpa"),
                cell("doinn", "miou"),
            ]
        )
    return format_table(headers, body, title="Table 2: Result Comparison with State-of-the-Art (%)")
