"""Experiment E3 — regenerate Table 3 (ablation study).

Four DOINN variants are trained on the ICCAD-2013 (L) benchmark, enabling the
components one at a time exactly as in the paper:

1. GP only (Fourier unit + upsampling backbone),
2. GP + IR refinement convolutions,
3. GP + IR + convolutional local perception,
4. full DOINN with the skip ("ByPass") concatenations.
"""

from __future__ import annotations

from ..core.doinn import DOINN, DOINNConfig
from ..evaluation.evaluator import evaluate_model
from ..training.trainer import Trainer
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["run_table3", "format_table3"]

_ROW_FLAGS = {
    1: {"GP": True, "IR": False, "LP": False, "ByPass": False},
    2: {"GP": True, "IR": True, "LP": False, "ByPass": False},
    3: {"GP": True, "IR": True, "LP": True, "ByPass": False},
    4: {"GP": True, "IR": True, "LP": True, "ByPass": True},
}


def run_table3(harness: Harness | None = None, benchmark: str = "iccad2013") -> list[dict]:
    """Train the four ablation variants and score them."""
    harness = harness or Harness()
    data = harness.benchmark(benchmark, "L")
    base = DOINNConfig.scaled(data.train.image_size)
    config = harness.training_config("L")

    rows: list[dict] = []
    for row_id in (1, 2, 3, 4):
        model = DOINN(base.ablation(row_id))
        trainer = Trainer(model, config)
        history = trainer.fit(data.train)
        score = evaluate_model(harness.model_pipeline(model), data.test)
        mpa, miou = score.as_row()
        rows.append(
            {
                "id": row_id,
                **_ROW_FLAGS[row_id],
                "mpa": mpa,
                "miou": miou,
                "params": model.num_parameters(),
                "final_loss": history.final_loss,
            }
        )
    return rows


def format_table3(rows: list[dict]) -> str:
    def tick(flag: bool) -> str:
        return "x" if flag else ""

    return format_table(
        ["ID", "GP", "IR", "LP", "ByPass", "mPA (%)", "mIOU (%)", "Params"],
        [
            [r["id"], tick(r["GP"]), tick(r["IR"]), tick(r["LP"]), tick(r["ByPass"]),
             f"{r['mpa']:.2f}", f"{r['miou']:.2f}", r["params"]]
            for r in rows
        ],
        title="Table 3: Ablation Study (ICCAD-2013 (L))",
    )
