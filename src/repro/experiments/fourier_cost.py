"""Experiment E10 — the optimized Fourier unit vs. a baseline FNO stack.

Section 3.1.1 argues the single optimized Fourier unit saves roughly half the
FFT work of a baseline Fourier layer operating on lifted (multi-channel)
features, and avoids repeating that work across stacked layers.  This harness
times both designs on identically sized inputs.
"""

from __future__ import annotations

import time

import numpy as np

from ..nn import FNOFourierLayer, OptimizedFourierUnit, Tensor, no_grad
from ..utils.tables import format_table

__all__ = ["run_fourier_cost", "format_fourier_cost"]


def _time(fn, repeats: int) -> float:
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def run_fourier_cost(
    image_size: int = 256,
    channels: int = 16,
    modes: int = 16,
    num_fno_layers: int = 4,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time the optimized Fourier unit against stacked baseline Fourier layers."""
    rng = np.random.default_rng(seed)
    x_single = Tensor(rng.random((1, 1, image_size, image_size)))
    x_lifted = Tensor(rng.random((1, channels, image_size, image_size)))

    unit = OptimizedFourierUnit(1, channels, modes=modes, rng=rng)
    fno_layer = FNOFourierLayer(channels, modes=modes, rng=rng)

    with no_grad():
        unit_time = _time(lambda: unit(x_single), repeats)
        layer_time = _time(lambda: fno_layer(x_lifted), repeats)

    return {
        "image_size": image_size,
        "channels": channels,
        "modes": modes,
        "optimized_unit_s": unit_time,
        "fno_layer_s": layer_time,
        "fno_stack_s": layer_time * num_fno_layers,
        "single_layer_speedup": layer_time / unit_time,
        "stack_speedup": (layer_time * num_fno_layers) / unit_time,
    }


def format_fourier_cost(result: dict) -> str:
    table = format_table(
        ["Design", "Seconds per forward"],
        [
            ["Optimized Fourier unit (DOINN GP)", f"{result['optimized_unit_s'] * 1000:.1f} ms"],
            ["Baseline FNO Fourier layer", f"{result['fno_layer_s'] * 1000:.1f} ms"],
            ["Baseline FNO stack (4 layers)", f"{result['fno_stack_s'] * 1000:.1f} ms"],
        ],
        title=f"Fourier-unit cost at {result['image_size']}^2, {result['channels']} channels",
    )
    extras = (
        f"\nSpeedup vs one baseline layer: {result['single_layer_speedup']:.2f}x"
        f"\nSpeedup vs a 4-layer baseline FNO: {result['stack_speedup']:.2f}x"
    )
    return table + extras
