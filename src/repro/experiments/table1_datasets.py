"""Experiment E1 — regenerate Table 1 (details of the dataset).

For every benchmark family the synthetic dataset builders are run and the same
columns the paper reports are collected: number of training tiles, number of
test tiles, tile size and the lithography engine that produced the labels.
"""

from __future__ import annotations

from ..data.benchmarks import build_large_tile_benchmark
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["run_table1", "format_table1"]

_ROWS = [("iccad2013", "ICCAD-2013"), ("ispd2019", "ISPD-2019"), ("n14", "N14")]


def run_table1(harness: Harness | None = None) -> list[dict]:
    """Build every dataset and return one row per Table 1 entry."""
    harness = harness or Harness()
    rows: list[dict] = []
    for key, label in _ROWS:
        data = harness.benchmark(key, "L")
        rows.append(
            {
                "dataset": label,
                "train": len(data.train),
                "test": len(data.test),
                "tile_um2": round(data.train.tile_area_um2, 2),
                "litho_engine": data.litho_engine,
                "density": round(float(data.train.masks.mean()), 3),
            }
        )
        if key == "ispd2019":
            large = build_large_tile_benchmark(
                harness.benchmark_config("ispd2019", "L"),
                harness.simulator(harness.profile.low_res_pixel),
                num_tiles=harness.profile.large_tile_count,
                scale=harness.profile.large_tile_scale,
            )
            rows.append(
                {
                    "dataset": "ISPD-2019-LT",
                    "train": 0,
                    "test": len(large),
                    "tile_um2": round(large.tile_area_um2, 2),
                    "litho_engine": data.litho_engine,
                    "density": round(float(large.masks.mean()), 3),
                }
            )
    return rows


def format_table1(rows: list[dict]) -> str:
    return format_table(
        ["Dataset", "Train", "Test", "Tile Size (um^2)", "Litho Engine", "Mask density"],
        [
            [r["dataset"], r["train"], r["test"], r["tile_um2"], r["litho_engine"], r["density"]]
            for r in rows
        ],
        title="Table 1: Details of the Dataset (synthetic reproduction)",
    )
