"""Experiment E9 — regenerate Table 8 (training configurations).

Prints the published training recipe next to the scaled recipe actually used
by the reduced-size experiments of this reproduction.
"""

from __future__ import annotations

from ..training.config import TrainingConfig
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["run_table8", "format_table8"]


def run_table8(harness: Harness | None = None) -> dict:
    harness = harness or Harness()
    return {
        "paper": TrainingConfig.paper().as_rows(),
        "used_low": harness.training_config("L").as_rows(),
        "used_high": harness.training_config("H").as_rows(),
        "profile": harness.profile.name,
    }


def format_table8(result: dict) -> str:
    paper = dict(result["paper"])
    used = dict(result["used_low"])
    rows = [[key, paper[key], used.get(key, "-")] for key in paper]
    return format_table(
        ["Setting", "Paper (Table 8)", f"This run ({result['profile']} profile, L rows)"],
        rows,
        title="Table 8: Training configurations",
    )
