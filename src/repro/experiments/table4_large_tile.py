"""Experiment E4 — regenerate Table 4 and Figure 9 (large-tile simulation).

A DOINN trained on small tiles is applied to tiles ``scale`` times larger,
once by feeding the whole tile through the network ("DOINN" row — quality
degrades) and once with the half-overlapping large-tile scheme of §3.2
("DOINN-LT" row — quality restored).  The predictions are also saved to an
``.npz`` archive so the Figure 9 visual comparison can be inspected.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from ..data.benchmarks import build_large_tile_benchmark
from ..evaluation.evaluator import evaluate_predictions
from ..pipeline import ExecutionConfig
from ..utils.tables import format_table
from .harness import Harness, artifacts_dir

__all__ = ["run_table4", "format_table4"]


def run_table4(
    harness: Harness | None = None,
    benchmark: str = "ispd2019",
    save_figure9: bool = True,
    config: ExecutionConfig | None = None,
    **legacy,
) -> dict:
    """Evaluate naive DOINN vs. the large-tile scheme on scaled-up tiles.

    ``config`` carries the execution knobs into the shared pipeline:
    ``num_workers`` shards the tile batches of both rows across a worker
    pool; ``streaming`` keeps the pool's shared-memory segments alive across
    the two rows and ``shard_tiles`` (default: on when pooled) lets the
    "DOINN-LT" row shard the tiles of each large mask across all workers.
    ``result_cache`` memoises per-mask predictions by content hash (useful
    when the same large masks are replayed) and ``retry`` sets the pool's
    supervision policy (chunk deadline / retries / degradation) — long
    large-tile sweeps survive dying workers instead of losing the whole run.
    The predictions are bit-identical to the serial path in every mode.
    Per-knob keyword arguments are deprecated.
    """
    if legacy:
        warnings.warn(
            f"run_table4({', '.join(sorted(legacy))}=...) keyword knobs are "
            "deprecated; pass config=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    pipeline_config = (config if config is not None else ExecutionConfig()).merged(**legacy)
    harness = harness or Harness()
    profile = harness.profile

    model, _ = harness.trained_model("doinn", benchmark, "L")
    bench_config = harness.benchmark_config(benchmark, "L")
    simulator = harness.simulator(bench_config.pixel_size)
    large = build_large_tile_benchmark(
        bench_config,
        simulator,
        num_tiles=profile.large_tile_count,
        scale=profile.large_tile_scale,
    )

    # One batch-first pipeline serves both rows: the naive whole-tile forward
    # ("DOINN") and the §3.2 tiling + core-stitching plan ("DOINN-LT"), with
    # tile forwards batched across the whole large-tile set.
    pipeline = harness.model_pipeline(
        model,
        config=pipeline_config.merged(
            tile_size=bench_config.image_size,
            optical_diameter_pixels=simulator.optical_diameter_pixels,
        ),
    )
    naive_predictions = pipeline.predict_naive(large.masks)
    lt_predictions = pipeline.predict(large.masks, stitch=True)
    pipeline.close()

    naive_score = evaluate_predictions(naive_predictions, large.resists)
    lt_score = evaluate_predictions(lt_predictions, large.resists)

    figure9_path: Path | None = None
    if save_figure9:
        figure9_path = artifacts_dir() / "figure9_large_tile.npz"
        np.savez_compressed(
            figure9_path,
            mask=large.masks[0, 0],
            golden=large.resists[0, 0],
            doinn=naive_predictions[0, 0],
            doinn_lt=lt_predictions[0, 0],
        )

    naive_mpa, naive_miou = naive_score.as_row()
    lt_mpa, lt_miou = lt_score.as_row()
    return {
        "benchmark": f"{benchmark}-LT",
        "tile_um2": large.tile_area_um2,
        "num_tiles": len(large),
        "doinn": {"mpa": naive_mpa, "miou": naive_miou},
        "doinn_lt": {"mpa": lt_mpa, "miou": lt_miou},
        "figure9_path": str(figure9_path) if figure9_path else None,
    }


def format_table4(result: dict) -> str:
    return format_table(
        ["ISPD-2019-LT", "mPA (%)", "mIOU (%)"],
        [
            ["DOINN", f"{result['doinn']['mpa']:.2f}", f"{result['doinn']['miou']:.2f}"],
            ["DOINN-LT", f"{result['doinn_lt']['mpa']:.2f}", f"{result['doinn_lt']['miou']:.2f}"],
        ],
        title=f"Table 4: Large Tile Simulation Scheme ({result['num_tiles']} tiles of "
        f"{result['tile_um2']:.1f} um^2)",
    )
