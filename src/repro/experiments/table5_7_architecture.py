"""Experiment E8 — regenerate Tables 5-7 (the DOINN architecture appendix).

Instantiates the paper's exact configuration and prints per-path layer shapes
together with the total parameter count, which must land near the published
1.3 M parameters.
"""

from __future__ import annotations

from ..core.doinn import DOINN, DOINNConfig
from ..utils.tables import format_table

__all__ = ["run_table5_7", "format_table5_7"]


def run_table5_7(image_size: int = 2048) -> dict:
    """Build the paper-scale DOINN and summarize its layers and size."""
    model = DOINN(DOINNConfig.paper())
    rows = model.summary(image_size=image_size)
    return {
        "rows": rows,
        "parameters": model.num_parameters(),
        "image_size": image_size,
        "modes_per_axis": 2 * model.config.modes,
        "gp_channels": model.config.gp_channels,
    }


def format_table5_7(result: dict) -> str:
    table = format_table(
        ["Path", "Layer", "Output (H, W, C)"],
        [[row["path"], row["layer"], "x".join(str(v) for v in row["output"])] for row in result["rows"]],
        title=f"Tables 5-7: DOINN architecture at {result['image_size']}x{result['image_size']} input",
    )
    extras = (
        f"\nRetained frequency block: {result['modes_per_axis']}x{result['modes_per_axis']}"
        f"\nGP channels: {result['gp_channels']}"
        f"\nTotal trainable parameters: {result['parameters']:,} (paper: ~1.3 M)"
    )
    return table + extras
