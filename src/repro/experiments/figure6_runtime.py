"""Experiment E5 — regenerate Figure 6 (runtime / throughput comparison).

Throughput (µm² of layout simulated per second) is measured for the UNet,
DAMO-DLS and DOINN models and for the rigorous golden simulator ("Ref").  The
model-size comparison from the paper's abstract (DOINN ~20x smaller than
DAMO-DLS) and the speedup over the reference engine are derived from the same
measurements.

All engines run through the batch-first inference pipeline.  Each learned
model is measured twice: per single tile (``batch_size=1``, the seed
configuration, comparable across PRs) and at the profile's batch size, which
is the deployment scenario the paper's throughput claim describes.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.registry import create_model
from ..evaluation.runtime import measure_model_throughput
from ..pipeline import ExecutionConfig
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["run_figure6", "format_figure6"]

# The reference engine is measured in sign-off configuration: a supersampled
# simulation grid, the full SOCS kernel stack and three process-window corners
# (nominal, defocus, overdose), which is what the slow "traditional lithography
# engines" of Figure 6 compute to produce golden contours.
_REF_SUPERSAMPLE = 4
_REF_KERNELS = 64
_REF_DEFOCUS_NM = 40.0
_REF_DOSE = 1.02


def _measure_rigorous_reference(
    harness: Harness, mask: np.ndarray, pixel_size: float, repeats: int
) -> dict:
    """Time the golden engine in rigorous (sign-off) configuration."""
    import time

    fine_pixel = pixel_size / _REF_SUPERSAMPLE
    fine_mask = np.kron(mask, np.ones((_REF_SUPERSAMPLE, _REF_SUPERSAMPLE)))
    from ..litho.simulator import LithoSimulator

    # Keep the same physical kernel ambit (~250 nm) at the finer grid.
    support = int(round(248.0 / fine_pixel))
    if support % 2 == 0:
        support += 1
    nominal = LithoSimulator(
        pixel_size=fine_pixel,
        num_kernels=_REF_KERNELS,
        kernel_support=support,
    )
    corners = [nominal, nominal.with_defocus(_REF_DEFOCUS_NM), nominal.with_dose(_REF_DOSE)]
    for corner in corners:  # build kernel stacks outside the timed region
        _ = corner.kernels

    def run_once() -> None:
        for corner in corners:
            corner.resist_image(fine_mask)

    run_once()  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        run_once()
    per_tile = (time.perf_counter() - start) / repeats
    tile_area_um2 = (mask.shape[0] * pixel_size / 1000.0) * (mask.shape[1] * pixel_size / 1000.0)
    return {
        "engine": "Ref",
        "um2_per_s": tile_area_um2 / per_tile,
        "seconds_per_tile": per_tile,
        "params": 0,
    }


def run_figure6(
    harness: Harness | None = None,
    benchmark: str = "ispd2019",
    repeats: int = 3,
    batch_size: int | None = None,
    config: ExecutionConfig | None = None,
    **legacy,
) -> list[dict]:
    """Measure throughput of every engine on one benchmark tile.

    ``batch_size`` sets the batched-execution measurement (defaults to the
    profile's batch size); the per-tile ``batch_size=1`` measurement is always
    reported alongside for continuity with the seed numbers.  ``config``
    carries the execution knobs into every measured pipeline: ``num_workers``
    shards the batched measurement across a worker pool, which is how the
    "orders of magnitude" headline scales on a multi-core host; ``streaming``
    selects the persistent shared-memory ring (default) vs the per-call
    transport for that pool — the repeated measurement loop is exactly the
    streaming workload the ring accelerates; ``retry`` sets the pool's
    supervision policy (deadline / retries / degradation).  Per-knob keyword
    arguments are deprecated.
    """
    if legacy:
        warnings.warn(
            f"run_figure6({', '.join(sorted(legacy))}=...) keyword knobs are "
            "deprecated; pass config=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    pipeline_config = (config if config is not None else ExecutionConfig()).merged(**legacy)
    harness = harness or Harness()
    data = harness.benchmark(benchmark, "L")
    mask = data.test.masks[0, 0]
    pixel_size = data.test.pixel_size
    image_size = data.test.image_size
    batch_size = batch_size or harness.profile.batch_size

    results: list[dict] = []
    for name, label in (("unet", "UNet"), ("damo-dls", "DAMO"), ("doinn", "Ours")):
        model = create_model(name, image_size=image_size)
        pipeline = harness.model_pipeline(model, config=pipeline_config)
        single = measure_model_throughput(
            pipeline, mask, pixel_size, name=label, repeats=repeats, batch_size=1
        )
        batched = measure_model_throughput(
            pipeline, mask, pixel_size, name=label, repeats=repeats, batch_size=batch_size
        )
        pipeline.close()
        results.append(
            {
                "engine": label,
                "um2_per_s": single.um2_per_second,
                "seconds_per_tile": single.seconds_per_tile,
                "um2_per_s_batched": batched.um2_per_second,
                "batch_size": batch_size,
                "params": model.num_parameters(),
            }
        )

    ref_row = _measure_rigorous_reference(harness, mask, pixel_size, repeats=max(1, repeats - 1))
    results.append(ref_row)

    # Derived quantities reported in the paper's abstract / §4.2.
    by_name = {r["engine"]: r for r in results}
    doinn = by_name["Ours"]
    doinn["speedup_over_ref"] = doinn["um2_per_s"] / max(by_name["Ref"]["um2_per_s"], 1e-12)
    doinn["size_ratio_vs_damo"] = by_name["DAMO"]["params"] / max(doinn["params"], 1)
    return results


def format_figure6(results: list[dict]) -> str:
    body = []
    for row in results:
        batched = row.get("um2_per_s_batched")
        body.append(
            [
                row["engine"],
                f"{row['um2_per_s']:.2f}",
                f"{batched:.2f}" if batched else "-",
                f"{row['seconds_per_tile'] * 1000:.1f}",
                row["params"] if row["params"] else "-",
            ]
        )
    batch = next((r["batch_size"] for r in results if r.get("batch_size")), "-")
    table = format_table(
        ["Engine", "um^2/s (bs=1)", f"um^2/s (bs={batch})", "ms per tile", "Parameters"],
        body,
        title="Figure 6: Runtime comparison with state-of-the-art",
    )
    doinn = next(r for r in results if r["engine"] == "Ours")
    extras = (
        f"\nDOINN speedup over Ref engine: {doinn['speedup_over_ref']:.1f}x"
        f"\nDAMO-DLS / DOINN parameter ratio: {doinn['size_ratio_vs_damo']:.1f}x"
    )
    return table + extras
