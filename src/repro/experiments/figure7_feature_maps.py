"""Experiment E6 — regenerate Figure 7 (GP / LP feature map visualization).

The paper shows that the global-perception (Fourier unit) channels resemble
the aerial intensity image while the local-perception channels respond to
shape edges.  This harness quantifies that observation: it extracts both
feature stacks from a trained DOINN, correlates them with the golden aerial
image and with an edge map of the mask, and saves the arrays for visual
inspection.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, no_grad
from ..utils.image import downsample, normalize_image
from ..utils.tables import format_table
from .harness import Harness, artifacts_dir

__all__ = ["run_figure7", "format_figure7"]


def _correlation(a: np.ndarray, b: np.ndarray) -> float:
    a = a.reshape(-1) - a.mean()
    b = b.reshape(-1) - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom < 1e-12:
        return 0.0
    return float(np.dot(a, b) / denom)


def _edge_map(mask: np.ndarray) -> np.ndarray:
    gy, gx = np.gradient(mask)
    return np.hypot(gx, gy)


def run_figure7(harness: Harness | None = None, benchmark: str = "ispd2019", save: bool = True) -> dict:
    """Extract GP/LP feature maps of a trained DOINN and correlate them."""
    harness = harness or Harness()
    model, _ = harness.trained_model("doinn", benchmark, "L")
    data = harness.benchmark(benchmark, "L")
    simulator = harness.simulator(data.config.pixel_size)

    mask = data.test.masks[0, 0]
    aerial = simulator.aerial(mask)

    model.eval()
    with no_grad():
        x = Tensor(mask[None, None])
        gp = model.global_perception(x).numpy()[0]           # (C, H/8, W/8)
        lp = model.local_perception(x)[0].numpy()[0] if model.local_perception else None
    model.train()

    pool = model.config.pool_factor
    aerial_small = downsample(aerial, pool)
    gp_mean = normalize_image(np.abs(gp).mean(axis=0))
    gp_aerial_corr = _correlation(gp_mean, normalize_image(aerial_small))
    gp_edge_corr = _correlation(gp_mean, normalize_image(_edge_map(downsample(mask, pool))))

    result = {
        "gp_channels": int(gp.shape[0]),
        "gp_aerial_correlation": gp_aerial_corr,
        "gp_edge_correlation": gp_edge_corr,
    }

    if lp is not None:
        lp_mean = normalize_image(np.abs(lp).mean(axis=0))
        edge_half = normalize_image(_edge_map(downsample(mask, 2)))
        aerial_half = normalize_image(downsample(aerial, 2))
        result.update(
            {
                "lp_channels": int(lp.shape[0]),
                "lp_edge_correlation": _correlation(lp_mean, edge_half),
                "lp_aerial_correlation": _correlation(lp_mean, aerial_half),
            }
        )

    if save:
        path = artifacts_dir() / "figure7_feature_maps.npz"
        arrays = {"mask": mask, "aerial": aerial, "gp_features": gp}
        if lp is not None:
            arrays["lp_features"] = lp
        np.savez_compressed(path, **arrays)
        result["artifact_path"] = str(path)
    return result


def format_figure7(result: dict) -> str:
    rows = [
        ["GP vs aerial image", f"{result['gp_aerial_correlation']:.3f}"],
        ["GP vs mask edges", f"{result['gp_edge_correlation']:.3f}"],
    ]
    if "lp_edge_correlation" in result:
        rows += [
            ["LP vs mask edges", f"{result['lp_edge_correlation']:.3f}"],
            ["LP vs aerial image", f"{result['lp_aerial_correlation']:.3f}"],
        ]
    return format_table(
        ["Feature path comparison", "Correlation"],
        rows,
        title="Figure 7: GP captures aerial-intensity content, LP captures edges",
    )
