"""Experiment E7 — regenerate Figure 8 (sensitivity to subtle mask perturbations).

A metal-layer layout is pushed through the OPC engine for 24 iterations; the
mask snapshot of every iteration is simulated with the golden engine and
predicted with the trained DOINN and UNet.  The per-iteration mIOU series
reproduces Figure 8: both models are weak on the earliest (pre-OPC) masks,
which are far from the training distribution, and DOINN stays ahead of the
CNN-only baseline as the mask converges.
"""

from __future__ import annotations

import numpy as np

from ..layout.generators import generate_metal_layout
from ..layout.design_rules import rules_for
from ..metrics.segmentation import mean_iou
from ..opc.engine import OPCConfig, OPCEngine
from ..utils.tables import format_table
from .harness import Harness

__all__ = ["run_figure8", "format_figure8"]


def run_figure8(
    harness: Harness | None = None,
    benchmark: str = "iccad2013",
    seed: int = 11,
) -> dict:
    """mIOU of DOINN and UNet across OPC iterations of one metal tile."""
    harness = harness or Harness()
    config = harness.benchmark_config(benchmark, "L")
    simulator = harness.simulator(config.pixel_size)

    rules = rules_for(benchmark)
    layout = generate_metal_layout(
        rules,
        np.random.default_rng(seed),
        tile_size=config.tile_size_nm,
        density_scale=harness.DENSITY_SCALE,
    )
    engine = OPCEngine(
        simulator,
        OPCConfig(
            iterations=harness.profile.opc_iterations,
            record_history=True,
            # The snapshot sims below re-simulate the exact masks the OPC
            # loop already pushed through this pipeline, so with the result
            # cache on they are all content-hash hits (free).
            result_cache=True,
        ),
    )
    opc_run = engine.correct(layout)
    snapshots = opc_run.mask_history[: harness.profile.opc_iterations]

    doinn, _ = harness.trained_model("doinn", benchmark, "L")
    unet, _ = harness.trained_model("unet", benchmark, "L")

    iterations, doinn_miou, unet_miou = [], [], []
    for index, mask in enumerate(snapshots):
        golden = engine.pipeline.predict(mask)
        batch = mask[None, None]
        doinn_pred = doinn.predict(batch)[0, 0]
        unet_pred = unet.predict(batch)[0, 0]
        iterations.append(index + 1)
        doinn_miou.append(mean_iou(doinn_pred, golden))
        unet_miou.append(mean_iou(unet_pred, golden))

    cache = engine.pipeline.result_cache
    counters = opc_run.counters
    return {
        "iterations": iterations,
        "doinn_miou": doinn_miou,
        "unet_miou": unet_miou,
        "doinn_final": doinn_miou[-1],
        "unet_final": unet_miou[-1],
        "doinn_mean": float(np.mean(doinn_miou)),
        "unet_mean": float(np.mean(unet_miou)),
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "dirty_history": list(opc_run.dirty_history),
        "sim_counters": None if counters is None else {
            "full_refreshes": counters.full_refreshes,
            "patched_calls": counters.patched_calls,
            "clean_calls": counters.clean_calls,
            "tiles_simulated": counters.tiles_simulated,
            "tiles_skipped": counters.tiles_skipped,
        },
    }


def format_figure8(result: dict) -> str:
    rows = [
        [it, f"{d:.3f}", f"{u:.3f}"]
        for it, d, u in zip(result["iterations"], result["doinn_miou"], result["unet_miou"])
    ]
    table = format_table(
        ["OPC iteration", "DOINN mIOU", "UNet mIOU"],
        rows,
        title="Figure 8: Lithography modeling performance across OPC iterations",
    )
    summary = (
        f"\nmean mIOU: DOINN {result['doinn_mean']:.3f} vs UNet {result['unet_mean']:.3f}"
    )
    return table + summary
