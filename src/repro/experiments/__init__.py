"""Experiment harnesses: one module per paper table/figure (see DESIGN.md §4)."""

from .fourier_cost import format_fourier_cost, run_fourier_cost
from .figure6_runtime import format_figure6, run_figure6
from .figure7_feature_maps import format_figure7, run_figure7
from .figure8_opc_sensitivity import format_figure8, run_figure8
from .harness import ExperimentProfile, Harness, artifacts_dir, get_profile
from .table1_datasets import format_table1, run_table1
from .table2_accuracy import TABLE2_ROWS, format_table2, run_table2
from .table3_ablation import format_table3, run_table3
from .table4_large_tile import format_table4, run_table4
from .table5_7_architecture import format_table5_7, run_table5_7
from .table8_config import format_table8, run_table8

__all__ = [
    "Harness",
    "ExperimentProfile",
    "get_profile",
    "artifacts_dir",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "TABLE2_ROWS",
    "run_table3",
    "format_table3",
    "run_table4",
    "format_table4",
    "run_figure6",
    "format_figure6",
    "run_figure7",
    "format_figure7",
    "run_figure8",
    "format_figure8",
    "run_table5_7",
    "format_table5_7",
    "run_table8",
    "format_table8",
    "run_fourier_cost",
    "format_fourier_cost",
]
