"""Central registry of every ``REPRO_*`` runtime knob.

Eight PRs of engine work accreted a dozen environment-variable knobs, each
read at its own call site with its own hand-rolled truthy parser.  This
module is the single choke point the ENV001 lint rule enforces: **no other
module under ``src/`` (or ``benchmarks/``, ``examples/``, ``scripts/``) may
touch ``os.environ``** — every env read routes through :func:`get_raw` /
the typed ``read_*`` helpers here, and every knob is declared up front with
its parser kind, display default and documentation string.

What centralizing buys:

* **one parser per type** — :func:`parse_bool` / :func:`parse_int` /
  :func:`parse_float` replace the four independently re-implemented truthy
  parsers that used to live in ``pipeline/streaming.py``,
  ``pipeline/cache.py``, ``opc/engine.py`` and ``pipeline/supervision.py``,
  with one pinned behavior for invalid strings (a :class:`KnobError`, which
  is a ``ValueError``, naming the knob and the offending value);
* **a machine-readable catalogue** — the knob tables in
  ``docs/configuration.md`` are *generated* from this registry
  (``scripts/gen_config_docs.py``) and the ENV002 lint rule fails CI when
  they drift in either direction;
* **typo detection** — reading an unregistered name raises immediately
  instead of silently returning the default forever.

The resolution precedence every knob follows is unchanged (and documented
in ``docs/configuration.md``): explicit argument > environment variable >
built-in default.  This module owns only the environment leg; the
``resolve_*`` functions next to each consumer keep owning precedence and
defaults, so knob semantics stay where their subsystem is documented.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "FALSE_FLAGS",
    "TRUE_FLAGS",
    "Knob",
    "KnobError",
    "all_knobs",
    "get_knob",
    "get_raw",
    "knob_names",
    "markdown_table",
    "parse_bool",
    "parse_float",
    "parse_int",
    "read_flag",
    "read_float",
    "read_int",
    "read_string",
    "register_knob",
    "render_section_tables",
    "sync_markdown",
]

#: Accepted spellings for boolean knobs (case-insensitive, whitespace-stripped).
TRUE_FLAGS = frozenset({"1", "true", "yes", "on"})
FALSE_FLAGS = frozenset({"0", "false", "no", "off"})


class KnobError(ValueError):
    """Invalid value for a registered knob.

    Subclasses :class:`ValueError` so every pre-registry call site (and
    test) that caught ``ValueError`` keeps working unchanged.
    """


# --------------------------------------------------------------------------
# Parsers: the one implementation of each value type
# --------------------------------------------------------------------------


def parse_bool(raw: str, *, name: str = "value") -> bool | None:
    """Parse a boolean flag string; ``None`` when empty/whitespace.

    This is *the* truthy parser — the four per-module copies it replaced
    disagreed on invalid strings (one treated ``""`` as false, another
    raised with a different message).  The pinned contract: empty means
    "unset, use the default"; anything outside :data:`TRUE_FLAGS` /
    :data:`FALSE_FLAGS` raises :class:`KnobError` naming the knob.
    """
    text = raw.strip().lower()
    if not text:
        return None
    if text in TRUE_FLAGS:
        return True
    if text in FALSE_FLAGS:
        return False
    raise KnobError(
        f"{name}={raw!r} is not a boolean flag "
        f"(expected one of 1/true/yes/on or 0/false/no/off)"
    )


def parse_int(raw: str, *, name: str = "value", minimum: int | None = None) -> int | None:
    """Parse an integer knob string; ``None`` when empty/whitespace."""
    text = raw.strip()
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        raise KnobError(f"{name}={raw!r} is not an integer") from None
    if minimum is not None and value < minimum:
        raise KnobError(f"{name}={raw!r} must be >= {minimum}")
    return value


def parse_float(raw: str, *, name: str = "value", minimum: float | None = None) -> float | None:
    """Parse a float knob string; ``None`` when empty/whitespace."""
    text = raw.strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise KnobError(f"{name}={raw!r} is not a number") from None
    if minimum is not None and value < minimum:
        raise KnobError(f"{name}={raw!r} must be >= {minimum}")
    return value


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One declared runtime knob.

    ``kind`` is documentation-facing (what shape of value the knob takes);
    the consumer's ``resolve_*`` function owns the actual typed read so each
    knob's semantics (precedence, ``timeout=0`` meaning, choice validation
    against a live registry) stay with its subsystem.
    """

    name: str        # environment variable, e.g. "REPRO_STREAMING"
    kind: str        # "flag" | "int" | "float" | "string" | "path" | "choice" | "flag-or-bytes" | "plan"
    default: str     # human-readable default, rendered into the docs table
    doc: str         # markdown "Meaning" cell for docs/configuration.md
    section: str     # docs section key (see SECTIONS)
    #: Matching :class:`repro.pipeline.ExecutionConfig` field ("retry.x" for
    #: the RetryPolicy sub-fields); empty for knobs outside the execution
    #: document (harness profile, artifacts root, fault plans).
    field: str = ""


#: Documentation sections, in the order they appear in docs/configuration.md.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("execution", "Execution / parallelism"),
    ("backends", "Compute backends"),
    ("supervision", "Worker-pool supervision"),
    ("faults", "Fault injection (chaos testing)"),
    ("harness", "Experiment harness"),
)

_REGISTRY: dict[str, Knob] = {}


def register_knob(knob: Knob) -> Knob:
    """Register a knob (idempotent per name; re-registration replaces)."""
    if not knob.name.startswith("REPRO_"):
        raise KnobError(f"knob names must start with REPRO_, got {knob.name!r}")
    if knob.section not in {key for key, _ in SECTIONS}:
        valid = ", ".join(key for key, _ in SECTIONS)
        raise KnobError(f"unknown knob section {knob.section!r}; valid sections: {valid}")
    _REGISTRY[knob.name] = knob
    return knob


def knob_names() -> tuple[str, ...]:
    """Every registered knob name, registration order."""
    return tuple(_REGISTRY)


def all_knobs() -> tuple[Knob, ...]:
    """Every registered knob, registration order."""
    return tuple(_REGISTRY.values())


def get_knob(name: str) -> Knob:
    """Look up a registered knob by environment-variable name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise KnobError(f"{name!r} is not a registered knob; registered: {valid}") from None


def get_raw(name: str) -> str | None:
    """The raw environment value of a registered knob (``None`` when unset).

    This is the single ``os.environ`` access point in the codebase — the
    ENV001 lint rule fails any other module that reads the environment.
    Reading a name that was never registered is a bug (a typo would
    otherwise silently read the default forever), so it raises.
    """
    get_knob(name)
    return os.environ.get(name)


def read_flag(name: str) -> bool | None:
    """Boolean knob from the environment; ``None`` when unset or empty."""
    raw = get_raw(name)
    if raw is None:
        return None
    return parse_bool(raw, name=name)


def read_int(name: str, *, minimum: int | None = None) -> int | None:
    """Integer knob from the environment; ``None`` when unset or empty."""
    raw = get_raw(name)
    if raw is None:
        return None
    return parse_int(raw, name=name, minimum=minimum)


def read_float(name: str, *, minimum: float | None = None) -> float | None:
    """Float knob from the environment; ``None`` when unset or empty."""
    raw = get_raw(name)
    if raw is None:
        return None
    return parse_float(raw, name=name, minimum=minimum)


def read_string(name: str) -> str | None:
    """Stripped string knob from the environment; ``None`` when unset/empty."""
    raw = get_raw(name)
    if raw is None:
        return None
    text = raw.strip()
    return text or None


# --------------------------------------------------------------------------
# The catalogue (doc strings are the generated docs/configuration.md cells)
# --------------------------------------------------------------------------

register_knob(Knob(
    name="REPRO_NUM_WORKERS",
    kind="int",
    default="`0` (serial)",
    doc=(
        "Worker processes the pipeline's batches are sharded across "
        "([`repro.pipeline.parallel`](../src/repro/pipeline/parallel.py)). "
        "Values `<= 1` run in-process. Explicit `num_workers=` wins."
    ),
    section="execution",
    field="num_workers",
))
register_knob(Knob(
    name="REPRO_STREAMING",
    kind="flag",
    default="on",
    doc=(
        "Keep the worker pool's shared-memory segments alive across pipeline "
        "calls in a persistent ring "
        "([`repro.pipeline.streaming`](../src/repro/pipeline/streaming.py)). "
        "`0` restores the per-call segment transport (the throughput bench's "
        "baseline). Bit-identical either way."
    ),
    section="execution",
    field="streaming",
))
register_knob(Knob(
    name="REPRO_RESULT_CACHE",
    kind="flag-or-bytes",
    default="off",
    doc=(
        "Content-hash result cache in front of `InferencePipeline.run`/`predict` "
        "([`repro.pipeline.cache`](../src/repro/pipeline/cache.py)). A boolean "
        "flag enables the default 256 MiB byte budget; an integer sets the "
        "budget in bytes."
    ),
    section="execution",
    field="result_cache",
))
register_knob(Knob(
    name="REPRO_INCREMENTAL_OPC",
    kind="flag",
    default="on",
    doc=(
        "Incremental OPC re-simulation: dirty-tile tracking and cached aerial "
        "patching in [`repro.opc.engine`](../src/repro/opc/engine.py). `0` "
        "restores the full re-simulation loop."
    ),
    section="execution",
    field="incremental",
))
register_knob(Knob(
    name="REPRO_BACKEND",
    kind="choice",
    default="`float64`",
    doc=(
        "Compute lane of compiled fused graphs. `float64`: bit-identical to "
        "the uncompiled path (the 1e-12 equivalence gate). `float32`: folded "
        "weights narrowed at compile time, whole graph in float32 — "
        "calibrated-tolerance equivalence (~1e-6 on the zoo), still "
        "partition-invariant (pooled == serial, bitwise). `blas`: micro-batch "
        "patch matrices stacked into one threaded GEMM — 1e-12-tolerance "
        "equivalence, **not** partition-invariant. `fft`: FFT-domain "
        "large-kernel transposed convolution (float64, partition-invariant)."
    ),
    section="backends",
    field="backend",
))
register_knob(Knob(
    name="REPRO_BLAS_THREADS",
    kind="int",
    default="pooled: `1` per worker; serial: leave the library alone",
    doc=(
        "BLAS thread cap, applied in each pool worker at spawn (and "
        "in-process when serial and set). The pooled default prevents "
        "oversubscription: keep `num_workers x blas_threads <= physical "
        "cores` when raising it. `0` means \"do not touch the BLAS library\". "
        "Threads through `ParallelConfig(blas_threads=...)`, "
        "`InferencePipeline(blas_threads=...)`, `OPCConfig.blas_threads` and "
        "the experiment drivers."
    ),
    section="backends",
    field="blas_threads",
))
register_knob(Knob(
    name="REPRO_WORKER_TIMEOUT",
    kind="float",
    default="unset (no deadline)",
    doc=(
        "Per-chunk deadline in seconds before a worker is declared hung and "
        "killed (the chunk is then retried).  Chunk cost is "
        "workload-dependent, so there is deliberately no default deadline; an "
        "explicit `timeout=0` disables an environment-set one."
    ),
    section="supervision",
    field="retry.timeout",
))
register_knob(Knob(
    name="REPRO_WORKER_RETRIES",
    kind="int",
    default="`2`",
    doc=(
        "Extra attempts per failed chunk after the first, each on a healthy "
        "(respawned if necessary) worker, with bounded exponential backoff.  "
        "`0` fails/degrades on the first error."
    ),
    section="supervision",
    field="retry.max_retries",
))
register_knob(Knob(
    name="REPRO_DEGRADE",
    kind="flag",
    default="on",
    doc=(
        "When a chunk exhausts its retries or the pool is irrecoverable "
        "(respawn budget spent), recompute the affected chunks in-process "
        "through the wrapped executor and finish the run with a "
        "`PoolDegradedWarning` — bit-identical output, degraded throughput.  "
        "`0` raises a structured `WorkerPoolError` instead (method, per-chunk "
        "bounds, attempt counts, every remote traceback)."
    ),
    section="supervision",
    field="retry.degrade",
))
register_knob(Knob(
    name="REPRO_FAULT_PLAN",
    kind="plan",
    default="unset (no injection)",
    doc=(
        "Deterministic fault plan shipped to every worker "
        "([`repro.pipeline.faults`](../src/repro/pipeline/faults.py)).  "
        "Production code never sets this; the CI chaos gate and "
        "`tests/pipeline/test_supervision.py` do."
    ),
    section="faults",
))
register_knob(Knob(
    name="REPRO_PROFILE",
    kind="choice",
    default="`quick`",
    doc=(
        "Experiment scale profile "
        "([`repro.experiments.harness`](../src/repro/experiments/harness.py)): "
        "`quick` reproduces the qualitative shape of every paper result in "
        "minutes on a laptop CPU; `full` approaches the paper's scale."
    ),
    section="harness",
))
register_knob(Knob(
    name="REPRO_ARTIFACTS",
    kind="path",
    default="`<repo>/artifacts`",
    doc=(
        "Root directory for experiment artifacts (tables, figures, "
        "checkpoints, benchmark reports). Created on demand. Must be an "
        "absolute path — a relative one would silently depend on the process "
        "working directory, so it raises instead."
    ),
    section="harness",
))
register_knob(Knob(
    name="REPRO_COMPILE",
    kind="flag",
    default="off",
    doc=(
        "Run the benchmark suite's model pipelines as compiled fused "
        "inference graphs ([`benchmarks/conftest.py`](../benchmarks/conftest.py)); "
        "the `--compile` pytest flag wins over the variable."
    ),
    section="harness",
    field="compile",
))


# --------------------------------------------------------------------------
# Documentation rendering (the ENV002 sync contract)
# --------------------------------------------------------------------------

_TABLE_HEADER = (
    "| Variable | Default | `ExecutionConfig` field | Meaning |\n|---|---|---|---|"
)


def markdown_table(section: str) -> str:
    """The generated markdown knob table for one docs section."""
    rows = [_TABLE_HEADER]
    for knob in _REGISTRY.values():
        if knob.section == section:
            field = f"`{knob.field}`" if knob.field else "—"
            rows.append(f"| `{knob.name}` | {knob.default} | {field} | {knob.doc} |")
    return "\n".join(rows)


def _marker(section: str, which: str) -> str:
    return f"<!-- knob-table:{section}:{which} -->"


def render_section_tables() -> dict[str, str]:
    """``section key -> generated table`` for every documented section."""
    return {key: markdown_table(key) for key, _ in SECTIONS}


def sync_markdown(text: str) -> tuple[str, list[str]]:
    """Regenerate the knob tables between markers in a docs file.

    Returns ``(updated_text, problems)``.  ``problems`` lists sections whose
    begin/end markers are missing or malformed; markers present but stale
    content is simply rewritten (callers compare input and output to detect
    drift).  Used by both ``scripts/gen_config_docs.py`` and the ENV002 rule
    so "in sync" has exactly one definition.
    """
    problems: list[str] = []
    for key, _title in SECTIONS:
        begin, end = _marker(key, "begin"), _marker(key, "end")
        start = text.find(begin)
        stop = text.find(end)
        if start < 0 or stop < 0 or stop < start:
            problems.append(
                f"docs section {key!r} is missing its {begin} / {end} markers"
            )
            continue
        head = text[: start + len(begin)]
        tail = text[stop:]
        text = f"{head}\n{markdown_table(key)}\n{tail}"
    return text, problems
