"""Resist models mapping aerial intensity to printed wafer contours.

The paper uses "a constant threshold resist model to obtain the final wafer
contours" (§2.1); :class:`ConstantThresholdResist` implements that.  A smooth
:class:`SigmoidResist` is also provided — it is the standard differentiable
relaxation used by OPC/ILT engines and by the OPC substrate in this repo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ResistModel", "ConstantThresholdResist", "SigmoidResist"]


class ResistModel:
    """Interface: maps an aerial intensity image to a resist (wafer) image."""

    def develop(self, aerial: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, aerial: np.ndarray) -> np.ndarray:
        return self.develop(aerial)


@dataclass(frozen=True)
class ConstantThresholdResist(ResistModel):
    """Binary resist: exposed where the aerial intensity exceeds ``threshold``.

    The threshold is expressed relative to the clear-field intensity (the
    aerial image must be normalized, which :func:`repro.litho.aerial_image`
    does by default).
    """

    threshold: float = 0.225

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must lie strictly between 0 and 1")

    def develop(self, aerial: np.ndarray) -> np.ndarray:
        return (np.asarray(aerial) >= self.threshold).astype(np.float64)


@dataclass(frozen=True)
class SigmoidResist(ResistModel):
    """Smooth resist model: logistic function of the aerial intensity.

    ``steepness`` controls how sharp the transition is; as it grows the model
    converges to :class:`ConstantThresholdResist` with the same threshold.
    """

    threshold: float = 0.225
    steepness: float = 50.0

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must lie strictly between 0 and 1")
        if self.steepness <= 0.0:
            raise ValueError("steepness must be positive")

    def develop(self, aerial: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.steepness * (np.asarray(aerial) - self.threshold)))
