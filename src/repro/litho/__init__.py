"""Golden lithography simulator: Hopkins/SOCS optics and resist models."""

from .hopkins import AerialWorkspace, aerial_image, aerial_image_loop, clear_field_intensity
from .kernels import SOCSKernels, compute_tcc_matrix, generate_kernels
from .optics import OpticalSettings, pupil_function, source_points
from .resist import ConstantThresholdResist, ResistModel, SigmoidResist
from .simulator import LithoSimulator, SimulationResult

__all__ = [
    "OpticalSettings",
    "pupil_function",
    "source_points",
    "SOCSKernels",
    "compute_tcc_matrix",
    "generate_kernels",
    "AerialWorkspace",
    "aerial_image",
    "aerial_image_loop",
    "clear_field_intensity",
    "ConstantThresholdResist",
    "SigmoidResist",
    "ResistModel",
    "LithoSimulator",
    "SimulationResult",
]
