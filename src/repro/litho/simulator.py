"""Golden lithography simulator facade.

:class:`LithoSimulator` plays the role of the commercial engines used in the
paper (Calibre / the ICCAD-2013 ``Lithosim``): it converts mask images into
aerial and resist images with the Hopkins/SOCS optical model and a resist
model, and it is what generates the ground-truth labels for training as well
as the "Ref" runtime baseline in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..layout.geometry import Layout
from ..layout.rasterize import rasterize
from .hopkins import aerial_image
from .kernels import SOCSKernels, generate_kernels
from .optics import OpticalSettings
from .resist import ConstantThresholdResist, ResistModel

__all__ = ["LithoSimulator", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Full output of one lithography simulation."""

    mask: np.ndarray
    aerial: np.ndarray
    resist: np.ndarray
    pixel_size: float

    @property
    def printed_area(self) -> float:
        """Printed (resist = 1) area in nm^2."""
        return float(self.resist.sum()) * self.pixel_size**2


@dataclass
class LithoSimulator:
    """Forward lithography simulation: mask image -> aerial image -> resist image.

    Parameters
    ----------
    settings:
        Optical configuration; defaults to the 193i annular setup.
    resist:
        Resist model; defaults to the constant-threshold model the paper uses.
    pixel_size:
        Pixel pitch in nm of the mask images this simulator accepts.
    num_kernels:
        Number of SOCS kernels retained (``l`` in paper eq. (2)).
    kernel_support:
        Spatial support of the kernels in pixels.
    """

    settings: OpticalSettings = field(default_factory=OpticalSettings)
    resist: ResistModel = field(default_factory=ConstantThresholdResist)
    pixel_size: float = 8.0
    num_kernels: int = 12
    kernel_support: int = 35
    dose: float = 1.0
    _kernels: SOCSKernels | None = field(default=None, repr=False)

    @property
    def kernels(self) -> SOCSKernels:
        """Lazily computed SOCS kernel stack (cached)."""
        if self._kernels is None:
            self._kernels = generate_kernels(
                self.settings,
                num_kernels=self.num_kernels,
                pixel_size=self.pixel_size,
                kernel_support=self.kernel_support,
            )
        return self._kernels

    @property
    def optical_diameter_pixels(self) -> int:
        """Optical diameter expressed in pixels at this simulator's resolution."""
        return int(np.ceil(self.settings.optical_diameter / self.pixel_size))

    # ------------------------------------------------------------------ #
    # Simulation entry points
    # ------------------------------------------------------------------ #
    def simulate(self, mask: np.ndarray) -> SimulationResult:
        """Simulate a mask image and return mask, aerial and resist images."""
        aerial = aerial_image(mask, self.kernels, normalize=True, dose=self.dose)
        resist = self.resist.develop(aerial)
        return SimulationResult(
            mask=np.asarray(mask, dtype=np.float64),
            aerial=aerial,
            resist=resist,
            pixel_size=self.pixel_size,
        )

    def simulate_layout(self, layout: Layout) -> SimulationResult:
        """Rasterize a layout at this simulator's pixel size and simulate it."""
        mask = rasterize(layout, pixel_size=self.pixel_size)
        return self.simulate(mask)

    def resist_image(self, mask: np.ndarray) -> np.ndarray:
        """Shortcut returning only the resist image (training label)."""
        return self.simulate(mask).resist

    def aerial(self, mask: np.ndarray, workspace=None) -> np.ndarray:
        """Normalized aerial image of one mask ``(H, W)`` or a batch ``(N, H, W)``.

        Batches run in one FFT pass per mask against the cached SOCS transfer
        functions (the inference-pipeline hot path; see
        :mod:`repro.litho.hopkins`).  Long-lived callers can pass an
        :class:`~repro.litho.hopkins.AerialWorkspace` to reuse the FFT scratch
        buffers across calls.
        """
        return aerial_image(
            mask, self.kernels, normalize=True, dose=self.dose, workspace=workspace
        )

    def with_dose(self, dose: float) -> "LithoSimulator":
        """Return a copy of this simulator at a different exposure dose."""
        clone = LithoSimulator(
            settings=self.settings,
            resist=self.resist,
            pixel_size=self.pixel_size,
            num_kernels=self.num_kernels,
            kernel_support=self.kernel_support,
            dose=dose,
        )
        clone._kernels = self._kernels
        return clone

    def with_defocus(self, defocus: float) -> "LithoSimulator":
        """Return a copy of this simulator at a different defocus setting."""
        settings = OpticalSettings(
            wavelength=self.settings.wavelength,
            numerical_aperture=self.settings.numerical_aperture,
            sigma_in=self.settings.sigma_in,
            sigma_out=self.settings.sigma_out,
            defocus=defocus,
            refractive_index=self.settings.refractive_index,
        )
        return LithoSimulator(
            settings=settings,
            resist=self.resist,
            pixel_size=self.pixel_size,
            num_kernels=self.num_kernels,
            kernel_support=self.kernel_support,
            dose=self.dose,
        )
