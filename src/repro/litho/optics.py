"""Optical system description: illumination source and projection pupil.

The golden simulator implements the Hopkins partially-coherent imaging model
(paper eq. (1)-(3)).  The optical system is described by

* an illumination **source** intensity distribution ``J(f)`` over the source
  pupil (circular or annular, parameterized by the partial-coherence factors
  ``sigma_in``/``sigma_out``), and
* a **projection pupil** ``P(f)`` — an ideal low-pass filter with cutoff
  ``NA / wavelength``, optionally carrying a defocus aberration phase.

Spatial frequencies are expressed in cycles per nanometre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OpticalSettings", "source_points", "pupil_function"]


@dataclass(frozen=True)
class OpticalSettings:
    """Projection-lithography optical parameters.

    Defaults correspond to a 193 nm immersion scanner with annular
    illumination, the technology generation used by the paper's metal/via
    benchmarks.
    """

    wavelength: float = 193.0          # nm
    numerical_aperture: float = 1.35   # immersion NA
    sigma_in: float = 0.5              # annular source inner partial coherence
    sigma_out: float = 0.85            # annular source outer partial coherence
    defocus: float = 0.0               # nm, positive = away from focal plane
    refractive_index: float = 1.44     # immersion medium (water)

    def __post_init__(self) -> None:
        if self.wavelength <= 0 or self.numerical_aperture <= 0:
            raise ValueError("wavelength and NA must be positive")
        if not 0.0 <= self.sigma_in < self.sigma_out <= 1.0:
            raise ValueError("require 0 <= sigma_in < sigma_out <= 1")

    @property
    def cutoff_frequency(self) -> float:
        """Pupil cutoff frequency ``NA / wavelength`` in cycles/nm."""
        return self.numerical_aperture / self.wavelength

    @property
    def max_frequency(self) -> float:
        """Maximum frequency transmitted by the partially coherent system."""
        return (1.0 + self.sigma_out) * self.cutoff_frequency

    @property
    def optical_diameter(self) -> float:
        """Ambit of optical influence in nm (paper §3.2).

        The point-spread function of a partially coherent system decays over a
        few Rayleigh units; following standard sign-off practice the optical
        diameter is taken as roughly ten ``0.5 * wavelength / NA`` half-pitches.
        """
        return 10.0 * 0.5 * self.wavelength / self.numerical_aperture


def source_points(
    settings: OpticalSettings, samples_per_axis: int = 17
) -> tuple[np.ndarray, np.ndarray]:
    """Discretize the annular illumination source.

    Returns
    -------
    points:
        Array of shape ``(S, 2)`` with source frequency coordinates in
        cycles/nm.
    weights:
        Array of shape ``(S,)`` with non-negative weights summing to one.
    """
    f_cut = settings.cutoff_frequency
    axis = np.linspace(-settings.sigma_out * f_cut, settings.sigma_out * f_cut, samples_per_axis)
    fx, fy = np.meshgrid(axis, axis, indexing="ij")
    radius = np.sqrt(fx**2 + fy**2) / f_cut
    inside = (radius >= settings.sigma_in) & (radius <= settings.sigma_out)
    points = np.stack([fx[inside], fy[inside]], axis=-1)
    if points.size == 0:
        raise ValueError("source discretization produced no points; increase samples_per_axis")
    weights = np.full(points.shape[0], 1.0 / points.shape[0])
    return points, weights


def pupil_function(
    fx: np.ndarray, fy: np.ndarray, settings: OpticalSettings
) -> np.ndarray:
    """Evaluate the projection pupil ``P(fx, fy)``.

    The pupil passes frequencies below the cutoff and applies a quadratic
    defocus phase (paraxial approximation) when ``settings.defocus`` is
    non-zero.
    """
    f_cut = settings.cutoff_frequency
    radius_sq = (fx**2 + fy**2) / f_cut**2
    passband = (radius_sq <= 1.0).astype(np.complex128)
    if settings.defocus != 0.0:
        # Paraxial defocus phase: exp(-i * pi * lambda * z * f^2)
        phase = -np.pi * settings.wavelength * settings.defocus * (fx**2 + fy**2)
        passband = passband * np.exp(1j * phase)
    return passband
