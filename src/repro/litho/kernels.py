"""SOCS lithography kernels from the Hopkins transmission cross coefficients.

The Hopkins model expresses the aerial image through the transmission cross
coefficient (TCC) operator.  The standard "sum of coherent systems" (SOCS)
approximation — eq. (1)-(2) of the paper — diagonalizes the TCC and keeps the
``l`` largest eigenvalues ``alpha_k`` with eigenfunctions ``h_k``; the image is
then a weighted sum of coherent images.

This module builds the TCC numerically on a frequency grid from the optical
settings (source + pupil), eigendecomposes it and returns spatial-domain
kernels sampled at the mask pixel size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.fft

from .optics import OpticalSettings, pupil_function, source_points

__all__ = ["SOCSKernels", "compute_tcc_matrix", "generate_kernels"]


@dataclass(frozen=True)
class SOCSKernels:
    """A stack of SOCS kernels and their eigenvalues.

    Attributes
    ----------
    kernels:
        Complex array of shape ``(l, K, K)``: spatial-domain kernels sampled at
        ``pixel_size``.
    eigenvalues:
        The associated ``alpha_k`` weights, descending, length ``l``.
    pixel_size:
        Sampling pitch of the kernels in nm.
    settings:
        The optical settings the kernels were derived from.

    The stack also memoizes derived quantities that are expensive to rebuild on
    every simulation call: the frequency-domain *transfer functions* of the
    kernels at a given padded FFT shape (used by the batched aerial-image path
    in :mod:`repro.litho.hopkins`) and the clear-field intensity used for dose
    normalization.  The cache is keyed by FFT shape, so simulating many masks
    of the same size — the common case in the inference pipeline — pays the
    kernel FFTs exactly once.
    """

    kernels: np.ndarray
    eigenvalues: np.ndarray
    pixel_size: float
    settings: OpticalSettings
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def count(self) -> int:
        return int(self.kernels.shape[0])

    @property
    def support(self) -> int:
        """Kernel support size in pixels."""
        return int(self.kernels.shape[-1])

    def truncated(self, count: int) -> "SOCSKernels":
        """Keep only the ``count`` kernels with the largest eigenvalues."""
        count = min(count, self.count)
        return SOCSKernels(
            kernels=self.kernels[:count],
            eigenvalues=self.eigenvalues[:count],
            pixel_size=self.pixel_size,
            settings=self.settings,
        )

    # -- memoized derived quantities ----------------------------------- #
    def weighted_transfer_functions(self, fft_shape: tuple[int, int]) -> np.ndarray:
        """Frequency-domain kernels ``fft2(h_k)`` zero-padded to ``fft_shape``
        and pre-scaled by ``sqrt(alpha_k)``.

        These are the SOCS transfer functions reused across every mask in a
        batch by :func:`repro.litho.hopkins.aerial_image`: the mask is FFT'd
        once and multiplied against this stack instead of running one
        ``fftconvolve`` per kernel.  With the eigenvalue folded into the
        transfer function the SOCS sum reduces to a plain
        ``sum_k |field_k|^2`` — the aerial-image hot loop skips the
        per-kernel eigenvalue weighting entirely.  Kernels with non-positive
        eigenvalues contribute nothing and are dropped here, so the returned
        stack may be shorter than :attr:`count`.
        """
        key = ("wtf", int(fft_shape[0]), int(fft_shape[1]))
        if key not in self._cache:
            active = np.flatnonzero(self.eigenvalues > 0.0)
            weighted = scipy.fft.fft2(self.kernels[active], s=tuple(fft_shape), axes=(-2, -1))
            weighted *= np.sqrt(self.eigenvalues[active])[:, None, None]
            self._cache[key] = weighted
        return self._cache[key]

    def clear_field_intensity(self) -> float:
        """Aerial intensity of a fully transparent mask (memoized).

        Used to normalize aerial images so resist thresholds can be expressed
        as a fraction of the open-frame dose.
        """
        if "clear" not in self._cache:
            responses = self.kernels.sum(axis=(1, 2))
            self._cache["clear"] = float(np.sum(self.eigenvalues * np.abs(responses) ** 2))
        return self._cache["clear"]


def _frequency_grid(settings: OpticalSettings, grid_size: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Frequency sample coordinates covering the pupil passband."""
    f_max = settings.cutoff_frequency
    axis = np.linspace(-f_max, f_max, grid_size)
    fx, fy = np.meshgrid(axis, axis, indexing="ij")
    spacing = axis[1] - axis[0]
    return fx, fy, spacing


def compute_tcc_matrix(
    settings: OpticalSettings,
    grid_size: int = 21,
    source_samples: int = 17,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the TCC as a Hermitian matrix over the discretized pupil grid.

    Returns
    -------
    tcc:
        Hermitian matrix of shape ``(G, G)`` with ``G = grid_size ** 2``.
    fx, fy:
        The frequency coordinates of the grid (each of shape
        ``(grid_size, grid_size)``), needed to map eigenvectors back to
        spatial-domain kernels.
    """
    fx, fy, _ = _frequency_grid(settings, grid_size)
    points, weights = source_points(settings, source_samples)

    flat_fx = fx.reshape(-1)
    flat_fy = fy.reshape(-1)
    # Rows: source points; columns: pupil grid frequencies shifted by the source.
    shifted_fx = points[:, 0:1] + flat_fx[None, :]
    shifted_fy = points[:, 1:2] + flat_fy[None, :]
    pupil = pupil_function(shifted_fx, shifted_fy, settings)      # (S, G)
    weighted = pupil * weights[:, None]
    tcc = weighted.conj().T @ pupil                                # (G, G)
    # Enforce exact Hermitian symmetry against numerical noise.
    tcc = 0.5 * (tcc + tcc.conj().T)
    return tcc, fx, fy


def generate_kernels(
    settings: OpticalSettings | None = None,
    num_kernels: int = 12,
    pixel_size: float = 8.0,
    kernel_support: int = 35,
    grid_size: int = 21,
    source_samples: int = 17,
) -> SOCSKernels:
    """Generate SOCS kernels for the given optical settings.

    Parameters
    ----------
    settings:
        Optical configuration (defaults to the 193i annular setup).
    num_kernels:
        Number of eigenvalues/kernels to keep (``l`` in paper eq. (2)).
    pixel_size:
        Mask pixel size in nm at which the kernels are sampled.
    kernel_support:
        Spatial support of each kernel in pixels (odd; the kernel is centred).
    grid_size:
        Number of frequency samples per axis used to discretize the TCC.
    source_samples:
        Number of samples per axis used to discretize the source.
    """
    settings = settings or OpticalSettings()
    if kernel_support % 2 == 0:
        raise ValueError("kernel_support must be odd so the kernel has a centre pixel")

    tcc, fx, fy = compute_tcc_matrix(settings, grid_size, source_samples)
    eigenvalues, eigenvectors = np.linalg.eigh(tcc)
    # eigh returns ascending order; flip to descending.
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]

    num_kernels = min(num_kernels, eigenvalues.size)
    eigenvalues = np.clip(eigenvalues[:num_kernels], 0.0, None)
    eigenvectors = eigenvectors[:, :num_kernels]

    # Spatial sampling points of the kernel support, centred at zero.
    half = kernel_support // 2
    coords = (np.arange(kernel_support) - half) * pixel_size      # nm
    xx, yy = np.meshgrid(coords, coords, indexing="ij")

    flat_fx = fx.reshape(-1)
    flat_fy = fy.reshape(-1)
    # Inverse Fourier synthesis of each eigenvector onto the spatial grid:
    # h_k(x, y) = sum_f phi_k(f) exp(+i 2 pi (fx x + fy y)).
    phase = np.exp(
        2j * np.pi * (xx.reshape(-1, 1) * flat_fx[None, :] + yy.reshape(-1, 1) * flat_fy[None, :])
    )                                                              # (K*K, G)
    kernels = (phase @ eigenvectors).T.reshape(num_kernels, kernel_support, kernel_support)

    # Normalize so that the dominant kernel has unit L2 norm; fold the grid
    # measure into the eigenvalues instead of the kernels.
    norm = np.linalg.norm(kernels[0])
    if norm > 0:
        kernels = kernels / norm
        eigenvalues = eigenvalues * norm**2
    # Scale eigenvalues so that a fully open mask gives intensity ~1.0.
    return SOCSKernels(
        kernels=kernels,
        eigenvalues=eigenvalues,
        pixel_size=pixel_size,
        settings=settings,
    )
