"""Aerial-image computation with the SOCS approximation of the Hopkins model.

Implements paper eq. (2)/(3): the aerial intensity is the weighted sum of the
squared magnitudes of the mask convolved with each SOCS kernel,

``I(m, n) = sum_k alpha_k * | h_k (x) M |^2``.

Convolutions are computed with FFTs (``scipy.signal.fftconvolve``), which is
exactly the "move to Fourier space" optimization the paper describes.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve

from .kernels import SOCSKernels

__all__ = ["aerial_image", "clear_field_intensity"]


def clear_field_intensity(kernels: SOCSKernels) -> float:
    """Aerial intensity produced by a fully transparent (clear-field) mask.

    Used to normalize aerial images so resist thresholds can be expressed as a
    fraction of the open-frame dose, which is how resist models are calibrated
    in practice.
    """
    responses = kernels.kernels.sum(axis=(1, 2))
    intensity = float(np.sum(kernels.eigenvalues * np.abs(responses) ** 2))
    if intensity <= 0.0:
        raise ValueError("optical kernels produce zero clear-field intensity")
    return intensity


def aerial_image(
    mask: np.ndarray,
    kernels: SOCSKernels,
    normalize: bool = True,
    dose: float = 1.0,
) -> np.ndarray:
    """Compute the aerial image of a mask.

    Parameters
    ----------
    mask:
        2-D mask transmission image in [0, 1]; pixel pitch must equal
        ``kernels.pixel_size``.
    kernels:
        SOCS kernel stack from :func:`repro.litho.kernels.generate_kernels`.
    normalize:
        If true, divide by the clear-field intensity so a large open area has
        intensity 1.0.
    dose:
        Exposure dose multiplier (process-window exploration).

    Returns
    -------
    2-D non-negative intensity image of the same shape as ``mask``.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")

    intensity = np.zeros_like(mask)
    for eigenvalue, kernel in zip(kernels.eigenvalues, kernels.kernels):
        if eigenvalue <= 0.0:
            continue
        field = fftconvolve(mask, kernel, mode="same")
        intensity += eigenvalue * np.abs(field) ** 2

    if normalize:
        intensity = intensity / clear_field_intensity(kernels)
    return dose * intensity
