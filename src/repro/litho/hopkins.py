"""Aerial-image computation with the SOCS approximation of the Hopkins model.

Implements paper eq. (2)/(3): the aerial intensity is the weighted sum of the
squared magnitudes of the mask convolved with each SOCS kernel,

``I(m, n) = sum_k alpha_k * | h_k (x) M |^2``.

Convolutions are computed in the Fourier domain — exactly the "move to Fourier
space" optimization the paper describes — and the implementation is
**batch-first**: :func:`aerial_image` accepts a single mask ``(H, W)`` or a
stack of masks ``(N, H, W)``, computes **one** zero-padded FFT per mask and
reuses it across every SOCS kernel.  The kernels' frequency-domain transfer
functions are precomputed once per FFT shape and cached on
:class:`~repro.litho.kernels.SOCSKernels`, so simulating a stream of same-size
masks (the inference-pipeline hot path) costs ``1 + l`` transforms per mask
instead of the ``3 * l`` a per-kernel ``fftconvolve`` loop pays.

:func:`aerial_image_loop` retains the seed per-kernel ``fftconvolve``
algorithm; it is the reference the batched path is validated against (within
1e-8) and the baseline of ``benchmarks/bench_pipeline_throughput.py``.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import fft2, ifft2, next_fast_len
from scipy.signal import fftconvolve

from .kernels import SOCSKernels

__all__ = ["AerialWorkspace", "aerial_image", "aerial_image_loop", "clear_field_intensity"]

# Upper bound (bytes) on the complex field scratch array of one chunk.
# Small enough to stay cache-resident (a 128 MB scratch measured ~2x slower on
# 8-mask batches than a few MB), large enough to amortize the per-ifft2
# dispatch.
_CHUNK_BUDGET_BYTES = 4 * 1024 * 1024
# Per-mask budget that fixes the *kernel* chunking.  The kernel chunk size
# must not depend on the batch size: it sets the grouping of the SOCS
# accumulation ``sum_k |field_k|^2``, and a batch-dependent grouping would
# make results differ in the last ULP between a whole batch and its shards —
# breaking the worker pool's bit-identical-to-serial invariant.  Batching
# economy comes from grouping *masks* instead (mask sums are independent).
_MASK_CHUNK_BUDGET_BYTES = 1024 * 1024


class AerialWorkspace:
    """Reusable scratch buffers for the batched aerial-image hot loop.

    The per-chunk complex field product and the squared-magnitude scratch are
    the two big allocations :func:`aerial_image` repeats on every call; an
    executor that simulates a stream of same-size batches (the inference
    pipeline, one per worker process) hands the same workspace to every call
    so those buffers are allocated exactly once per (shape, dtype).

    Only scratch that is dead once the call returns lives here — the returned
    intensity is always freshly allocated, so callers can hold results across
    subsequent simulations.  The workspace deliberately pickles empty: buffers
    are per-process scratch, and shipping them to pool workers would only
    inflate the executor payload.
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def buffer(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """An uninitialized reusable buffer for ``key`` at ``shape``/``dtype``."""
        shape = tuple(int(s) for s in shape)
        cache_key = (key, shape, np.dtype(dtype).str)
        buf = self._buffers.get(cache_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[cache_key] = buf
        return buf

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self._buffers = {}


def clear_field_intensity(kernels: SOCSKernels) -> float:
    """Aerial intensity produced by a fully transparent (clear-field) mask.

    Used to normalize aerial images so resist thresholds can be expressed as a
    fraction of the open-frame dose, which is how resist models are calibrated
    in practice.  The value is memoized on the kernel stack.
    """
    intensity = kernels.clear_field_intensity()
    if intensity <= 0.0:
        raise ValueError("optical kernels produce zero clear-field intensity")
    return intensity


def _aerial_batch(
    masks: np.ndarray, kernels: SOCSKernels, workspace: AerialWorkspace | None = None
) -> np.ndarray:
    """Unnormalized aerial intensity of a mask batch ``(N, H, W)``.

    One padded FFT per mask, multiplied against the cached ``sqrt(alpha_k)``-
    weighted kernel transfer functions, so the SOCS sum is a plain
    ``sum_k |field_k|^2``; the crop offset ``(K - 1) // 2`` reproduces
    ``fftconvolve``'s ``mode="same"`` centring exactly, so the result matches
    the per-kernel loop to floating-point round-off.  With a ``workspace`` the
    chunked field product and magnitude scratch are written into preallocated
    buffers instead of being reallocated per chunk and per call.
    """
    n, h, w = masks.shape
    support = kernels.support
    fft_shape = (next_fast_len(h + support - 1), next_fast_len(w + support - 1))
    weighted = kernels.weighted_transfer_functions(fft_shape)    # (l+, Fh, Fw)

    intensity = np.zeros((n, h, w), dtype=np.float64)
    if weighted.shape[0] == 0:
        return intensity
    mask_hat = fft2(masks, s=fft_shape, axes=(-2, -1))           # (N, Fh, Fw)

    start = (support - 1) // 2
    rows = slice(start, start + h)
    cols = slice(start, start + w)

    # Fixed per-mask kernel chunk (accumulation grouping is batch-invariant);
    # masks are grouped so the live field scratch stays inside the budget.
    per_field_bytes = fft_shape[0] * fft_shape[1] * 16
    kernel_chunk = max(1, int(_MASK_CHUNK_BUDGET_BYTES // max(per_field_bytes, 1)))
    mask_group = max(1, int(_CHUNK_BUDGET_BYTES // max(kernel_chunk * per_field_bytes, 1)))
    for g0 in range(0, n, mask_group):
        group = slice(g0, min(g0 + mask_group, n))
        group_hat = mask_hat[group]
        for chunk_start in range(0, weighted.shape[0], kernel_chunk):
            block = weighted[chunk_start : chunk_start + kernel_chunk]
            if workspace is None:
                product = group_hat[:, None] * block[None]
            else:
                product = workspace.buffer(
                    "product", (group_hat.shape[0], block.shape[0], *fft_shape), np.complex128
                )
                np.multiply(group_hat[:, None], block[None], out=product)
            fields = ifft2(product, axes=(-2, -1), overwrite_x=True)[..., rows, cols]
            # |field|^2 via real^2 + imag^2 (avoids the sqrt inside np.abs).
            if workspace is None:
                magnitude = fields.real**2
                magnitude += fields.imag**2
            else:
                magnitude = workspace.buffer("magnitude", fields.shape, np.float64)
                scratch = workspace.buffer("magnitude2", fields.shape, np.float64)
                np.multiply(fields.real, fields.real, out=magnitude)
                np.multiply(fields.imag, fields.imag, out=scratch)
                magnitude += scratch
            intensity[group] += magnitude.sum(axis=1)
    return intensity


def aerial_image(
    mask: np.ndarray,
    kernels: SOCSKernels,
    normalize: bool = True,
    dose: float = 1.0,
    workspace: AerialWorkspace | None = None,
) -> np.ndarray:
    """Compute the aerial image of one mask or a batch of masks.

    Parameters
    ----------
    mask:
        Mask transmission image(s) in [0, 1]: either a single 2-D ``(H, W)``
        image or a batch ``(N, H, W)``.  The pixel pitch must equal
        ``kernels.pixel_size``.
    kernels:
        SOCS kernel stack from :func:`repro.litho.kernels.generate_kernels`.
    normalize:
        If true, divide by the clear-field intensity so a large open area has
        intensity 1.0.
    dose:
        Exposure dose multiplier (process-window exploration).
    workspace:
        Optional :class:`AerialWorkspace` whose scratch buffers are reused
        across calls (one per long-lived executor / worker process).

    Returns
    -------
    Non-negative intensity image(s) with the same leading shape as ``mask``:
    ``(H, W)`` for a single mask, ``(N, H, W)`` for a batch.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim == 2:
        batch = mask[None]
    elif mask.ndim == 3:
        batch = mask
    else:
        raise ValueError(f"mask must be 2-D or a 3-D batch, got shape {mask.shape}")

    intensity = _aerial_batch(batch, kernels, workspace)
    if normalize:
        intensity = intensity / clear_field_intensity(kernels)
    intensity *= dose
    return intensity[0] if mask.ndim == 2 else intensity


def aerial_image_loop(
    mask: np.ndarray,
    kernels: SOCSKernels,
    normalize: bool = True,
    dose: float = 1.0,
) -> np.ndarray:
    """Seed per-kernel ``fftconvolve`` algorithm (single 2-D mask only).

    Kept as the validation reference and micro-benchmark baseline for the
    batched frequency-domain path; ``tests/litho/test_hopkins_batch.py``
    asserts both agree within 1e-8.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")

    intensity = np.zeros_like(mask)
    for eigenvalue, kernel in zip(kernels.eigenvalues, kernels.kernels):
        if eigenvalue <= 0.0:
            continue
        field = fftconvolve(mask, kernel, mode="same")
        intensity += eigenvalue * np.abs(field) ** 2

    if normalize:
        intensity = intensity / clear_field_intensity(kernels)
    return dose * intensity
