"""Data augmentation transforms for mask/resist pairs.

Lithography is equivariant under the layout symmetries (mirror and 90-degree
rotations for a symmetric source), so the same transform is always applied to
both the mask and its resist label.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = ["Transform", "RandomFlip", "RandomRotate90", "Compose"]


class Transform(Protocol):
    """A joint transform on batched (mask, resist) arrays of shape (B, 1, H, W)."""

    def __call__(
        self, masks: np.ndarray, resists: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        ...


class RandomFlip:
    """Randomly mirror each sample horizontally and/or vertically."""

    def __init__(self, probability: float = 0.5) -> None:
        self.probability = probability

    def __call__(self, masks, resists, rng):
        masks = masks.copy()
        resists = resists.copy()
        for i in range(masks.shape[0]):
            if rng.random() < self.probability:
                masks[i] = masks[i, :, ::-1, :]
                resists[i] = resists[i, :, ::-1, :]
            if rng.random() < self.probability:
                masks[i] = masks[i, :, :, ::-1]
                resists[i] = resists[i, :, :, ::-1]
        return masks, resists


class RandomRotate90:
    """Randomly rotate each sample by a multiple of 90 degrees."""

    def __call__(self, masks, resists, rng):
        masks = masks.copy()
        resists = resists.copy()
        for i in range(masks.shape[0]):
            k = int(rng.integers(0, 4))
            if k:
                masks[i] = np.rot90(masks[i], k, axes=(1, 2))
                resists[i] = np.rot90(resists[i], k, axes=(1, 2))
        return masks, resists


class Compose:
    """Apply several transforms in sequence."""

    def __init__(self, *transforms: Transform) -> None:
        self.transforms = transforms

    def __call__(self, masks, resists, rng):
        for transform in self.transforms:
            masks, resists = transform(masks, resists, rng)
        return masks, resists
