"""Datasets of (mask image, resist image) training pairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["MaskResistDataset"]


@dataclass
class MaskResistDataset:
    """A set of mask/resist image pairs, stored as ``(N, 1, H, W)`` arrays.

    ``masks`` are the network inputs (OPC'ed mask images including SRAFs);
    ``resists`` are the golden simulator's printed contours (training labels).
    """

    masks: np.ndarray
    resists: np.ndarray
    name: str = "dataset"
    pixel_size: float = 8.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.masks = np.asarray(self.masks, dtype=np.float64)
        self.resists = np.asarray(self.resists, dtype=np.float64)
        if self.masks.ndim == 3:
            self.masks = self.masks[:, None]
        if self.resists.ndim == 3:
            self.resists = self.resists[:, None]
        if self.masks.shape != self.resists.shape:
            raise ValueError(
                f"mask/resist shape mismatch: {self.masks.shape} vs {self.resists.shape}"
            )
        if self.masks.ndim != 4:
            raise ValueError(f"expected (N, 1, H, W) arrays, got {self.masks.shape}")

    def __len__(self) -> int:
        return int(self.masks.shape[0])

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        return self.masks[index], self.resists[index]

    @property
    def image_size(self) -> int:
        return int(self.masks.shape[-1])

    @property
    def tile_area_um2(self) -> float:
        """Physical tile area in µm² (paper Table 1 reports 4 µm² / 64 µm²)."""
        side_nm = self.image_size * self.pixel_size
        return (side_nm / 1000.0) ** 2

    def subset(self, indices) -> "MaskResistDataset":
        return MaskResistDataset(
            masks=self.masks[indices],
            resists=self.resists[indices],
            name=self.name,
            pixel_size=self.pixel_size,
            metadata=dict(self.metadata),
        )

    def split(self, train_fraction: float, rng: np.random.Generator | None = None):
        """Random split into (train, test) datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            masks=self.masks,
            resists=self.resists,
            name=np.array(self.name),
            pixel_size=np.array(self.pixel_size),
        )
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @staticmethod
    def load(path: str | Path) -> "MaskResistDataset":
        with np.load(Path(path), allow_pickle=False) as archive:
            return MaskResistDataset(
                masks=archive["masks"],
                resists=archive["resists"],
                name=str(archive["name"]),
                pixel_size=float(archive["pixel_size"]),
            )
