"""Synthetic stand-ins for the paper's benchmark datasets (Table 1).

Each builder generates layouts with the corresponding design-rule family,
applies mask correction (rule-based retargeting plus SRAFs by default, or the
full iterative OPC engine), rasterizes the corrected masks and labels them with
the golden simulator.  The result mirrors the structure of Table 1:

=============  =========  ======  ==========  =================
Dataset        Train      Test    Tile size   Litho engine
=============  =========  ======  ==========  =================
ICCAD-2013     generated  10      4 µm²       golden simulator
ISPD-2019      generated  many    4 µm²       golden simulator
ISPD-2019-LT   —          10      64 µm²      golden simulator
N14            generated  dense   4 µm²       golden simulator
=============  =========  ======  ==========  =================

Sizes are configurable because a NumPy-on-CPU reproduction cannot train on
2000x2000 images; the defaults below keep the same tile structure at a reduced
resolution (see DESIGN.md, "Environment substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..layout.design_rules import DesignRules, rules_for
from ..layout.generators import generate_large_layout, generate_layout
from ..layout.geometry import Layout
from ..layout.rasterize import rasterize
from ..litho.simulator import LithoSimulator
from ..opc.engine import OPCConfig, OPCEngine, rule_based_retarget
from ..opc.sraf import insert_srafs
from .dataset import MaskResistDataset

__all__ = ["BenchmarkConfig", "BenchmarkData", "build_benchmark", "build_large_tile_benchmark"]


@dataclass(frozen=True)
class BenchmarkConfig:
    """Configuration of one synthetic benchmark family."""

    benchmark: str = "ispd2019"
    num_train: int = 64
    num_test: int = 16
    image_size: int = 128
    pixel_size: float = 8.0
    opc_mode: str = "rule"            # "rule", "iterative" or "none"
    retarget_bias: float = 16.0       # nm per side for rule-based OPC
    use_srafs: bool = True
    density_scale: float = 1.5
    opc_iterations: int = 8
    seed: int = 0

    @property
    def tile_size_nm(self) -> float:
        return self.image_size * self.pixel_size


@dataclass
class BenchmarkData:
    """Train and test splits of one benchmark plus its provenance."""

    train: MaskResistDataset
    test: MaskResistDataset
    config: BenchmarkConfig
    rules: DesignRules
    litho_engine: str = "hopkins-socs"

    @property
    def name(self) -> str:
        return self.config.benchmark


def _corrected_mask(
    layout: Layout, config: BenchmarkConfig, simulator: LithoSimulator
) -> np.ndarray:
    """Apply the configured mask-correction mode and rasterize the mask."""
    if config.opc_mode == "none":
        corrected = layout
        srafs = []
    elif config.opc_mode == "rule":
        corrected = rule_based_retarget(layout, bias=config.retarget_bias)
        srafs = insert_srafs(layout) if config.use_srafs else []
    elif config.opc_mode == "iterative":
        engine = OPCEngine(
            simulator,
            OPCConfig(
                iterations=config.opc_iterations,
                use_srafs=config.use_srafs,
                record_history=False,
            ),
        )
        return engine.correct(layout).final_mask
    else:
        raise ValueError(f"unknown opc_mode '{config.opc_mode}'")

    mask_layout = Layout(bounds=layout.bounds, shapes=list(corrected.shapes) + list(srafs))
    return rasterize(mask_layout, pixel_size=config.pixel_size, image_size=config.image_size)


def _build_samples(
    count: int,
    rules: DesignRules,
    config: BenchmarkConfig,
    simulator: LithoSimulator,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    masks = np.empty((count, config.image_size, config.image_size), dtype=np.float64)
    resists = np.empty_like(masks)
    for i in range(count):
        layout = generate_layout(
            rules, rng, tile_size=config.tile_size_nm, density_scale=config.density_scale
        )
        mask = _corrected_mask(layout, config, simulator)
        masks[i] = mask
        resists[i] = simulator.resist_image(mask)
    return masks, resists


def build_benchmark(
    config: BenchmarkConfig | None = None, simulator: LithoSimulator | None = None
) -> BenchmarkData:
    """Build the train/test splits of one benchmark family."""
    config = config or BenchmarkConfig()
    rules = rules_for(config.benchmark)
    simulator = simulator or LithoSimulator(pixel_size=config.pixel_size)
    if simulator.pixel_size != config.pixel_size:
        raise ValueError("simulator pixel size must match the benchmark configuration")
    rng = np.random.default_rng(config.seed)

    train_masks, train_resists = _build_samples(config.num_train, rules, config, simulator, rng)
    test_masks, test_resists = _build_samples(config.num_test, rules, config, simulator, rng)

    metadata = {"benchmark": config.benchmark, "opc_mode": config.opc_mode}
    train = MaskResistDataset(
        train_masks, train_resists, name=f"{config.benchmark}-train",
        pixel_size=config.pixel_size, metadata=metadata,
    )
    test = MaskResistDataset(
        test_masks, test_resists, name=f"{config.benchmark}-test",
        pixel_size=config.pixel_size, metadata=metadata,
    )
    return BenchmarkData(train=train, test=test, config=config, rules=rules)


def build_large_tile_benchmark(
    config: BenchmarkConfig | None = None,
    simulator: LithoSimulator | None = None,
    num_tiles: int = 4,
    scale: int = 2,
) -> MaskResistDataset:
    """Build the ISPD-2019-LT-style large-tile evaluation set.

    Each tile is ``scale`` times larger (per side) than the training tile of
    ``config`` and uses an above-nominal via density, matching the paper's
    "ten most dense 64 µm² tiles".
    """
    config = config or BenchmarkConfig()
    rules = rules_for(config.benchmark)
    simulator = simulator or LithoSimulator(pixel_size=config.pixel_size)
    rng = np.random.default_rng(config.seed + 1)

    image_size = config.image_size * scale
    masks = np.empty((num_tiles, image_size, image_size), dtype=np.float64)
    resists = np.empty_like(masks)
    for i in range(num_tiles):
        layout = generate_large_layout(
            DesignRules(
                name=rules.name,
                layer_type=rules.layer_type,
                tile_size=config.tile_size_nm,
                min_width=rules.min_width,
                min_space=rules.min_space,
                pitch=rules.pitch,
                via_size=rules.via_size,
                max_wire_length=rules.max_wire_length,
                target_density=rules.target_density,
            ),
            rng,
            scale=scale,
            density_scale=config.density_scale * 1.2,
        )
        if config.opc_mode == "iterative":
            # The OPC engine rasterizes at the layout's own (scaled) size.
            mask = _corrected_mask(layout, config, simulator)
        else:
            corrected = (
                rule_based_retarget(layout, bias=config.retarget_bias)
                if config.opc_mode == "rule"
                else layout
            )
            srafs = insert_srafs(layout) if (config.use_srafs and config.opc_mode == "rule") else []
            mask_layout = Layout(bounds=layout.bounds, shapes=list(corrected.shapes) + list(srafs))
            mask = rasterize(mask_layout, pixel_size=config.pixel_size, image_size=image_size)
        masks[i] = mask
        resists[i] = simulator.resist_image(mask)

    return MaskResistDataset(
        masks,
        resists,
        name=f"{config.benchmark}-lt",
        pixel_size=config.pixel_size,
        metadata={"benchmark": config.benchmark, "scale": scale},
    )
