"""Datasets, loaders and synthetic benchmark builders."""

from .benchmarks import BenchmarkConfig, BenchmarkData, build_benchmark, build_large_tile_benchmark
from .dataloader import DataLoader
from .dataset import MaskResistDataset
from .transforms import Compose, RandomFlip, RandomRotate90

__all__ = [
    "MaskResistDataset",
    "DataLoader",
    "BenchmarkConfig",
    "BenchmarkData",
    "build_benchmark",
    "build_large_tile_benchmark",
    "Compose",
    "RandomFlip",
    "RandomRotate90",
]
