"""Minibatch iteration over a :class:`MaskResistDataset`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .dataset import MaskResistDataset
from .transforms import Transform

__all__ = ["DataLoader"]


class DataLoader:
    """Yield ``(mask_batch, resist_batch)`` arrays of shape ``(B, 1, H, W)``.

    Mirrors the PyTorch loader semantics used in the paper's training recipe
    (batch size 16, shuffling every epoch).
    """

    def __init__(
        self,
        dataset: MaskResistDataset,
        batch_size: int = 16,
        shuffle: bool = True,
        drop_last: bool = False,
        transform: Transform | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            masks = self.dataset.masks[indices]
            resists = self.dataset.resists[indices]
            if self.transform is not None:
                masks, resists = self.transform(masks, resists, self.rng)
            yield masks, resists
