"""Parallel worker-pool execution backend for the inference pipeline.

:class:`WorkerPoolExecutor` wraps any :class:`~repro.pipeline.executors.Executor`
and shards its batches across a multiprocessing pool so full-chip streams
scale past one core:

* **Shared-memory transport** — inputs are copied once into POSIX shared
  memory (:mod:`multiprocessing.shared_memory`); workers map them zero-copy,
  compute their chunk, and write the result directly into a shared output
  buffer.  No mask or prediction array is ever pickled through a pipe.
* **Persistent streaming ring** (default) — the input/output segments live in
  a :class:`~repro.pipeline.streaming.SegmentRing` that persists across
  executor invocations, so consecutive pipeline calls (OPC iteration loops,
  full-chip tile streams) reuse the mapped segments instead of paying a fresh
  ``shm_open`` + ``mmap`` per call.  Slots are generation-tagged: workers
  cache their mapping per slot and remap only when the parent regrew a slot
  for a larger geometry.  ``streaming=False`` (or ``REPRO_STREAMING=0``)
  restores the per-call transport, which the throughput bench uses as its
  baseline.
* **Guaranteed segment teardown** — every segment (streaming or per-call)
  is tracked by the :mod:`~repro.pipeline.streaming` registry: per-call
  segments are released in a ``try``/``finally`` even when a worker raises
  mid-batch, ring segments are released by :meth:`WorkerPoolExecutor.close`,
  and whatever is still live at interpreter exit is unlinked by the
  registry's ``atexit`` hook — ``/dev/shm`` never accumulates stale
  ``repro`` segments.
* **Chunked work queue** — each executor invocation is split into
  ``chunk_size`` slices (default: an even split over the workers) that the
  pool drains as a queue, so stragglers don't serialize the batch.
* **Ordered reassembly** — every chunk writes its half-open ``[start, stop)``
  slice of the shared output, so results come back in input order by
  construction, bit-identical to the serial path.
* **Supervised dispatch** — chunks are fanned out through a
  :class:`~repro.pipeline.supervision.SupervisedPool` that monitors worker
  liveness (pipe + process sentinel, optional per-chunk deadline from
  :class:`~repro.pipeline.supervision.RetryPolicy`), classifies failures
  (remote exception / hard crash / hang), retries failed chunks with bounded
  backoff, respawns dead workers, and — when the pool is irrecoverable or
  retries are exhausted — recomputes the remaining chunks in-process through
  the wrapped executor, emitting a
  :class:`~repro.pipeline.supervision.PoolDegradedWarning` instead of failing
  the stream.  Because every chunk owns its output slice, a retried or
  degraded chunk is bit-identical by construction.  Cumulative counters live
  on :attr:`WorkerPoolExecutor.robustness` and surface per-run on
  ``PipelineStats``.
* **Error propagation** — when degradation is off, exhausted chunks raise a
  structured :class:`WorkerPoolError` carrying the method, every failed
  chunk's bounds and attempt counts, and *all* remote tracebacks.
* **Deterministic chaos testing** — a
  :class:`~repro.pipeline.faults.FaultPlan` (``fault_plan=`` /
  ``REPRO_FAULT_PLAN``) injects raise / ``os._exit`` / SIGKILL / hang faults
  at exact (call, chunk, attempt) coordinates inside :func:`_run_chunk`.
* **Clean shutdown** — the pool is created lazily on first parallel run and
  torn down by :meth:`WorkerPoolExecutor.close` (also a context manager, also
  best-effort on garbage collection), which releases the streaming ring too.
  Teardown is guarded step by step so interpreter-shutdown races (worker
  handles already reaped) never mask the original error.

``num_workers <= 1`` (and single-item batches) degrade to the wrapped
executor's in-process path, so a pipeline with the knob left at zero behaves
exactly as before.  The worker count resolves from, in order: an explicit
``num_workers`` argument, the ``REPRO_NUM_WORKERS`` environment variable, or
0 (serial).  The streaming knob resolves the same way from ``streaming`` /
``REPRO_STREAMING`` / on, and the supervision knobs from ``retry`` /
``REPRO_WORKER_TIMEOUT`` + ``REPRO_WORKER_RETRIES`` + ``REPRO_DEGRADE`` /
their defaults (see ``docs/configuration.md`` for the full catalogue).
"""

from __future__ import annotations

import math
import multiprocessing as mp
import sys
import traceback
import warnings
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .. import knobs
from ..nn.backends import resolve_blas_threads, set_blas_threads
from .executors import Executor, as_executor
from .faults import FaultPlan, resolve_fault_plan
from .streaming import SegmentRing, create_segment, release_segment, resolve_streaming
from .supervision import (
    PoolDegradedWarning,
    RetryPolicy,
    RobustnessCounters,
    SupervisedPool,
    resolve_retry_policy,
)

__all__ = [
    "NUM_WORKERS_ENV",
    "ParallelConfig",
    "PoolDegradedWarning",
    "RetryPolicy",
    "RobustnessCounters",
    "WorkerPoolError",
    "WorkerPoolExecutor",
    "resolve_num_workers",
    "resolve_retry_policy",
]

#: Environment variable consulted when no explicit worker count is given, so
#: every pipeline consumer (benchmarks, experiment drivers, examples) can be
#: parallelized without threading a flag through its call chain.
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"


def resolve_num_workers(num_workers: int | None = None) -> int:
    """Resolve a worker count: explicit argument > ``REPRO_NUM_WORKERS`` > 0."""
    if num_workers is None:
        num_workers = knobs.read_int(NUM_WORKERS_ENV, minimum=0)
        if num_workers is None:
            return 0
    num_workers = int(num_workers)
    if num_workers < 0:
        raise ValueError(f"num_workers must be >= 0, got {num_workers}")
    return num_workers


@dataclass(frozen=True)
class ParallelConfig:
    """Parallel-execution knobs threaded through every pipeline consumer.

    ``num_workers``: worker processes; ``None`` defers to ``REPRO_NUM_WORKERS``
    (then 0), and values <= 1 mean serial in-process execution.
    ``chunk_size``: items per work-queue chunk; ``None`` splits each batch
    evenly over the workers.
    ``streaming``: reuse shared-memory segments across pipeline calls via the
    persistent ring; ``None`` defers to ``REPRO_STREAMING`` (then on), and
    ``False`` restores the per-call segment transport.
    ``retry``: supervision knobs (per-chunk deadline, retry budget, graceful
    degradation) as a :class:`~repro.pipeline.supervision.RetryPolicy`;
    ``None`` defers to ``REPRO_WORKER_TIMEOUT`` / ``REPRO_WORKER_RETRIES`` /
    ``REPRO_DEGRADE`` (then the policy defaults).
    ``blas_threads``: BLAS thread cap applied inside each pool worker (and to
    the parent when serial); ``None`` defers to ``REPRO_BLAS_THREADS``, then
    1-per-worker when pooled / leave-the-library-alone (0) when serial, so
    ``workers x BLAS threads`` never oversubscribes by default (see
    :mod:`repro.nn.backends` and ``docs/configuration.md``).
    """

    num_workers: int | None = None
    chunk_size: int | None = None
    streaming: bool | None = None
    retry: RetryPolicy | None = None
    blas_threads: int | None = None

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.blas_threads is not None and self.blas_threads < 0:
            raise ValueError(f"blas_threads must be >= 0, got {self.blas_threads}")

    def resolved_workers(self) -> int:
        return resolve_num_workers(self.num_workers)

    def resolved_streaming(self) -> bool:
        return resolve_streaming(self.streaming)

    def resolved_retry(self) -> RetryPolicy:
        return resolve_retry_policy(self.retry)

    def resolved_blas_threads(self) -> int:
        return resolve_blas_threads(self.blas_threads, self.resolved_workers())


class WorkerPoolError(RuntimeError):
    """Worker chunks failed terminally and degradation was off (or impossible).

    Structured: ``method`` names the executor method, ``failures`` holds one
    :class:`~repro.pipeline.supervision.ChunkFailure` per exhausted chunk —
    output-slice bounds, attempt count, failure kind, and the full history of
    every attempt's remote traceback / death detail.  The message renders all
    of it, so multi-chunk failures no longer drop diagnostics.
    """

    def __init__(self, message: str, *, executor: str = "", method: str = "",
                 failures: tuple = ()):
        super().__init__(message)
        self.executor = executor
        self.method = method
        self.failures = tuple(failures)

    @classmethod
    def from_failures(cls, executor: str, method: str, failures) -> "WorkerPoolError":
        failures = tuple(failures)
        lines = [f"{len(failures)} worker chunk(s) of {executor}.{method} failed"]
        for failure in failures:
            lines.append(
                f"chunk {failure.chunk} [{failure.start}:{failure.stop}) "
                f"{failure.kind} after {failure.attempts} attempt(s):"
            )
            for attempt, (kind, detail) in enumerate(failure.history):
                lines.append(f"  attempt {attempt} ({kind}):")
                lines.extend("    " + line for line in detail.rstrip().splitlines())
        return cls("\n".join(lines), executor=executor, method=method, failures=failures)


# ---------------------------------------------------------------------- #
# Worker-process side
# ---------------------------------------------------------------------- #
_WORKER_EXECUTOR: Executor | None = None

#: Worker-side half of the streaming ring: ``role -> (segment name,
#: generation, mapped SharedMemory)``.  A mapping is reused as long as the
#: parent's slot keeps its (name, generation) tag and remapped when the slot
#: was regrown, so steady-state streaming tasks touch no ``shm_open`` at all.
_WORKER_SEGMENTS: dict[str, tuple[str, int, shared_memory.SharedMemory]] = {}

#: Worker-side fault plan (chaos testing only; ``None`` in production).
_WORKER_FAULTS: FaultPlan | None = None


def _init_worker(
    executor: Executor, fault_plan: FaultPlan | None = None, blas_threads: int = 0
) -> None:
    global _WORKER_EXECUTOR, _WORKER_FAULTS
    _WORKER_EXECUTOR = executor
    _WORKER_FAULTS = fault_plan
    _WORKER_SEGMENTS.clear()
    if blas_threads:
        # Runtime ctypes call, not an env var: under the fork start method
        # the BLAS library is already initialized when the worker starts, so
        # OPENBLAS_NUM_THREADS would be read too late to retune it.
        set_blas_threads(blas_threads)


def _map_segment(spec, transient: list) -> shared_memory.SharedMemory:
    """Map one buffer spec; cache persistent slots, track per-call ones."""
    role, name, generation, _shape, _dtype, persistent = spec
    if not persistent:
        shm = shared_memory.SharedMemory(name=name)
        transient.append(shm)
        return shm
    cached = _WORKER_SEGMENTS.get(role)
    if cached is not None:
        if cached[0] == name and cached[1] == generation:
            return cached[2]
        try:  # the parent regrew this slot: drop the stale mapping
            cached[2].close()
        except BufferError:  # pragma: no cover - views from an aborted task
            pass
    shm = shared_memory.SharedMemory(name=name)
    _WORKER_SEGMENTS[role] = (name, generation, shm)
    return shm


def _execute_chunk(task) -> None:
    method, inputs, output, start, stop = task[:5]
    transient: list = []
    try:
        views = []
        for spec in inputs:
            shm = _map_segment(spec, transient)
            views.append(np.ndarray(spec[3], dtype=spec[4], buffer=shm.buf)[start:stop])
        out_shm = _map_segment(output, transient)
        out = np.ndarray(output[3], dtype=output[4], buffer=out_shm.buf)
        out[start:stop] = getattr(_WORKER_EXECUTOR, method)(*views)
        # Drop the array views before closing: a SharedMemory mapping cannot
        # close while ndarrays still export its buffer.
        del views, out
    finally:
        for shm in transient:
            try:
                shm.close()
            except BufferError:
                pass  # failure path: views still alive; freed with the frame


def _run_chunk(task, attempt: int = 0) -> str | None:
    """Pool entry point: returns ``None`` on success, a traceback on failure.

    Tasks carry ``(call, chunk)`` coordinates as their sixth element; a
    configured fault plan fires here, before the chunk executes, so injected
    chaos is deterministic per (call, chunk, attempt).
    """
    try:
        if _WORKER_FAULTS is not None:
            call, chunk = task[5]
            _WORKER_FAULTS.inject(call, chunk, attempt)
        _execute_chunk(task)
        return None
    # repro: ok(EXC001, worker-side failure classification: every failure is serialized as a traceback string so the supervisor can retry or degrade)
    except BaseException:
        return traceback.format_exc()


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class WorkerPoolExecutor(Executor):
    """Shard any executor's batches across a multiprocessing pool.

    The wrapped executor is shipped to each worker once (pool initializer);
    per-call traffic is pure shared memory — and with the default streaming
    transport, the shared segments themselves persist across calls.  The
    first call for each ``(method, item shape)`` runs one item in-process to
    learn the output spec (and warm the parent's caches); afterwards every
    batch is fully sharded.  All capability flags and the stitching hooks of
    the wrapped executor are proxied, so the pipeline's planner sees no
    difference between a serial and a pooled engine.
    """

    def __init__(
        self,
        engine,
        num_workers: int | None = None,
        chunk_size: int | None = None,
        config: ParallelConfig | None = None,
        streaming: bool | None = None,
        retry: RetryPolicy | None = None,
        fault_plan: "FaultPlan | str | None" = None,
        supervised: bool = True,
        blas_threads: int | None = None,
    ) -> None:
        if config is not None:
            num_workers = config.num_workers if num_workers is None else num_workers
            chunk_size = config.chunk_size if chunk_size is None else chunk_size
            streaming = config.streaming if streaming is None else streaming
            retry = config.retry if retry is None else retry
            blas_threads = config.blas_threads if blas_threads is None else blas_threads
        config = ParallelConfig(
            num_workers=num_workers, chunk_size=chunk_size, streaming=streaming,
            retry=retry, blas_threads=blas_threads,
        )
        inner = as_executor(engine)
        if isinstance(inner, WorkerPoolExecutor):
            raise TypeError("cannot nest WorkerPoolExecutor inside WorkerPoolExecutor")
        self.inner = inner
        self.num_workers = config.resolved_workers()
        self.chunk_size = config.chunk_size
        self.streaming = config.resolved_streaming()
        self.retry = config.resolved_retry()
        self.blas_threads = config.resolved_blas_threads()
        self.fault_plan = resolve_fault_plan(fault_plan)
        # supervised=False keeps the blind pool.map dispatch of the pre-
        # supervision pipeline alive as the bench baseline (no monitoring, no
        # retry, no degradation) — production callers never turn this off.
        self.supervised = bool(supervised)
        self.robustness = RobustnessCounters()
        self.name = (
            f"{inner.name}[workers={self.num_workers}]" if self.num_workers > 1 else inner.name
        )
        self._pool = None
        self._ring: SegmentRing | None = None
        self._output_specs: dict = {}
        self._call_index = 0

    # -- capability proxies -------------------------------------------- #
    @property
    def arbitrary_size(self) -> bool:
        return self.inner.arbitrary_size

    @property
    def supports_stitching(self) -> bool:
        return self.inner.supports_stitching

    @property
    def pool_factor(self) -> int:
        return self.inner.pool_factor

    @property
    def compiled(self) -> bool:
        """Whether the wrapped executor runs a compiled fused graph."""
        return getattr(self.inner, "compiled", False)

    @property
    def backend(self):
        """Compute backend of the wrapped executor (None for simulators)."""
        return getattr(self.inner, "backend", None)

    # -- executor interface -------------------------------------------- #
    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        return self._run("run_batch", (batch,))

    def run_gp(self, tiles: np.ndarray) -> np.ndarray:
        return self._run("run_gp", (tiles,))

    def run_reconstruction(self, gp: np.ndarray, masks: np.ndarray) -> np.ndarray:
        return self._run("run_reconstruction", (gp, masks))

    def run_aerial(self, tiles: np.ndarray) -> np.ndarray:
        """Sharded window aerials for the incremental patched plan.

        Only defined when the wrapped executor has the simulator patch hooks;
        raising :class:`AttributeError` otherwise keeps ``hasattr`` probing on
        the pooled executor faithful to the inner one.
        """
        if not hasattr(self.inner, "run_aerial"):
            raise AttributeError(f"{self.inner.name} has no run_aerial hook")
        return self._run("run_aerial", (tiles,))

    @property
    def influence_radius(self) -> int:
        return self.inner.influence_radius

    def finalize_patched(self, array: np.ndarray) -> np.ndarray:
        """Finalize the cached map in-process (pointwise; not worth sharding)."""
        return self.inner.finalize_patched(array)

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Shut the pool down and release the streaming ring (idempotent).

        Both respawn transparently on the next parallel run, so ``close`` can
        be called between streams to return the shared memory to the OS.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.close()
                if not isinstance(pool, SupervisedPool):
                    # mp.Pool (blind baseline) needs the explicit join; during
                    # interpreter shutdown its worker handler may already be
                    # reaped, and a secondary error here would mask the real
                    # one — swallow it.
                    pool.join()
            # repro: ok(EXC001, best-effort pool teardown at interpreter shutdown; see comment above)
            except Exception:
                pass
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __enter__(self) -> "WorkerPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        # repro: ok(EXC001, __del__ runs during interpreter shutdown where half the module graph may be gone; nothing can be reported)
        except Exception:
            pass

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None  # pools are per-process
        state["_ring"] = None  # ring segments are owned by the creating process
        return state

    # -- sharded execution ---------------------------------------------- #
    def _run(self, method: str, arrays: tuple) -> np.ndarray:
        fn = getattr(self.inner, method)
        batch = arrays[0].shape[0]
        if self.num_workers <= 1 or batch < 2:
            return fn(*arrays)

        arrays = tuple(np.ascontiguousarray(a) for a in arrays)
        spec_key = (
            method,
            tuple(a.shape[1:] for a in arrays),
            tuple(a.dtype.str for a in arrays),
        )
        spec = self._output_specs.get(spec_key)
        first = None
        lead = 0
        if spec is None:
            # Probe one item in-process to learn the output spec; cached, so
            # every later batch of this shape is sharded end to end.
            first = fn(*(a[:1] for a in arrays))
            spec = (tuple(first.shape[1:]), first.dtype)
            self._output_specs[spec_key] = spec
            lead = 1
        item_shape, out_dtype = spec
        out_shape = (batch, *item_shape)
        out_nbytes = int(np.prod(out_shape, dtype=np.int64)) * out_dtype.itemsize

        chunk = self.chunk_size or math.ceil((batch - lead) / self.num_workers)
        bounds = [(s, min(s + chunk, batch)) for s in range(lead, batch, chunk)]

        if self.streaming:
            return self._run_ring(method, arrays, out_shape, out_dtype, out_nbytes, first, bounds)
        return self._run_per_call(method, arrays, out_shape, out_dtype, out_nbytes, first, bounds)

    def _dispatch(
        self, method: str, inputs: list, output: tuple, bounds: list, fallback,
    ) -> None:
        """Fan the chunk tasks out under supervision; heal or raise structured.

        ``fallback(start, stop)`` recomputes one chunk in-process through the
        wrapped executor (the transports build it over their live output
        view), which is what graceful degradation runs when the pool gives a
        chunk up.
        """
        call = self._call_index
        self._call_index += 1
        tasks = [
            (method, inputs, output, start, stop, (call, index))
            for index, (start, stop) in enumerate(bounds)
        ]
        if not self.supervised:
            failures = [tb for tb in self._ensure_pool().map(_run_chunk, tasks) if tb]
            if failures:
                raise WorkerPoolError(
                    f"{len(failures)} worker chunk(s) of {self.name}.{method} failed; "
                    "first remote traceback:\n" + failures[0],
                    executor=self.name,
                    method=method,
                )
            return
        report = self._ensure_pool().run(
            tasks, self.retry, fallback=lambda task: fallback(task[3], task[4])
        )
        pool = self._pool
        if pool is not None and pool.broken:
            # Irrecoverable: tear it down now so the next call rebuilds a
            # fresh pool instead of re-degrading forever.
            pool.close()
            self._pool = None
        counters = self.robustness
        counters.chunks_retried += report.retried
        counters.workers_respawned += report.respawned
        if self.fault_plan is not None:
            counters.fault_events += sum(
                self.fault_plan.events_for(call, index, attempts)
                for index, attempts in enumerate(report.attempts)
            )
        for failure in report.degraded + report.failed:
            failure.start, failure.stop = bounds[failure.chunk]
        if report.degraded:
            counters.degraded_runs += 1
            chunks = tuple(bounds[failure.chunk] for failure in report.degraded)
            warnings.warn(
                PoolDegradedWarning(
                    f"{len(report.degraded)} worker chunk(s) of "
                    f"{self.name}.{method} exhausted the pool (retries/respawns "
                    "spent); recomputed in-process through the wrapped executor",
                    method=method,
                    chunks=chunks,
                    failures=report.degraded,
                ),
                stacklevel=4,
            )
        if report.failed:
            raise WorkerPoolError.from_failures(self.name, method, report.failed)

    def _run_ring(
        self, method: str, arrays: tuple, out_shape: tuple, out_dtype, out_nbytes: int,
        first: np.ndarray | None, bounds: list,
    ) -> np.ndarray:
        """Streaming transport: copy into the persistent ring, dispatch, copy out.

        Slots survive this call — an error leaves them owned by the ring (torn
        down by ``close()`` or the registry's atexit hook), never stale in
        ``/dev/shm``.
        """
        ring = self._ensure_ring()
        inputs = []
        for index, a in enumerate(arrays):
            slot = ring.acquire(f"in{index}", a.nbytes)
            np.ndarray(a.shape, dtype=a.dtype, buffer=slot.shm.buf)[:] = a
            inputs.append((slot.role, slot.shm.name, slot.generation, a.shape, a.dtype.str, True))
        out_slot = ring.acquire("out", out_nbytes)
        out_view = np.ndarray(out_shape, dtype=out_dtype, buffer=out_slot.shm.buf)
        if first is not None:
            out_view[:1] = first
        output = (out_slot.role, out_slot.shm.name, out_slot.generation, out_shape, out_dtype.str, True)
        inner_fn = getattr(self.inner, method)

        def fallback(start: int, stop: int) -> None:
            out_view[start:stop] = inner_fn(*(a[start:stop] for a in arrays))

        try:
            self._dispatch(method, inputs, output, bounds, fallback)
            return out_view.copy()
        finally:
            # Release the parent's array view so a later regrow/close can
            # unmap the slot (a mapping cannot close under a live ndarray).
            del out_view

    def _run_per_call(
        self, method: str, arrays: tuple, out_shape: tuple, out_dtype, out_nbytes: int,
        first: np.ndarray | None, bounds: list,
    ) -> np.ndarray:
        """Per-call transport: fresh segments, released in ``finally`` always.

        Segments additionally sit in the streaming registry between creation
        and release, so even a parent death mid-call cannot strand them past
        interpreter exit.
        """
        segments = []
        try:
            inputs = []
            for index, a in enumerate(arrays):
                shm = create_segment(a.nbytes)
                segments.append(shm)
                np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf)[:] = a
                inputs.append((f"in{index}", shm.name, 0, a.shape, a.dtype.str, False))
            out_shm = create_segment(out_nbytes)
            segments.append(out_shm)
            out_view = np.ndarray(out_shape, dtype=out_dtype, buffer=out_shm.buf)
            if first is not None:
                out_view[:1] = first
            output = ("out", out_shm.name, 0, out_shape, out_dtype.str, False)
            inner_fn = getattr(self.inner, method)

            def fallback(start: int, stop: int) -> None:
                out_view[start:stop] = inner_fn(*(a[start:stop] for a in arrays))

            self._dispatch(method, inputs, output, bounds, fallback)
            result = out_view.copy()
            del out_view
            return result
        finally:
            for shm in segments:
                release_segment(shm)

    def _ensure_ring(self) -> SegmentRing:
        if self._ring is None:
            self._ring = SegmentRing()
        return self._ring

    def _ensure_pool(self):
        if self._pool is None:
            # fork is the cheap path (no re-import, no executor pickling) but
            # is only safe on Linux: macOS system frameworks and a forked
            # BLAS/pthread state can crash or deadlock children, which is why
            # CPython's default start method is spawn there.
            methods = mp.get_all_start_methods()
            use_fork = sys.platform.startswith("linux") and "fork" in methods
            ctx = mp.get_context("fork" if use_fork else "spawn")
            if self.supervised:
                self._pool = SupervisedPool(
                    self.num_workers,
                    _run_chunk,
                    initializer=_init_worker,
                    initargs=(self.inner, self.fault_plan, self.blas_threads),
                    context=ctx,
                )
            else:
                self._pool = ctx.Pool(
                    processes=self.num_workers,
                    initializer=_init_worker,
                    initargs=(self.inner, self.fault_plan, self.blas_threads),
                )
        return self._pool
