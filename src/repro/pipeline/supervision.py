"""Supervised worker pool: liveness monitoring, retry, respawn, degradation.

`multiprocessing.Pool.map` is *blind*: a worker that segfaults, is OOM-killed
or hangs either deadlocks the parent forever or surfaces as an opaque
``multiprocessing`` internal error.  :class:`SupervisedPool` replaces it for
the chunked dispatch in :mod:`repro.pipeline.parallel` with machinery a
long-lived serving process can actually depend on:

* **per-chunk async dispatch** — every worker owns one duplex pipe and one
  explicitly assigned in-flight chunk, so a dead worker's chunk is known
  exactly (no shared task queue, no claim-attribution races);
* **liveness monitoring** — the parent blocks in
  ``multiprocessing.connection.wait`` over result pipes *and* process
  sentinels, so a hard crash wakes it immediately, and an optional per-chunk
  deadline (:attr:`RetryPolicy.timeout`) converts a hang into a kill;
* **failure classification** — ``exception`` (worker survived and returned
  the remote traceback), ``crash`` (process died: exit code / signal), or
  ``hang`` (deadline exceeded, worker killed);
* **chunk retry** — failed chunks are re-dispatched up to
  :attr:`RetryPolicy.max_retries` with bounded exponential backoff; because
  every chunk owns a half-open ``[start, stop)`` output slice, a retry is
  bit-identical by construction;
* **worker respawn** — dead workers are replaced (bounded by a per-run
  respawn budget so a poisoned input cannot fork-bomb the host); past the
  budget the pool is marked ``broken``;
* **graceful degradation** — when retries are exhausted or the pool is
  irrecoverable and :attr:`RetryPolicy.degrade` is set, the caller-supplied
  fallback recomputes the chunk in-process and the run completes with a
  :class:`PoolDegradedWarning` instead of failing the stream.

The pool is transport-agnostic: it moves opaque task tuples, and the chunk
runner / fallback own all shared-memory details.  Retry/deadline knobs come
from :class:`RetryPolicy` (``REPRO_WORKER_TIMEOUT`` / ``REPRO_WORKER_RETRIES``
/ ``REPRO_DEGRADE``; see ``docs/configuration.md``).
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field, replace
from multiprocessing import connection

from .. import knobs

__all__ = [
    "DEGRADE_ENV",
    "WORKER_RETRIES_ENV",
    "WORKER_TIMEOUT_ENV",
    "ChunkFailure",
    "DispatchReport",
    "PoolDegradedWarning",
    "RetryPolicy",
    "RobustnessCounters",
    "SupervisedPool",
    "resolve_retry_policy",
]

WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"
WORKER_RETRIES_ENV = "REPRO_WORKER_RETRIES"
DEGRADE_ENV = "REPRO_DEGRADE"

DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs for the pooled dispatch.

    ``None`` fields defer to the environment (then to the defaults) at
    resolution time — the same explicit-argument > env > default precedence
    every other pipeline knob uses:

    * ``timeout`` — per-chunk deadline in seconds before a worker is declared
      hung and killed.  ``None`` defers to ``REPRO_WORKER_TIMEOUT``; the
      resolved default is *no deadline* (chunk cost is workload-dependent and
      a wrong guess would kill healthy workers).  ``0`` explicitly disables
      the deadline even when the environment sets one.
    * ``max_retries`` — extra attempts per chunk after the first.  ``None``
      defers to ``REPRO_WORKER_RETRIES`` (default 2).
    * ``degrade`` — on exhausted retries / irrecoverable pool, recompute the
      affected chunks in-process and warn instead of raising.  ``None``
      defers to ``REPRO_DEGRADE`` (default on: a long-lived stream should
      survive a dying worker; deterministic *code* bugs re-raise from the
      in-process fallback anyway, undecorated).
    * ``backoff`` / ``backoff_cap`` — exponential retry delay
      ``min(backoff * 2**(attempt-1), backoff_cap)`` seconds, applied as an
      eligibility time so a healthy pool keeps working while a chunk waits.
    """

    timeout: float | None = None
    max_retries: int | None = None
    degrade: bool | None = None
    backoff: float = 0.05
    backoff_cap: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0 or None, got {self.timeout}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 or None, got {self.max_retries}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")

    def resolved(self) -> "RetryPolicy":
        return resolve_retry_policy(self)


def resolve_retry_policy(policy: RetryPolicy | None = None) -> RetryPolicy:
    """Resolve ``None`` fields: explicit value > environment > default."""
    base = policy if policy is not None else RetryPolicy()
    timeout = base.timeout
    if timeout is None:
        timeout = knobs.read_float(WORKER_TIMEOUT_ENV)
    if timeout is not None and timeout <= 0:
        timeout = None  # 0 = deadline explicitly off
    max_retries = base.max_retries
    if max_retries is None:
        max_retries = knobs.read_int(WORKER_RETRIES_ENV, minimum=0)
    if max_retries is None:
        max_retries = DEFAULT_MAX_RETRIES
    degrade = base.degrade if base.degrade is not None else knobs.read_flag(DEGRADE_ENV)
    if degrade is None:
        degrade = True
    return RetryPolicy(
        timeout=timeout,
        max_retries=max_retries,
        degrade=degrade,
        backoff=base.backoff,
        backoff_cap=base.backoff_cap,
    )


@dataclass
class ChunkFailure:
    """Terminal failure record for one chunk (all attempts spent).

    ``history`` keeps every attempt's ``(kind, detail)`` — kind is
    ``exception`` / ``crash`` / ``hang``, detail the remote traceback or a
    death/deadline description — so multi-attempt diagnostics survive into
    :class:`repro.pipeline.parallel.WorkerPoolError` and
    :class:`PoolDegradedWarning`.  ``start`` / ``stop`` are the chunk's
    output-slice bounds, stamped by the dispatcher.
    """

    chunk: int
    attempts: int
    kind: str
    history: tuple[tuple[str, str], ...] = ()
    start: int = -1
    stop: int = -1

    @property
    def detail(self) -> str:
        return self.history[-1][1] if self.history else ""


@dataclass
class DispatchReport:
    """Outcome ledger of one :meth:`SupervisedPool.run`."""

    attempts: list[int] = field(default_factory=list)  # per-chunk attempt counts
    retried: int = 0        # retry attempts dispatched beyond the first try
    respawned: int = 0      # dead workers replaced during the run
    degraded: list[ChunkFailure] = field(default_factory=list)
    failed: list[ChunkFailure] = field(default_factory=list)


@dataclass
class RobustnessCounters:
    """Cumulative supervision counters on an executor; deltas land on stats."""

    chunks_retried: int = 0
    workers_respawned: int = 0
    degraded_runs: int = 0
    fault_events: int = 0

    def snapshot(self) -> "RobustnessCounters":
        return replace(self)

    def delta(self, before: "RobustnessCounters") -> "RobustnessCounters":
        return RobustnessCounters(
            chunks_retried=self.chunks_retried - before.chunks_retried,
            workers_respawned=self.workers_respawned - before.workers_respawned,
            degraded_runs=self.degraded_runs - before.degraded_runs,
            fault_events=self.fault_events - before.fault_events,
        )


class PoolDegradedWarning(RuntimeWarning):
    """A pooled dispatch completed by recomputing chunks in-process.

    The result is still bit-identical (chunk slices are partition-invariant);
    the warning records what the pool could not do itself: ``method``, the
    degraded chunks' ``(start, stop)`` bounds, and their
    :class:`ChunkFailure` records.
    """

    def __init__(self, message: str, *, method: str = "",
                 chunks: tuple = (), failures: tuple = ()):
        super().__init__(message)
        self.method = method
        self.chunks = tuple(chunks)
        self.failures = tuple(failures)


def _worker_main(conn, task_fn, initializer, initargs) -> None:
    """Worker loop: recv one task, run it, send the result; ``None`` quits.

    Runs inside a ``multiprocessing.Process`` whose ``_bootstrap`` exits via
    ``os._exit``, so inherited atexit hooks (e.g. the parent's shared-memory
    registry) never fire here.
    """
    try:
        if initializer is not None:
            initializer(*initargs)
        while True:
            item = conn.recv()
            if item is None:
                return
            task_id, attempt, task = item
            conn.send((task_id, task_fn(task, attempt)))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        # Parent went away (or is tearing us down): nothing to report to.
        return


class _Worker:
    """One supervised worker process and its in-flight assignment."""

    __slots__ = ("process", "conn", "task_id", "attempt", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task_id: int | None = None
        self.attempt = 0
        self.deadline: float | None = None


class SupervisedPool:
    """A self-healing replacement for ``multiprocessing.Pool`` chunk maps.

    ``task_fn(task, attempt)`` runs in the worker and must return ``None`` on
    success or a traceback string on failure (it must not raise — a raise
    would desynchronise the pipe protocol).  ``fallback(task)`` runs in the
    parent to recompute a chunk the pool gave up on.
    """

    def __init__(self, processes: int, task_fn, initializer=None, initargs=(),
                 context=None):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if context is None:
            import multiprocessing

            context = multiprocessing.get_context()
        self._processes = processes
        self._task_fn = task_fn
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._ctx = context
        self._workers: list[_Worker] = []
        #: Set when the respawn budget is exhausted (or spawning itself
        #: fails): the pool stops healing itself and the dispatcher is
        #: expected to tear it down and degrade or rebuild.
        self.broken = False

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._task_fn, self._initializer, self._initargs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _discard(self, worker: _Worker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
        # repro: ok(EXC001, best-effort teardown of a possibly-crashed worker; join/kill on a reaped process may raise and must not mask the caller's path)
        except Exception:
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _prune_dead(self) -> None:
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._discard(worker)

    def _ensure_workers(self) -> None:
        while len(self._workers) < self._processes:
            self._workers.append(self._spawn())

    def num_alive(self) -> int:
        return sum(1 for worker in self._workers if worker.process.is_alive())

    def close(self) -> None:
        """Shut the pool down; safe to call twice and at interpreter exit.

        Every step is individually guarded: during interpreter shutdown the
        worker handles may already be reaped, and a secondary error here
        would mask whatever actually went wrong.
        """
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass  # pipe already broken; the join/kill below still runs
        for worker in workers:
            try:
                worker.process.join(5.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(1.0)
            # repro: ok(EXC001, best-effort shutdown; a worker that died mid-close must not abort closing its siblings)
            except Exception:
                pass
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _death_detail(self, worker: _Worker) -> str:
        code = worker.process.exitcode
        if code is None:
            desc = "died"
        elif code < 0:
            try:
                desc = f"killed by {signal.Signals(-code).name}"
            except ValueError:
                desc = f"killed by signal {-code}"
        else:
            desc = f"exited with code {code}"
        return f"worker pid {worker.process.pid} {desc}"

    def run(self, tasks, policy: RetryPolicy, fallback=None) -> DispatchReport:
        """Dispatch ``tasks`` under ``policy``; heal, retry, degrade as needed.

        Returns a :class:`DispatchReport`; the caller decides whether
        ``report.failed`` (only populated when degradation is off or no
        fallback was given) is fatal.  Chunks listed in ``report.degraded``
        were recomputed through ``fallback`` and are already complete.
        """
        report = DispatchReport(attempts=[0] * len(tasks))
        if not tasks:
            return report
        max_attempts = 1 + policy.max_retries
        history: list[list[tuple[str, str]]] = [[] for _ in tasks]
        done = [False] * len(tasks)
        # (task_id, eligible_at) — backoff is an eligibility time, not a
        # blocking sleep, so healthy workers keep draining other chunks.
        pending: list[tuple[int, float]] = [(i, 0.0) for i in range(len(tasks))]
        respawn_budget = max(2 * self._processes, 4)
        respawns = 0

        def finish_attempt(task_id: int, kind: str, detail: str) -> None:
            history[task_id].append((kind, detail))
            attempts = report.attempts[task_id]
            if attempts < max_attempts and not self.broken:
                delay = min(policy.backoff * (2 ** max(attempts - 1, 0)),
                            policy.backoff_cap)
                pending.append((task_id, time.monotonic() + delay))
                return
            failure = ChunkFailure(chunk=task_id, attempts=attempts, kind=kind,
                                   history=tuple(history[task_id]))
            done[task_id] = True
            if policy.degrade and fallback is not None:
                fallback(tasks[task_id])
                report.degraded.append(failure)
            else:
                report.failed.append(failure)

        def replace_worker(worker: _Worker) -> None:
            nonlocal respawns
            self._discard(worker)
            if respawns >= respawn_budget:
                self.broken = True
                return
            try:
                fresh = self._spawn()
            # repro: ok(EXC001, respawn-failure classification: any spawn error degrades the pool to broken instead of crashing the supervisor loop)
            except Exception:
                self.broken = True
                return
            self._workers.append(fresh)
            respawns += 1
            report.respawned += 1

        try:
            self._prune_dead()
            self._ensure_workers()
            while not all(done):
                now = time.monotonic()
                # 1. hand eligible chunks to idle workers
                for worker in list(self._workers):
                    if worker.task_id is not None:
                        continue
                    index = next(
                        (k for k, (_, at) in enumerate(pending) if at <= now), None
                    )
                    if index is None:
                        break
                    task_id, _ = pending.pop(index)
                    attempt = report.attempts[task_id]
                    try:
                        worker.conn.send((task_id, attempt, tasks[task_id]))
                    except (BrokenPipeError, OSError):
                        # Never delivered: requeue without burning an attempt;
                        # the respawn budget bounds this loop.
                        pending.insert(0, (task_id, now))
                        replace_worker(worker)
                        continue
                    worker.task_id = task_id
                    worker.attempt = attempt
                    worker.deadline = now + policy.timeout if policy.timeout else None
                    report.attempts[task_id] += 1
                    if attempt > 0:
                        report.retried += 1
                # 2. pool burned down entirely: fail/degrade whatever is left
                if not self._workers:
                    self.broken = True
                    while pending:
                        task_id, _ = pending.pop()
                        if not done[task_id]:
                            finish_attempt(
                                task_id, "crash",
                                "worker pool irrecoverable: respawn budget exhausted",
                            )
                    continue
                if all(done):
                    break
                # 3. block until a result, a death, a deadline or a backoff expiry
                busy = [w for w in self._workers if w.task_id is not None]
                wait_objs = [w.conn for w in busy]
                wait_objs += [w.process.sentinel for w in self._workers]
                timeouts = [w.deadline - now for w in busy if w.deadline is not None]
                timeouts += [at - now for _, at in pending]
                timeout = max(0.0, min(timeouts)) if timeouts else None
                ready = connection.wait(wait_objs, timeout)
                now = time.monotonic()
                # 3a. results (a dead worker's buffered result still reads)
                for worker in busy:
                    if worker.conn not in ready:
                        continue
                    try:
                        task_id, traceback_text = worker.conn.recv()
                    except (EOFError, OSError):
                        task_id = worker.task_id
                        detail = self._death_detail(worker)
                        replace_worker(worker)
                        if task_id is not None:
                            finish_attempt(task_id, "crash", detail)
                        continue
                    worker.task_id = None
                    worker.deadline = None
                    if traceback_text is None:
                        done[task_id] = True
                    else:
                        finish_attempt(task_id, "exception", traceback_text)
                # 3b. deaths — covers idle workers and crashes without output
                for worker in list(self._workers):
                    if worker.process.sentinel in ready or not worker.process.is_alive():
                        task_id = worker.task_id
                        detail = self._death_detail(worker)
                        replace_worker(worker)
                        if task_id is not None:
                            finish_attempt(task_id, "crash", detail)
                # 3c. deadlines: kill the hung worker, classify as hang
                for worker in list(self._workers):
                    if (worker.task_id is not None and worker.deadline is not None
                            and now >= worker.deadline):
                        task_id = worker.task_id
                        detail = (
                            f"worker pid {worker.process.pid} exceeded the "
                            f"{policy.timeout:.3g}s chunk deadline; killed"
                        )
                        try:
                            worker.process.kill()
                        # repro: ok(EXC001, deadline enforcement: the worker may exit between the liveness check and the kill; either way it gets replaced)
                        except Exception:
                            pass
                        replace_worker(worker)
                        finish_attempt(task_id, "hang", detail)
        except BaseException:
            # A fallback error (or a supervision bug) leaves in-flight state
            # inconsistent; tear the pool down so the next call starts clean.
            self.close()
            self.broken = True
            raise
        return report
