"""Deterministic fault-injection harness for the supervised worker pool.

Chaos behaviour — worker crashes, hard kills, hangs — is impossible to test
reliably with timing tricks (sleep-and-hope races are the canonical flaky CI
test).  This module makes it deterministic *by construction*: a
:class:`FaultPlan` names exactly which chunk of which dispatch call fails, in
which way, on which attempt.  The plan is shipped to every worker process at
pool initialization and consulted by the worker-side chunk runner
(:func:`repro.pipeline.parallel._run_chunk`) before the chunk executes, so a
fault fires at the same place on every run — no clocks, no races.

Plan syntax (also accepted via the ``REPRO_FAULT_PLAN`` environment
variable; see ``docs/configuration.md`` for the full knob catalogue)::

    mode@call:chunk[xATTEMPTS][~SECONDS]

separated by ``,`` or ``;``.  ``mode`` is one of:

* ``raise`` — raise :class:`InjectedFault` inside the chunk (a *remote
  exception*: the worker survives and returns the traceback);
* ``exit``  — ``os._exit(13)`` (a *hard crash*: the worker dies without a
  word, like an OOM kill or an abort in native code);
* ``kill``  — ``SIGKILL`` to the worker's own pid (same classification as
  ``exit``, but through the signal path a real OOM killer uses);
* ``hang``  — sleep past the supervision deadline (``~SECONDS`` bounds the
  sleep, default ``20``, hard cap ``60`` so a mis-configured plan can stall
  but never deadlock a run).

``call`` is the 0-based dispatch-call index of the executor (every pooled
invocation increments it), ``chunk`` the 0-based chunk index within that
call; either may be ``*`` (any).  ``xATTEMPTS`` fires the fault on the first
``ATTEMPTS`` attempts of that chunk (default 1, i.e. only the first attempt —
the retry then succeeds; ``x9`` outlasts any sane retry budget, forcing
degradation).  Examples::

    kill@0:1          # SIGKILL the worker running chunk 1 of the first call
    raise@*:0         # every call: chunk 0 fails once, then retries clean
    hang@2:3~30       # chunk 3 of call 2 sleeps 30 s (deadline must be set)
    raise@0:0x9       # chunk 0 of call 0 fails every attempt -> degrade path
"""

from __future__ import annotations

import os
import re
import signal
import time
from dataclasses import dataclass

from .. import knobs

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "resolve_fault_plan",
]

#: Environment variable consulted when no explicit plan is given, so chaos
#: runs can be driven fleet-wide (CI gates) without touching call sites.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Default / maximum sleep of a ``hang`` fault.  The cap guarantees a plan
#: can stall a run (long enough for any reasonable deadline to trip) but can
#: never deadlock it outright.
DEFAULT_HANG_SECONDS = 20.0
MAX_HANG_SECONDS = 60.0

_MODES = ("raise", "exit", "kill", "hang")
_SPEC_RE = re.compile(
    r"^(?P<mode>raise|exit|kill|hang)"
    r"@(?P<call>\*|\d+):(?P<chunk>\*|\d+)"
    r"(?:x(?P<attempts>\d+))?"
    r"(?:~(?P<seconds>\d+(?:\.\d+)?))?$"
)


class InjectedFault(RuntimeError):
    """The exception a ``raise``-mode fault throws inside the worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *mode* at (*call*, *chunk*), first *attempts* tries."""

    mode: str
    call: int | None            # None = any dispatch call
    chunk: int | None           # None = any chunk of the call
    attempts: int = 1           # fire while attempt < attempts
    seconds: float = DEFAULT_HANG_SECONDS  # hang duration (hang mode only)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"fault mode must be one of {_MODES}, got {self.mode!r}")
        if self.attempts < 1:
            raise ValueError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.seconds <= 0:
            raise ValueError(f"hang seconds must be > 0, got {self.seconds}")

    def matches(self, call: int, chunk: int, attempt: int) -> bool:
        return (
            (self.call is None or self.call == call)
            and (self.chunk is None or self.chunk == chunk)
            and attempt < self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultSpec` entries.

    The plan is a plain frozen dataclass so it pickles into worker
    processes; the parent keeps the same instance to *predict* how many
    fault events a dispatch schedule fired (:meth:`events_for`), which is
    what feeds the ``fault_events`` robustness counter deterministically.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``mode@call:chunk[xN][~S]`` list syntax (see module doc)."""
        specs = []
        for raw in re.split(r"[,;]", text):
            entry = raw.strip()
            if not entry:
                continue
            match = _SPEC_RE.match(entry)
            if match is None:
                raise ValueError(
                    f"invalid fault spec {entry!r}; expected "
                    "mode@call:chunk[xATTEMPTS][~SECONDS] with mode in "
                    f"{_MODES} and '*' wildcards for call/chunk"
                )
            call = None if match["call"] == "*" else int(match["call"])
            chunk = None if match["chunk"] == "*" else int(match["chunk"])
            attempts = int(match["attempts"]) if match["attempts"] else 1
            seconds = float(match["seconds"]) if match["seconds"] else DEFAULT_HANG_SECONDS
            specs.append(
                FaultSpec(mode=match["mode"], call=call, chunk=chunk,
                          attempts=attempts, seconds=seconds)
            )
        if not specs:
            raise ValueError(f"fault plan {text!r} contains no fault specs")
        return cls(specs=tuple(specs))

    def find(self, call: int, chunk: int, attempt: int) -> FaultSpec | None:
        """First spec scheduled for this (call, chunk, attempt), if any."""
        for spec in self.specs:
            if spec.matches(call, chunk, attempt):
                return spec
        return None

    def inject(self, call: int, chunk: int, attempt: int) -> None:
        """Fire the scheduled fault for this attempt, if any (worker side)."""
        spec = self.find(call, chunk, attempt)
        if spec is None:
            return
        if spec.mode == "raise":
            raise InjectedFault(
                f"injected fault: call {call} chunk {chunk} attempt {attempt}"
            )
        if spec.mode == "exit":
            os._exit(13)
        if spec.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(min(spec.seconds, MAX_HANG_SECONDS))

    def events_for(self, call: int, chunk: int, attempts: int) -> int:
        """How many faults fired for a chunk that ran ``attempts`` attempts.

        Deterministic parent-side bookkeeping: the worker that hit an
        ``exit``/``kill`` fault cannot report it, so the parent counts the
        events from the same plan and the attempt ledger of the dispatch.
        """
        return sum(1 for attempt in range(attempts) if self.find(call, chunk, attempt))


def resolve_fault_plan(plan: "FaultPlan | str | None" = None) -> FaultPlan | None:
    """Resolve a fault plan: explicit argument > ``REPRO_FAULT_PLAN`` > none.

    Accepts a prebuilt :class:`FaultPlan` or the string syntax; ``None``
    consults the environment variable and returns ``None`` (no injection —
    the production default) when it is unset or empty.
    """
    if plan is not None:
        return plan if isinstance(plan, FaultPlan) else FaultPlan.parse(plan)
    raw = knobs.read_string(FAULT_PLAN_ENV)
    return FaultPlan.parse(raw) if raw else None
