"""Content-hash caches for exact-repeat reuse and incremental re-simulation.

Two caching layers make OPC iteration cost proportional to the *perturbed*
area instead of the mask area:

* :class:`MaskResultCache` — a bounded (byte-budget) LRU in front of
  :meth:`repro.pipeline.InferencePipeline.run`, keyed by the content hash of
  each input mask *plus the pipeline's compute identity* (engine name,
  compute-backend lane and lane dtype — see :mod:`repro.nn.backends`), so a
  cache shared between, say, a ``float32``-lane pipeline and a ``float64``
  one can never serve an entry produced under a different numeric contract.
  Exact repeats — dataset rebuilds, convergence re-checks, the final
  ``build_mask`` after an OPC loop, the Figure 8 golden snapshot sims — are
  answered from the cache without touching the executor.  Off by default;
  enable per pipeline (``result_cache=True`` / a byte budget) or fleet-wide
  with ``REPRO_RESULT_CACHE``.
* :class:`IncrementalState` — the dirty-tile ledger of the patched
  re-simulation plan (:meth:`~repro.pipeline.InferencePipeline.predict_patched`).
  The mask is viewed through the half-overlapping :class:`~repro.layout.tiling.TileSpec`
  grid of paper §3.2; per-tile content hashes identify which tile windows
  changed since the previous call, only those windows are re-simulated, and
  their *ownership regions* (the disjoint partition of the image induced by
  the scan-order core stitch of :func:`~repro.layout.tiling.stitch_cores`)
  are written back into a cached full-image map.

Exactness of the patched plan
-----------------------------
The golden simulator's aerial image is a linear convolution with kernels of
finite support ``s`` (:mod:`repro.litho.hopkins` zero-pads every FFT to
``next_fast_len(n + s - 1)``), so an output pixel depends only on mask pixels
within the influence radius ``r = (s - 1) // 2``.  A tile window of size ``T``
therefore reproduces the whole-mask aerial exactly on its core region more
than ``r`` pixels from any interior window edge.  With the core margin fixed
at ``T // 4`` (the largest value for which the half-overlapping grid's cores
partition the image) and ``T >= 4r``, patching the dirty windows' ownership
regions is *exact* up to floating-point summation order; the resist threshold
comparison is pointwise, so patched resist images match whole-mask
re-simulation (pinned by the equivalence suites in
``tests/pipeline/test_cache.py`` / ``tests/opc/test_incremental.py``).

For model engines the patched plan re-runs global perception on the dirty
tile windows only and splices their pooled cores into a cached stitched GP
map — the same tiles, margin and ownership the stitched plan would use — then
runs the translation-invariant reconstruction on the full mask, so the result
is bit-identical to ``predict(stitch=True)`` by construction.

Hybrid cost model
-----------------
Windowed FFTs are smaller but there are many of them: re-simulating all nine
windows of a 128 px mask costs ~3x one whole-mask FFT.  ``IncrementalState``
therefore carries per-call cost estimates and the pipeline falls back to one
native whole-image refresh whenever the dirty set is large (or on the first
call), so the incremental plan is never materially slower than the plain one.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import knobs
from ..layout.tiling import TileSpec

__all__ = [
    "RESULT_CACHE_ENV",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "MaskResultCache",
    "IncrementalCounters",
    "IncrementalState",
    "choose_patch_tile",
    "hash_array",
    "ownership_slices",
    "resolve_cache_budget",
]

#: Environment variable consulted when no explicit ``result_cache`` argument
#: is given: off / on / an integer byte budget.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Byte budget used when the cache is enabled without an explicit size.
DEFAULT_CACHE_BUDGET_BYTES = 256 * 1024 * 1024

def resolve_cache_budget(result_cache: bool | int | None = None) -> int:
    """Resolve the result-cache knob to a byte budget (0 = disabled).

    Explicit argument > ``REPRO_RESULT_CACHE`` > off.  ``True`` (or a truthy
    flag value in the environment) selects :data:`DEFAULT_CACHE_BUDGET_BYTES`;
    an integer is taken as the budget in bytes.
    """
    if result_cache is not None:
        if result_cache is True:
            return DEFAULT_CACHE_BUDGET_BYTES
        if result_cache is False:
            return 0
        budget = int(result_cache)
        return max(budget, 0)
    raw = knobs.get_raw(RESULT_CACHE_ENV) or ""
    try:
        flag = knobs.parse_bool(raw, name=RESULT_CACHE_ENV)
    except knobs.KnobError:
        try:
            return max(int(raw.strip()), 0)
        except ValueError:
            raise knobs.KnobError(
                f"{RESULT_CACHE_ENV}={raw.strip().lower()!r} is not a boolean flag or byte budget"
            ) from None
    if flag is None or flag is False:
        return 0
    return DEFAULT_CACHE_BUDGET_BYTES


def hash_array(array: np.ndarray) -> bytes:
    """Content hash of an array (shape + dtype + bytes, C-order)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((array.shape, array.dtype.str)).encode())
    digest.update(array)
    return digest.digest()


class MaskResultCache:
    """Bounded content-hash -> prediction LRU with a byte-size budget.

    Values are stored (and returned) as copies, so cached results can never
    alias arrays the caller mutates.  Inserting a value larger than the whole
    budget is a silent no-op rather than an eviction storm.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES) -> None:
        if budget_bytes <= 0:
            raise ValueError("MaskResultCache needs a positive byte budget")
        self.budget_bytes = int(budget_bytes)
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._nbytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently held by cached values."""
        return self._nbytes

    def get(self, key: bytes) -> np.ndarray | None:
        """Look a key up (counting hit/miss) and refresh its LRU position."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value.copy()

    def put(self, key: bytes, value: np.ndarray) -> None:
        """Insert a value, evicting least-recently-used entries over budget."""
        nbytes = value.nbytes
        if nbytes > self.budget_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._nbytes -= old.nbytes
        self._entries[key] = value.copy()
        self._nbytes += nbytes
        while self._nbytes > self.budget_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= evicted.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self._nbytes = 0


@dataclass
class IncrementalCounters:
    """Work ledger of an incremental re-simulation session."""

    full_refreshes: int = 0       # native whole-image simulations (incl. first call)
    patched_calls: int = 0        # calls served by dirty-window patching
    clean_calls: int = 0          # calls where no tile changed (develop-only)
    tiles_simulated: int = 0      # tile windows actually re-simulated
    tiles_skipped: int = 0        # tile windows skipped as clean on patched calls

    def tile_equivalents(self, n_tiles: int) -> int:
        """Total work in units of tile simulations (full refresh = ``n_tiles``)."""
        return self.tiles_simulated + self.full_refreshes * n_tiles


def choose_patch_tile(image_size: int, influence_radius: int) -> int:
    """Smallest patch window ``T`` with exactly-partitioning cores.

    A window's core margin is ``T // 4`` (the largest margin for which the
    half-overlapping grid's cores tile the image under the scan-order
    semantics of :func:`~repro.layout.tiling.stitch_cores`); exact windowed
    convolution needs that margin to cover the optical influence radius, so
    ``T >= 4 * influence_radius``.  ``T`` must also divide the image size and
    be even (half-overlap stride).  When no proper divisor qualifies, the
    whole image is one window — the patched plan then degenerates to
    skip-if-unchanged, which is still exact.
    """
    for size in range(max(4 * influence_radius, 2), image_size):
        if size % 2 == 0 and image_size % size == 0:
            return size
    return image_size


def ownership_slices(
    specs: list[TileSpec], shape: tuple[int, int], margin: int
) -> list[tuple[tuple[slice, slice], tuple[slice, slice]]]:
    """Disjoint per-tile ownership regions equal to the scan-order core stitch.

    Returns ``(tile_local, output)`` slice pairs such that writing
    ``output[out] = tile[local]`` for *any subset* of tiles yields exactly the
    pixels :func:`~repro.layout.tiling.stitch_cores` would assign to those
    tiles.  ``stitch_cores`` writes cores in scan order (later tiles win), and
    its core boundaries are separable per axis, so ownership along each axis
    is: the first tile owns from the image border, every tile owns up to
    ``stride + margin`` into itself (where the next tile's core takes over),
    and the last tile owns to the opposite border.  This partition matches the
    scan-order overwrite exactly iff ``margin <= size // 4``, which the
    callers guarantee (:func:`choose_patch_tile`).
    """
    h, w = shape
    if not specs:
        return []
    size = specs[0].size
    if margin > size // 4 and len(specs) > 1:
        raise ValueError(
            f"ownership regions need margin <= tile_size // 4 "
            f"(got margin {margin} for tile size {size})"
        )
    n_rows = max(s.row for s in specs) + 1
    n_cols = max(s.col for s in specs) + 1
    stride = size // 2

    def axis_own(index: int, count: int) -> tuple[int, int]:
        lo = 0 if index == 0 else margin
        hi = size if index == count - 1 else stride + margin
        return lo, hi

    out: list[tuple[tuple[slice, slice], tuple[slice, slice]]] = []
    for spec in specs:
        y_lo, y_hi = axis_own(spec.row, n_rows)
        x_lo, x_hi = axis_own(spec.col, n_cols)
        local = (slice(y_lo, y_hi), slice(x_lo, x_hi))
        output = (
            slice(spec.y0 + y_lo, spec.y0 + y_hi),
            slice(spec.x0 + x_lo, spec.x0 + x_hi),
        )
        out.append((local, output))
    return out


def _fft_cost(size: int, support: int) -> float:
    """Relative cost of one zero-padded 2-D FFT convolution at this size."""
    n = size + support - 1
    return float(n * n) * max(np.log2(n), 1.0)


@dataclass
class IncrementalState:
    """Dirty-tile ledger + cached full-image map for patched re-simulation.

    Built by :meth:`repro.pipeline.InferencePipeline.incremental_state` and
    threaded through successive :meth:`~repro.pipeline.InferencePipeline.predict_patched`
    calls.  ``mode`` is ``"aerial"`` (simulator engines: the cached map is the
    full-image aerial intensity) or ``"gp"`` (stitchable models: the cached
    map is the stitched pooled global-perception features).
    """

    mode: str
    shape: tuple[int, int]
    tile_size: int
    specs: list[TileSpec]
    margin: int                           # core margin at the cached-map resolution
    pool: int = 1                         # map resolution divisor (1 for aerial)
    support: int = 1                      # kernel support (aerial cost model)
    hashes: list[bytes] | None = None
    cached_map: np.ndarray | None = None
    counters: IncrementalCounters = field(default_factory=IncrementalCounters)
    last_stats: object | None = None      # PipelineStats of the latest patched call
    _pending: dict[int, bytes] = field(default_factory=dict, repr=False)

    @property
    def n_tiles(self) -> int:
        return len(self.specs)

    def pooled_specs(self) -> list[TileSpec]:
        pool = self.pool
        return [
            TileSpec(row=s.row, col=s.col, y0=s.y0 // pool, x0=s.x0 // pool, size=s.size // pool)
            for s in self.specs
        ]

    def ownership(self) -> list[tuple[tuple[slice, slice], tuple[slice, slice]]]:
        h, w = self.shape
        return ownership_slices(self.pooled_specs(), (h // self.pool, w // self.pool), self.margin)

    def window_hashes(self, mask: np.ndarray, indices: list[int]) -> list[bytes]:
        """Content hashes of the given tile windows of ``mask``."""
        t = self.tile_size
        return [
            hash_array(mask[s.y0 : s.y0 + t, s.x0 : s.x0 + t])
            for s in (self.specs[i] for i in indices)
        ]

    def dirty_windows(self, mask: np.ndarray, candidates: list[int] | None) -> list[int]:
        """Tile indices whose window content changed since the last call.

        ``candidates`` (from the fragment->tile index) bounds the windows that
        need re-hashing; windows outside it are trusted to be unchanged.
        ``None`` checks every window; with no recorded hashes yet, every
        window is dirty.  The fresh hashes are kept for :meth:`record`, so
        each window is hashed at most once per call.
        """
        self._pending = {}
        if self.hashes is None:
            return list(range(self.n_tiles))
        indices = sorted(set(candidates)) if candidates is not None else list(range(self.n_tiles))
        fresh = self.window_hashes(mask, indices)
        self._pending = dict(zip(indices, fresh))
        return [i for i, digest in zip(indices, fresh) if digest != self.hashes[i]]

    def prefer_native(self, dirty_count: int) -> bool:
        """Hybrid cost model: is a native whole-image refresh cheaper?

        Only meaningful for ``"aerial"`` mode, where the native path is one
        big zero-padded FFT and the patched path is ``dirty_count`` small
        ones.  The GP patched plan has no native equivalent of the stitched
        result, so it always patches.
        """
        if self.mode != "aerial" or self.n_tiles == 1:
            return dirty_count >= self.n_tiles
        native = _fft_cost(max(self.shape), self.support)
        window = _fft_cost(self.tile_size, self.support)
        return dirty_count * window >= native

    def record(self, mask: np.ndarray, dirty: list[int] | None = None) -> None:
        """Update the per-tile hash ledger after simulating ``mask``.

        Reuses the hashes :meth:`dirty_windows` already computed this call
        (``_pending``); windows that were never candidates kept their content,
        so their stored hashes are still valid.  Only the very first call —
        no ledger yet — hashes every window.
        """
        if self.hashes is None:
            self.hashes = self.window_hashes(mask, list(range(self.n_tiles)))
        else:
            updates = self._pending if dirty is None else {i: self._pending[i] for i in dirty}
            for i, digest in updates.items():
                self.hashes[i] = digest
        self._pending = {}
