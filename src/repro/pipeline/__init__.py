"""Batch-first inference pipeline (tiling -> batched execution -> stitching).

The single high-throughput engine every inference consumer routes through;
see :mod:`repro.pipeline.engine` for the architecture overview.
"""

from .engine import InferencePipeline, PipelineResult, PipelineStats
from .executors import Executor, ModelExecutor, SimulatorExecutor, as_executor
from .parallel import (
    NUM_WORKERS_ENV,
    ParallelConfig,
    WorkerPoolError,
    WorkerPoolExecutor,
    resolve_num_workers,
)

__all__ = [
    "InferencePipeline",
    "PipelineResult",
    "PipelineStats",
    "Executor",
    "ModelExecutor",
    "SimulatorExecutor",
    "as_executor",
    "NUM_WORKERS_ENV",
    "ParallelConfig",
    "WorkerPoolError",
    "WorkerPoolExecutor",
    "resolve_num_workers",
]
