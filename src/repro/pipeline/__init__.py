"""Batch-first inference pipeline (tiling -> batched execution -> stitching).

The single high-throughput engine every inference consumer routes through;
see :mod:`repro.pipeline.engine` for the architecture overview.

Every knob below lives on one document: :class:`ExecutionConfig`
(:mod:`repro.pipeline.config`).  Consumers pass
``InferencePipeline(engine, config=ExecutionConfig(...))``; the config
resolves exactly once (explicit field > ``REPRO_*`` env > default, with
per-field provenance and structured :class:`ConfigError`\\ s), and
``pipeline.plan(masks)`` returns the serializable :class:`ExecutionPlan`
that ``execute`` carries out — see ``docs/architecture.md`` for the
config -> plan -> execute flow.  The per-knob keyword arguments still
accepted by :class:`InferencePipeline` are a deprecated shim.

Throughput knobs (all fields of :class:`ExecutionConfig`, honoured by every
driver that builds a pipeline — evaluation, OPC, experiment harnesses,
benchmarks):

``batch_size``
    Tiles / masks per executor invocation (executors micro-batch internally
    to stay cache-resident, so bigger batches only help).
``num_workers`` / ``REPRO_NUM_WORKERS``
    Worker processes the executor's batches are sharded across
    (:mod:`repro.pipeline.parallel`); 0/1 runs serial in-process.  The
    environment variable parallelizes a whole fleet without touching call
    sites; an explicit argument always wins.
``streaming`` / ``REPRO_STREAMING``
    Keep the worker pool's shared-memory segments alive across pipeline calls
    in a persistent, generation-tagged ring (:mod:`repro.pipeline.streaming`)
    instead of re-creating them per call.  Default on; ``streaming=False``
    (or ``REPRO_STREAMING=0``) restores the per-call transport.
``shard_tiles``
    Let the stitched large-tile plan dispatch the whole GP tile stream as one
    pooled invocation, so the tiles of a *single* large mask shard across all
    workers.  Default: on whenever the pipeline is pooled.
``compile``
    Run a model engine as a fused inference graph (:mod:`repro.nn.fusion`).
``backend`` / ``REPRO_BACKEND``
    Compute lane of the compiled fused graph (:mod:`repro.nn.backends`):
    ``float64`` (default, bit-identical to the uncompiled path), ``float32``
    (folded weights narrowed at compile time; calibrated-tolerance
    equivalence), ``blas`` (micro-batch GEMMs stacked into one threaded BLAS
    call) or ``fft`` (FFT-domain large-kernel deconvolution).  Only engages
    on compiled model engines; the cache key carries the lane, so results
    from different lanes never mix.
``blas_threads`` / ``REPRO_BLAS_THREADS``
    BLAS thread cap composed with the worker pool: pooled pipelines default
    to 1 thread per worker so pool workers times BLAS threads never
    oversubscribes the cores; serial pipelines leave the library untouched
    unless the knob is set.
``result_cache`` / ``REPRO_RESULT_CACHE``
    Bounded content-hash LRU in front of ``run``/``predict``
    (:mod:`repro.pipeline.cache`): exact input repeats are answered without
    touching the executor.  Default off.
``retry`` / ``REPRO_WORKER_TIMEOUT`` + ``REPRO_WORKER_RETRIES`` + ``REPRO_DEGRADE``
    Supervision policy for the pooled dispatch
    (:mod:`repro.pipeline.supervision`): per-chunk deadline, retry budget for
    failed chunks, and graceful in-process degradation (default on) when the
    pool is irrecoverable.  Worker crashes, hangs and remote exceptions are
    classified, retried bit-identically, and surfaced as counters on
    :class:`PipelineStats`; ``REPRO_FAULT_PLAN``
    (:mod:`repro.pipeline.faults`) injects deterministic chaos for testing.

Every knob composes with every other, and all combinations are bit-identical
to the serial path (pinned by ``tests/pipeline/``).  The full environment
catalogue (defaults, precedence) lives in ``docs/configuration.md``.

On top of these, ``incremental_state`` / ``predict_patched`` expose the
incremental re-simulation plan: per-tile content hashes find the windows a
mask edit touched and only those are re-simulated, their ownership regions
spliced into a cached full-image map (:mod:`repro.pipeline.cache`).
"""

from .cache import (
    DEFAULT_CACHE_BUDGET_BYTES,
    RESULT_CACHE_ENV,
    IncrementalCounters,
    IncrementalState,
    MaskResultCache,
    choose_patch_tile,
    hash_array,
    ownership_slices,
    resolve_cache_budget,
)
from .config import ConfigError, ExecutionConfig, ExecutionPlan
from .engine import InferencePipeline, PipelineResult, PipelineStats
from .executors import Executor, ModelExecutor, SimulatorExecutor, as_executor
from .faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    resolve_fault_plan,
)
from .parallel import (
    NUM_WORKERS_ENV,
    ParallelConfig,
    WorkerPoolError,
    WorkerPoolExecutor,
    resolve_num_workers,
)
from .streaming import (
    SEGMENT_PREFIX,
    STREAMING_ENV,
    SegmentRing,
    live_segment_names,
    resolve_streaming,
)
from .supervision import (
    DEGRADE_ENV,
    WORKER_RETRIES_ENV,
    WORKER_TIMEOUT_ENV,
    ChunkFailure,
    PoolDegradedWarning,
    RetryPolicy,
    RobustnessCounters,
    SupervisedPool,
    resolve_retry_policy,
)

__all__ = [
    "ConfigError",
    "ExecutionConfig",
    "ExecutionPlan",
    "InferencePipeline",
    "PipelineResult",
    "PipelineStats",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "RESULT_CACHE_ENV",
    "IncrementalCounters",
    "IncrementalState",
    "MaskResultCache",
    "choose_patch_tile",
    "hash_array",
    "ownership_slices",
    "resolve_cache_budget",
    "Executor",
    "ModelExecutor",
    "SimulatorExecutor",
    "as_executor",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "resolve_fault_plan",
    "NUM_WORKERS_ENV",
    "ParallelConfig",
    "WorkerPoolError",
    "WorkerPoolExecutor",
    "resolve_num_workers",
    "SEGMENT_PREFIX",
    "STREAMING_ENV",
    "SegmentRing",
    "live_segment_names",
    "resolve_streaming",
    "DEGRADE_ENV",
    "WORKER_RETRIES_ENV",
    "WORKER_TIMEOUT_ENV",
    "ChunkFailure",
    "PoolDegradedWarning",
    "RetryPolicy",
    "RobustnessCounters",
    "SupervisedPool",
    "resolve_retry_policy",
]
