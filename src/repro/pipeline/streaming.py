"""Persistent shared-memory segment ring for streaming worker-pool execution.

PR 2's :class:`~repro.pipeline.parallel.WorkerPoolExecutor` created and
unlinked fresh POSIX shared-memory segments on every executor invocation.
That is correct but wasteful for the workloads the paper's full-chip runtime
claim actually describes: a *stream* of pipeline calls over same-shaped tile
batches (OPC iteration loops call the simulator dozens of times per mask;
full-chip runs push thousands of identical tile batches).  Each call paid an
``shm_open`` + ``mmap`` + page-fault-on-first-touch per buffer, in the parent
and in every worker.

This module provides the persistent alternative:

* :func:`create_segment` / :func:`release_segment` — shared-memory segments
  with a recognizable ``repro_<pid>_<token>`` name, tracked in a module-level
  registry whose :mod:`atexit` hook guarantees teardown even when an owner
  forgets to ``close()``.  Every segment the pipeline ever creates (streaming
  or per-call) goes through this registry, so a crashed run can never strand
  segments in ``/dev/shm`` past interpreter exit (the leak PR 2 left open on
  error paths).
* :class:`SegmentRing` — a set of named buffer slots (``in0``, ``in1``,
  ``out``) that persist across executor invocations.  Each slot carries a
  **generation tag** that increments when the slot is regrown (capacity only
  ever grows), so worker processes can cache their own mapping per slot and
  remap only when the parent actually replaced the segment.  ``close()`` is
  idempotent and releases every slot.
* :func:`resolve_streaming` — the knob resolution shared by every consumer:
  explicit argument > ``REPRO_STREAMING`` environment variable > on.

The ring is a pure transport optimization: the bytes written into the slots
and the chunk partitioning are identical to the per-call path, so streaming
execution is bit-identical to both the per-call and the serial paths.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

from .. import knobs

__all__ = [
    "SEGMENT_PREFIX",
    "STREAMING_ENV",
    "RingSlot",
    "SegmentRing",
    "create_segment",
    "live_segment_names",
    "release_segment",
    "resolve_streaming",
]

#: Prefix of every shared-memory segment the pipeline creates.  Keeping it
#: recognizable lets CI assert that ``/dev/shm`` holds no leftover ``repro``
#: segments after a test run (scripts/ci.sh).
SEGMENT_PREFIX = "repro"

#: Environment variable consulted when no explicit ``streaming`` argument is
#: given, mirroring ``REPRO_NUM_WORKERS`` for the worker count.
STREAMING_ENV = "REPRO_STREAMING"


def resolve_streaming(streaming: bool | None = None) -> bool:
    """Resolve the streaming knob: explicit argument > ``REPRO_STREAMING`` > on.

    Streaming defaults to **on** — reusing mapped segments is bit-identical to
    the per-call transport and strictly cheaper on repeated calls; the
    per-call mode survives as the explicit opt-out (``streaming=False`` /
    ``REPRO_STREAMING=0``) and as the baseline the throughput bench compares
    against.
    """
    if streaming is not None:
        return bool(streaming)
    value = knobs.read_flag(STREAMING_ENV)
    return True if value is None else value


# ---------------------------------------------------------------------- #
# Segment registry: every segment is torn down at close() or, at the
# latest, interpreter exit.
# ---------------------------------------------------------------------- #
_LIVE_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a registered shared-memory segment of at least ``nbytes``.

    The segment is recorded in the live-segment registry immediately, so the
    atexit hook unlinks it even if the caller errors between creation and its
    own cleanup (the parent-death leak of the per-call transport).
    """
    size = max(int(nbytes), 1)
    while True:
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - 32-bit token collision
            continue
        _LIVE_SEGMENTS[shm.name] = shm
        return shm


def release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink one segment and drop it from the registry (idempotent)."""
    _LIVE_SEGMENTS.pop(shm.name, None)
    try:
        shm.close()
    except BufferError:  # pragma: no cover - error path: views still alive
        pass  # the mapping is freed with the failing frame
    try:
        shm.unlink()
    except FileNotFoundError:
        pass  # already released


def live_segment_names() -> tuple[str, ...]:
    """Names of every segment this process currently owns (tests, CI checks)."""
    return tuple(sorted(_LIVE_SEGMENTS))


def _release_all_segments() -> None:
    """atexit hook: unlink everything the process still owns."""
    for shm in list(_LIVE_SEGMENTS.values()):
        release_segment(shm)


atexit.register(_release_all_segments)


# ---------------------------------------------------------------------- #
# The persistent ring
# ---------------------------------------------------------------------- #
@dataclass
class RingSlot:
    """One persistent buffer slot: a mapped segment plus its generation tag."""

    role: str
    shm: shared_memory.SharedMemory
    capacity: int
    generation: int


class SegmentRing:
    """Generation-tagged shared-memory slots reused across pipeline calls.

    ``acquire(role, nbytes)`` returns the slot for ``role``, creating it on
    first use and **regrowing** it (new segment, generation + 1) only when the
    requested size exceeds the slot's capacity.  Capacity never shrinks, so a
    stream that alternates tile geometries settles into zero-regrow steady
    state once the largest geometry has been seen.  ``close()`` releases every
    slot and is idempotent; a closed ring can be reused (slots respawn on the
    next ``acquire``).
    """

    def __init__(self) -> None:
        self._slots: dict[str, RingSlot] = {}
        #: Number of times an existing slot was replaced by a larger segment —
        #: observability for the regrowth tests and the throughput bench.
        self.regrow_count = 0

    def __len__(self) -> int:
        return len(self._slots)

    def slots(self) -> dict[str, RingSlot]:
        """Snapshot of the current slots (read-only view for tests/stats)."""
        return dict(self._slots)

    def acquire(self, role: str, nbytes: int) -> RingSlot:
        """The persistent slot for ``role``, regrown if ``nbytes`` outgrew it."""
        slot = self._slots.get(role)
        if slot is not None and slot.capacity >= nbytes:
            return slot
        generation = 0
        if slot is not None:
            generation = slot.generation + 1
            self.regrow_count += 1
            release_segment(slot.shm)
        shm = create_segment(nbytes)
        # The kernel may round the mapping up to a page; expose the real
        # capacity so sub-page growth does not force a regrow.
        slot = RingSlot(role=role, shm=shm, capacity=shm.size, generation=generation)
        self._slots[role] = slot
        return slot

    def close(self) -> None:
        """Release every slot (idempotent; the ring is reusable afterwards)."""
        for slot in self._slots.values():
            release_segment(slot.shm)
        self._slots.clear()
