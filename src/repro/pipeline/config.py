"""One resolved :class:`ExecutionConfig` for every pipeline consumer.

Eight PRs of engine growth (workers, streaming, fusion, backends, caching,
supervision, incremental OPC) each threaded a new keyword through the same
~8 signatures, and every consumer re-declared an overlapping subset with
subtly different defaults.  This module is the consolidation:

* :class:`ExecutionConfig` — a frozen dataclass owning **every** execution
  knob.  Unset fields are ``None``; :meth:`ExecutionConfig.resolve` performs
  the one resolution pass (explicit field > ``REPRO_*`` knob via
  :mod:`repro.knobs` > built-in default) exactly once and records where each
  value came from, so :meth:`ExecutionConfig.validate` can raise structured
  :class:`ConfigError`\\ s naming the field *and* the source.  Resolution is
  idempotent: re-resolving a resolved config is a no-op, and the resolved
  values survive a second pass through the per-subsystem ``resolve_*``
  helpers unchanged (the worker pool re-checks its policy at dispatch).
* :meth:`ExecutionConfig.to_dict` / :meth:`ExecutionConfig.from_dict` —
  JSON-safe round-trips, the request-admission contract of the future async
  serving front end (config doc in).
* :class:`ExecutionPlan` — the serializable output of
  :meth:`repro.pipeline.InferencePipeline.plan`: mode, tile grid,
  super-batch shape, pooled-vs-serial, cache identity — everything
  ``PipelineStats`` used to reconstruct after the fact, known *before*
  execution (``show``-style state out; the unit the async scheduler will
  coalesce).

One deliberate exception: ``backend`` stays un-resolved (``None`` means
"defer").  The compiled-graph lane precedence (a pre-converted graph's lane
wins over the environment; uncompiled pipelines ignore the env lane but
reject explicit non-default ones) lives at the executor boundary in
:mod:`repro.pipeline.executors` and must keep resolving there — folding
``REPRO_BACKEND`` into the config would silently override a compiled
graph's lane.  ``compile`` likewise has no environment leg here:
``REPRO_COMPILE`` is a benchmark-suite convention applied by
``benchmarks/conftest.py`` when it builds its session config.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from .. import knobs
from ..nn.backends import BLAS_THREADS_ENV, ComputeBackend, available_backends
from .cache import RESULT_CACHE_ENV, resolve_cache_budget
from .parallel import NUM_WORKERS_ENV, ParallelConfig
from .streaming import STREAMING_ENV
from .supervision import (
    DEFAULT_MAX_RETRIES,
    DEGRADE_ENV,
    RetryPolicy,
    WORKER_RETRIES_ENV,
    WORKER_TIMEOUT_ENV,
)

__all__ = ["ConfigError", "ExecutionConfig", "ExecutionPlan", "INCREMENTAL_ENV"]

#: Environment leg of ``ExecutionConfig.incremental`` (also consulted by
#: :func:`repro.opc.engine.resolve_incremental`; declared here as well so the
#: config module does not import :mod:`repro.opc`, which imports us).
INCREMENTAL_ENV = "REPRO_INCREMENTAL_OPC"


class ConfigError(ValueError):
    """Invalid :class:`ExecutionConfig` value, naming the field and source.

    ``field`` is the config attribute (``"batch_size"``); ``source`` is where
    the offending value came from — ``"explicit"``, the ``REPRO_*`` variable
    name, or ``"default"``.  Subclasses :class:`ValueError` so every caller
    that caught ``ValueError`` from the old per-kwarg validation keeps
    working.
    """

    def __init__(self, message: str, *, field: str = "", source: str = "explicit") -> None:
        super().__init__(message)
        self.field = field
        self.source = source


@dataclass(frozen=True)
class ExecutionConfig:
    """Every execution knob of the inference pipeline, in one document.

    Unset fields are ``None`` and resolve through the registered ``REPRO_*``
    knob (one env leg per field, read via :mod:`repro.knobs`) down to the
    built-in default — the same precedence each knob has always had, now
    applied in exactly one place (:meth:`resolve`).  See
    ``docs/configuration.md`` for the knob -> field catalogue and
    ``docs/architecture.md`` for the config -> plan -> execute flow.
    """

    #: Native (training) tile size of the engine; ``None`` disables tiling.
    tile_size: int | None = None
    #: Tiles / masks per executor invocation (default 8).
    batch_size: int | None = None
    #: Optical ambit sizing the stitching core margin (default 16).
    optical_diameter_pixels: int | None = None
    #: Worker processes (``REPRO_NUM_WORKERS``, then 0 = serial).
    num_workers: int | None = None
    #: Items per worker-pool chunk; ``None`` = even split over the workers.
    chunk_size: int | None = None
    #: Compile model engines into fused inference graphs (default off; no env
    #: leg — ``REPRO_COMPILE`` is applied by the benchmark conftest).
    compile: bool | None = None
    #: Compute lane of the compiled graph.  Deliberately *not* resolved here:
    #: ``None`` defers to the executor boundary, where graph-lane precedence
    #: over ``REPRO_BACKEND`` lives (see the module docstring).
    backend: "str | ComputeBackend | None" = None
    #: BLAS thread cap (``REPRO_BLAS_THREADS``, then 1-per-worker when
    #: pooled / 0 = leave the library alone when serial).
    blas_threads: int | None = None
    #: Persistent shared-memory ring (``REPRO_STREAMING``, then on).
    streaming: bool | None = None
    #: Intra-mask tile sharding on the stitched plan.  Tri-state on purpose:
    #: ``None`` survives resolution as "auto — engage exactly when the
    #: executor is pooled", which only the pipeline can decide (the executor
    #: may arrive pre-pooled).
    shard_tiles: bool | None = None
    #: Content-hash result cache: ``True``/``False``, byte budget, or
    #: ``None`` -> ``REPRO_RESULT_CACHE`` (then off).  Resolves to the byte
    #: budget (0 = disabled).
    result_cache: bool | int | None = None
    #: Worker-pool supervision policy; ``None`` fields inside it defer to
    #: ``REPRO_WORKER_TIMEOUT`` / ``REPRO_WORKER_RETRIES`` / ``REPRO_DEGRADE``.
    retry: RetryPolicy | None = None
    #: Incremental OPC re-simulation (``REPRO_INCREMENTAL_OPC``, then on).
    incremental: bool | None = None
    #: Whether :meth:`resolve` has run on this instance.
    resolved: bool = False

    # ------------------------------------------------------------------ #
    # Merging (the one ParallelConfig-style override pass)
    # ------------------------------------------------------------------ #
    def merged(self, other: "ExecutionConfig | None" = None, /, **overrides) -> "ExecutionConfig":
        """A copy where ``other``'s set fields, then ``overrides``, win.

        ``None`` values never override — the same field-by-field precedence
        the old ``if parallel is not None:`` block in
        ``InferencePipeline.__init__`` applied by hand, now in one place.
        Unknown override names raise :class:`ConfigError` (typo detection —
        a ``**legacy`` shim must not silently drop a knob).
        """
        changes: dict = {}
        if other is not None:
            for spec in fields(self):
                if spec.name == "resolved":
                    continue
                value = getattr(other, spec.name)
                if value is not None:
                    changes[spec.name] = value
        valid = {spec.name for spec in fields(self)} - {"resolved"}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ConfigError(
                f"unknown execution knob(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}",
                field=unknown[0],
            )
        changes.update({k: v for k, v in overrides.items() if v is not None})
        if not changes:
            return self
        changes["resolved"] = False
        return replace(self, **changes)

    @classmethod
    def from_parallel(cls, parallel: ParallelConfig) -> "ExecutionConfig":
        """Lift a legacy :class:`ParallelConfig` into an execution config."""
        return cls(
            num_workers=parallel.num_workers,
            chunk_size=parallel.chunk_size,
            streaming=parallel.streaming,
            retry=parallel.retry,
            blas_threads=parallel.blas_threads,
        )

    def parallel(self) -> ParallelConfig:
        """The worker-pool slice of this config as a :class:`ParallelConfig`."""
        return ParallelConfig(
            num_workers=self.num_workers,
            chunk_size=self.chunk_size,
            streaming=self.streaming,
            retry=self.retry,
            blas_threads=self.blas_threads,
        )

    # ------------------------------------------------------------------ #
    # Resolution: the one explicit > env > default pass
    # ------------------------------------------------------------------ #
    def resolve(self) -> "ExecutionConfig":
        """Apply the environment legs and defaults, exactly once.

        Returns a new config with every field concrete (except the
        deliberate pass-throughs: ``backend``, ``shard_tiles``,
        ``chunk_size``, ``tile_size`` — see the field docs) and with
        :attr:`sources` recording per field whether the value was
        ``explicit``, came from its ``REPRO_*`` variable, or is the
        ``default``.  Resolving a resolved config returns it unchanged.
        """
        if self.resolved:
            return self
        values: dict = {}
        sources: dict[str, str] = {}

        def passthrough(name: str) -> None:
            values[name] = getattr(self, name)
            sources[name] = "explicit" if getattr(self, name) is not None else "default"

        def pick(name: str, env_name: str | None, env_value, default) -> None:
            explicit = getattr(self, name)
            if explicit is not None:
                values[name], sources[name] = explicit, "explicit"
            elif env_value is not None:
                values[name], sources[name] = env_value, env_name
            else:
                values[name], sources[name] = default, "default"

        passthrough("tile_size")
        passthrough("backend")
        passthrough("shard_tiles")
        passthrough("chunk_size")
        pick("batch_size", None, None, 8)
        pick("optical_diameter_pixels", None, None, 16)
        pick("compile", None, None, False)
        pick("num_workers", NUM_WORKERS_ENV, knobs.read_int(NUM_WORKERS_ENV, minimum=0), 0)
        pick("streaming", STREAMING_ENV, knobs.read_flag(STREAMING_ENV), True)
        pick("incremental", INCREMENTAL_ENV, knobs.read_flag(INCREMENTAL_ENV), True)
        # result_cache resolves to the byte budget (0 = off); the env leg
        # accepts a flag or a byte count, so reuse the cache's own parser.
        if self.result_cache is not None:
            values["result_cache"] = resolve_cache_budget(self.result_cache)
            sources["result_cache"] = "explicit"
        else:
            values["result_cache"] = resolve_cache_budget(None)
            sources["result_cache"] = (
                RESULT_CACHE_ENV if knobs.read_string(RESULT_CACHE_ENV) else "default"
            )
        pick(
            "blas_threads",
            BLAS_THREADS_ENV,
            knobs.read_int(BLAS_THREADS_ENV, minimum=0),
            1 if values["num_workers"] > 1 else 0,
        )
        values["retry"] = self._resolve_retry(sources)
        sources["retry"] = "explicit" if self.retry is not None else "default"

        config = replace(self, resolved=True, **values)
        object.__setattr__(config, "_sources", dict(sources))
        config.validate()
        return config

    def _resolve_retry(self, sources: dict[str, str]) -> RetryPolicy:
        """Fill the retry policy's ``None`` fields from env / defaults.

        ``timeout`` keeps an explicit ``0`` as ``0`` (the "deadline off even
        when the environment sets one" sentinel) instead of folding it to
        ``None`` — the worker pool re-resolves the policy at dispatch, and a
        ``None`` there would let the env deadline back in.
        """
        base = self.retry if self.retry is not None else RetryPolicy()
        timeout = base.timeout
        if timeout is not None:
            sources["retry.timeout"] = "explicit"
        else:
            timeout = knobs.read_float(WORKER_TIMEOUT_ENV)
            sources["retry.timeout"] = WORKER_TIMEOUT_ENV if timeout is not None else "default"
        max_retries = base.max_retries
        if max_retries is not None:
            sources["retry.max_retries"] = "explicit"
        else:
            max_retries = knobs.read_int(WORKER_RETRIES_ENV, minimum=0)
            sources["retry.max_retries"] = (
                WORKER_RETRIES_ENV if max_retries is not None else "default"
            )
            if max_retries is None:
                max_retries = DEFAULT_MAX_RETRIES
        degrade = base.degrade
        if degrade is not None:
            sources["retry.degrade"] = "explicit"
        else:
            degrade = knobs.read_flag(DEGRADE_ENV)
            sources["retry.degrade"] = DEGRADE_ENV if degrade is not None else "default"
            if degrade is None:
                degrade = True
        return RetryPolicy(
            timeout=timeout,
            max_retries=max_retries,
            degrade=degrade,
            backoff=base.backoff,
            backoff_cap=base.backoff_cap,
        )

    @property
    def sources(self) -> dict[str, str]:
        """``field -> provenance`` of a resolved config (empty before)."""
        return dict(getattr(self, "_sources", {}))

    def source_of(self, name: str) -> str:
        """Where a field's value came from: ``explicit`` / env name / ``default``."""
        stored = getattr(self, "_sources", None)
        if stored is not None and name in stored:
            return stored[name]
        return "explicit" if getattr(self, name, None) is not None else "unset"

    # ------------------------------------------------------------------ #
    # Validation (the future service's request-admission contract)
    # ------------------------------------------------------------------ #
    def validate(self) -> "ExecutionConfig":
        """Check every set field; raise :class:`ConfigError` naming field + source."""

        def fail(name: str, message: str) -> None:
            raise ConfigError(
                f"{name} {message} (from {self.source_of(name)})",
                field=name,
                source=self.source_of(name),
            )

        def check_min(name: str, minimum: int) -> None:
            value = getattr(self, name)
            if value is None:
                return
            if isinstance(value, bool) or not isinstance(value, int):
                fail(name, f"must be an integer, got {value!r}")
            if value < minimum:
                fail(name, f"must be at least {minimum}, got {value}")

        check_min("tile_size", 1)
        check_min("batch_size", 1)
        check_min("optical_diameter_pixels", 1)
        check_min("num_workers", 0)
        check_min("chunk_size", 1)
        check_min("blas_threads", 0)
        if isinstance(self.backend, str) and self.backend not in available_backends():
            fail(
                "backend",
                f"{self.backend!r} is not a registered compute backend; "
                f"valid backends: {', '.join(sorted(available_backends()))}",
            )
        if self.result_cache is not None and not isinstance(self.result_cache, (bool, int)):
            fail("result_cache", f"must be a flag or byte budget, got {self.result_cache!r}")
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            fail("retry", f"must be a RetryPolicy, got {self.retry!r}")
        for name in ("compile", "streaming", "shard_tiles", "incremental"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, bool):
                fail(name, f"must be a boolean, got {value!r}")
        return self

    # ------------------------------------------------------------------ #
    # Serialization (JSON-safe both ways)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe dict: ``from_dict(json.loads(json.dumps(d)))`` round-trips."""
        payload: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "retry" and value is not None:
                value = {
                    "timeout": value.timeout,
                    "max_retries": value.max_retries,
                    "degrade": value.degrade,
                    "backoff": value.backoff,
                    "backoff_cap": value.backoff_cap,
                }
            elif spec.name == "backend" and isinstance(value, ComputeBackend):
                value = value.name
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys raise)."""
        valid = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - valid)
        if unknown:
            raise ConfigError(
                f"unknown execution config key(s) {', '.join(unknown)}",
                field=unknown[0],
            )
        data = dict(payload)
        retry = data.get("retry")
        if isinstance(retry, dict):
            data["retry"] = RetryPolicy(**retry)
        return cls(**data)


@dataclass(frozen=True)
class ExecutionPlan:
    """The serializable execution plan of one pipeline invocation.

    Produced by :meth:`repro.pipeline.InferencePipeline.plan` *before*
    anything runs; :meth:`~repro.pipeline.InferencePipeline.execute` carries
    it out, and the executed :class:`~repro.pipeline.PipelineStats` mirror
    its ``mode`` / ``num_tiles`` / ``num_batches`` / ``sharded_tiles``
    (exactly, when the result cache is off — hits remove batches).  This is
    the unit the async serving scheduler will coalesce across requests.
    """

    engine: str
    mode: str                           # "native" | "stitched"
    num_masks: int
    mask_shape: tuple[int, int]
    batch_size: int
    tile_size: int | None = None
    tile_grid: tuple[int, int] = (0, 0)  # (rows, cols) of one mask's tiling
    tiles_per_mask: int = 0
    num_tiles: int = 0                   # GP tiles across the whole stream
    num_batches: int = 0                 # executor invocations
    super_batch: int = 0                 # tiles per GP dispatch (stitched only)
    num_workers: int = 0
    sharded_tiles: bool = False
    streaming: bool = False
    result_cache: bool = False
    compute_identity: str = ""           # hex cache-identity of the executor

    def to_dict(self) -> dict:
        payload = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        payload["mask_shape"] = list(self.mask_shape)
        payload["tile_grid"] = list(self.tile_grid)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionPlan":
        valid = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - valid)
        if unknown:
            raise ConfigError(
                f"unknown execution plan key(s) {', '.join(unknown)}",
                field=unknown[0],
            )
        data = dict(payload)
        data["mask_shape"] = tuple(data.get("mask_shape", ()))
        data["tile_grid"] = tuple(data.get("tile_grid", (0, 0)))
        return cls(**data)
