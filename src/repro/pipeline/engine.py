"""Batch-first inference pipeline: tile -> batch -> stitch.

:class:`InferencePipeline` is the single high-throughput execution engine
every inference consumer (evaluation, OPC, experiments, examples) routes
through.  Given masks of arbitrary size — one image, a batch, or full-chip
tiles larger than the engine's native tile — it

1. **plans** the work: masks at (or below) the native tile size run directly;
   oversized masks are cut into half-overlapping training-size tiles via
   :mod:`repro.layout.tiling` (paper §3.2, eq. (12)-(14)),
2. **batches** the model/simulator forwards with a configurable
   ``batch_size`` knob, and
3. **stitches** the core regions of the per-tile global-perception features
   back to full size before running the translation-invariant local
   perception and reconstruction paths on the whole mask.

The stitched plan reproduces the seed ``LargeTileSimulator`` algorithm
bit-for-bit for a single mask (same tile order, same GP batch partitioning,
same core margin), while batching tile forwards and full-mask reconstructions
across the whole input stream.  Simulator engines are size-agnostic (Hopkins
convolution) and run the batched single-FFT aerial path with cached SOCS
transfer functions.

Every run returns a :class:`PipelineResult` carrying the predictions plus
:class:`PipelineStats` (tiles, batches, wall time) so throughput benches and
regression trackers can observe the execution plan.

Choosing batch size and workers
-------------------------------
Two independent knobs control throughput:

* ``batch_size`` — tiles per executor invocation.  The conv hot path packs
  patches through a zero-copy sliding-window view with one cache-resident
  GEMM per sample, and :class:`~repro.pipeline.executors.ModelExecutor`
  splits large batches into cache-sized micro-batches internally, so bigger
  batches only help (seed: 35.5 ms/tile at bs=4 vs 21.9 at bs=1 on 64x64
  DOINN tiles; after the rewrite ~15.1 ms/tile at bs=1 and ~13.8-14.0 at
  bs>=2 on one core).  Larger batches amortize per-call planning overhead
  and feed the worker pool bigger shards; past the micro-batch size there
  is no cache penalty for going big.
* ``num_workers`` — processes the executor's batches are sharded across (see
  :mod:`repro.pipeline.parallel`; also settable fleet-wide via the
  ``REPRO_NUM_WORKERS`` environment variable).  Parallel output is
  bit-identical to serial.  Scaling follows the physical cores: on a
  multi-core host expect near-linear gains up to the core count (the
  acceptance bench requires >= 1.8x with 4 workers on >= 4 cores), while on
  a single-core host the sharding overhead makes workers a small net loss —
  leave the knob at 0 there.  ``benchmarks/bench_pipeline_throughput.py``
  sweeps both knobs and writes the measured table to
  ``artifacts/results/pipeline_throughput.txt``.

Two streaming refinements ride on top of the worker pool:

* ``streaming`` — keep the worker pool's shared-memory segments alive across
  pipeline calls in a persistent, generation-tagged ring
  (:mod:`repro.pipeline.streaming`; fleet-wide via ``REPRO_STREAMING``).  On
  repeated-call workloads (OPC iteration loops, full-chip tile streams) this
  skips the per-call ``shm_open``/``mmap``/copy-warming in the parent and
  every worker.  Default on; ``streaming=False`` restores the per-call
  transport.  Bit-identical either way.
* ``shard_tiles`` — let the stitched §3.2 plan hand the tile stream of a
  large mask (or mask batch) to the pool in ``num_workers x batch_size``
  super-batches, so the tiles of a single mask shard across all workers
  instead of being fed in ``batch_size``-bounded pool calls (one barrier +
  one segment fill per super-batch rather than per chunk, while the shared
  segments stay bounded at workers x batch_size tiles however large the
  layout is).  Worker-side micro-batching keeps each shard cache-resident,
  and the GP path is partition invariant, so the stitched output stays
  bit-identical to the serial and per-call plans.  Default: on whenever the
  executor is pooled; a serial pipeline keeps the ``batch_size``-chunked
  loop.

A third, orthogonal knob is ``compile`` — compile a model engine once into a
fused inference graph (conv->BN->LeakyReLU folded into single passes with a
pad-once buffer cache, :mod:`repro.nn.fusion`) and run every batch through
it.  Fused execution is per-sample like the unfused hot path, so it composes
with both knobs above and stays bit-identical across worker shardings.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..layout.tiling import TileSpec, extract_tiles, stitch_cores, tile_grid
from ..nn.backends import ComputeBackend, set_blas_threads
from .cache import (
    IncrementalState,
    MaskResultCache,
    choose_patch_tile,
    hash_array,
)
from .config import ExecutionConfig, ExecutionPlan
from .executors import Executor, as_executor
from .parallel import ParallelConfig, RetryPolicy, WorkerPoolExecutor

__all__ = ["InferencePipeline", "PipelineResult", "PipelineStats"]


@dataclass
class PipelineStats:
    """Observable execution plan of one pipeline run."""

    engine: str = ""
    mode: str = "native"          # "native" | "stitched" | "patched"
    num_masks: int = 0
    num_tiles: int = 0            # GP tiles executed (stitched mode only)
    num_batches: int = 0          # executor invocations
    sharded_tiles: bool = False   # GP tile stream dispatched as one pooled call
    seconds: float = 0.0
    cache_hits: int = 0           # masks answered from the result cache
    cache_misses: int = 0         # masks that had to be computed (cache enabled)
    dirty_tiles: int = 0          # tile windows re-simulated (patched mode only)
    chunks_retried: int = 0       # pooled chunks that needed another attempt
    workers_respawned: int = 0    # dead worker processes replaced mid-run
    degraded_runs: int = 0        # pooled dispatches degraded to in-process
    fault_events: int = 0         # injected faults fired (chaos testing only)

    @property
    def masks_per_second(self) -> float:
        """Throughput of the run; 0.0 when nothing ran.

        The elapsed time is clamped to one timer tick so a smoke run that
        finishes below the clock resolution can neither divide by zero nor
        report infinite throughput.
        """
        if self.num_masks == 0:
            return 0.0
        return self.num_masks / max(self.seconds, 1e-9)


@dataclass
class PipelineResult:
    """Predictions plus the stats of the run that produced them."""

    outputs: np.ndarray           # always (N, 1, H, W)
    stats: PipelineStats = field(default_factory=PipelineStats)


class InferencePipeline:
    """Unified batched inference over models and litho simulators.

    Parameters
    ----------
    engine:
        A learned model (:class:`repro.nn.Module`), a golden
        :class:`~repro.litho.simulator.LithoSimulator`, or a prebuilt
        :class:`~repro.pipeline.executors.Executor`.
    config:
        An :class:`~repro.pipeline.config.ExecutionConfig` owning every
        execution knob below.  This is the supported way to configure a
        pipeline; the per-knob keyword arguments are a deprecated
        compatibility shim (they build a config internally and emit a
        :class:`DeprecationWarning`).  The resolved config — explicit field
        > ``REPRO_*`` environment knob > default, applied exactly once —
        is available as ``pipeline.config``.
    tile_size:
        Native (training) tile size of the engine.  Masks larger than this
        trigger the §3.2 large-tile plan when the engine supports it; ``None``
        disables tiling entirely.
    batch_size:
        Default number of tiles / masks per executor invocation.
    optical_diameter_pixels:
        Optical ambit used to size the stitching core margin (``d`` in the
        paper; only the region further than ``d/2`` from a tile edge is
        trusted).
    num_workers:
        Worker processes the executor's batches are sharded across (see
        :mod:`repro.pipeline.parallel`).  ``None`` defers to the
        ``REPRO_NUM_WORKERS`` environment variable; values <= 1 run
        in-process exactly as before.
    chunk_size:
        Items per worker-pool chunk; ``None`` splits each batch evenly over
        the workers.
    parallel:
        A prebuilt :class:`~repro.pipeline.parallel.ParallelConfig`; explicit
        ``num_workers``/``chunk_size``/``streaming`` arguments override its
        fields.
    streaming:
        Keep the worker pool's shared-memory segments alive across pipeline
        calls in a persistent ring (:mod:`repro.pipeline.streaming`).  ``None``
        defers to the ``REPRO_STREAMING`` environment variable (then on);
        ``False`` restores the per-call segment transport.  Irrelevant (and
        ignored) for serial pipelines.
    shard_tiles:
        Let the stitched large-tile plan dispatch the GP tile stream in
        ``num_workers x batch_size`` super-batches so the tiles of one mask
        shard across all workers (with shared segments bounded at that size
        however large the layout is).  ``None`` (default) enables it exactly
        when the executor is pooled; ``False`` forces the
        ``batch_size``-chunked GP loop.  Bit-identical either way.
    compile:
        Compile a model engine once into a fused inference graph
        (:func:`repro.nn.compile_model`: conv->BN->activation fusion with a
        pad-once buffer cache) and run every batch through it.  Numerically
        equivalent to the unfused path within 1e-12 (pinned by the
        equivalence suite) and composes with ``num_workers`` sharding.
    result_cache:
        Content-hash result cache in front of :meth:`run` / :meth:`predict`
        (:class:`repro.pipeline.cache.MaskResultCache`): exact input repeats
        are answered without touching the executor, bit-identical because
        every executor path is partition invariant.  ``True`` enables the
        default byte budget, an ``int`` sets the budget in bytes, ``None``
        defers to the ``REPRO_RESULT_CACHE`` environment variable (then off).
        Hits/misses are reported in :class:`PipelineStats` and on
        ``pipeline.result_cache``.
    retry:
        Supervision policy for the pooled dispatch
        (:class:`~repro.pipeline.supervision.RetryPolicy`): per-chunk
        deadline, retry budget for failed chunks, and graceful in-process
        degradation when the pool is irrecoverable.  ``None`` defers to the
        ``REPRO_WORKER_TIMEOUT`` / ``REPRO_WORKER_RETRIES`` / ``REPRO_DEGRADE``
        environment variables (then the policy defaults: no deadline, 2
        retries, degradation on).  Retried and degraded chunks are
        bit-identical by construction; per-run counters land on
        :class:`PipelineStats`.  Ignored for serial pipelines.
    backend:
        Compute lane of the compiled fused graph (:mod:`repro.nn.backends`):
        ``"float64"`` (default, bit-identical), ``"float32"`` (calibrated
        tolerance, ~half the memory traffic), ``"blas"`` (stacked GEMMs for
        threaded BLAS) or ``"fft"`` (FFT-domain large-kernel deconvs).
        ``None`` defers to the ``REPRO_BACKEND`` environment variable (then
        ``float64``); requires ``compile=True`` for non-default lanes and
        only applies to model engines.
    blas_threads:
        BLAS thread cap (:func:`repro.nn.backends.set_blas_threads`):
        applied inside each pool worker, or in-process when serial.  ``None``
        defers to ``REPRO_BLAS_THREADS``, then 1-per-worker when pooled /
        leave-the-library-alone when serial, so ``workers x BLAS threads``
        never oversubscribes by default.
    """

    #: Legacy per-knob keyword arguments accepted (and deprecated) by
    #: ``__init__``; each maps 1:1 onto an :class:`ExecutionConfig` field.
    _LEGACY_KWARGS = (
        "tile_size", "batch_size", "optical_diameter_pixels", "num_workers",
        "chunk_size", "compile", "streaming", "shard_tiles", "result_cache",
        "retry", "backend", "blas_threads",
    )

    # repro: ok(CONFIG001, deprecated legacy kwarg shim kept for one release; new code passes config=)
    def __init__(
        self,
        engine,
        config: ExecutionConfig | None = None,
        *,
        tile_size: int | None = None,
        batch_size: int | None = None,
        optical_diameter_pixels: int | None = None,
        num_workers: int | None = None,
        chunk_size: int | None = None,
        parallel: ParallelConfig | None = None,
        compile: bool | None = None,
        streaming: bool | None = None,
        shard_tiles: bool | None = None,
        result_cache: bool | int | None = None,
        retry: RetryPolicy | None = None,
        backend: "str | ComputeBackend | None" = None,
        blas_threads: int | None = None,
    ) -> None:
        given = locals()
        legacy = {name: given[name] for name in self._LEGACY_KWARGS}
        used = sorted(name for name, value in legacy.items() if value is not None)
        if parallel is not None:
            used.append("parallel")
        if used:
            warnings.warn(
                f"InferencePipeline({', '.join(used)}=...) keyword knobs are "
                "deprecated; pass config=ExecutionConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            # Precedence preserved from the old hand-merged block: explicit
            # kwargs > the prebuilt ParallelConfig's fields; a config= given
            # alongside kwargs sits between the two.
            base = (
                ExecutionConfig.from_parallel(parallel)
                if parallel is not None
                else ExecutionConfig()
            )
            config = base.merged(config, **legacy)
        elif config is None:
            config = ExecutionConfig()
        #: The resolved execution config of this pipeline (one resolution
        #: pass: explicit field > ``REPRO_*`` knob > default).
        self.config = config.resolve()
        resolved = self.config
        self.executor: Executor = as_executor(
            engine, compile=bool(resolved.compile), backend=resolved.backend
        )
        self.compiled = getattr(self.executor, "compiled", False)
        self.num_workers = resolved.num_workers
        if self.num_workers > 1 and not isinstance(self.executor, WorkerPoolExecutor):
            self.executor = WorkerPoolExecutor(self.executor, config=resolved.parallel())
        elif isinstance(self.executor, WorkerPoolExecutor):
            self.num_workers = self.executor.num_workers
        self.streaming = (
            self.executor.streaming if isinstance(self.executor, WorkerPoolExecutor) else False
        )
        # Serial pipelines apply the BLAS cap in-process (pool workers get it
        # through the pool initializer; the parent stays untouched there so a
        # capped pooled pipeline doesn't detune later serial work).  The
        # serial default is 0 = leave the library alone.
        if resolved.blas_threads and self.num_workers <= 1:
            set_blas_threads(resolved.blas_threads)
        #: Compute backend of the executor (None for simulator engines).
        self.backend = getattr(self.executor, "backend", None)
        # Fold the compute identity (engine + backend lane + output dtype)
        # into every result-cache key: two pipelines sharing a cache across
        # backends/precisions must never serve each other's entries.  Keyed
        # off the *inner* executor so pooled and serial runs of the same
        # engine still share (they are bit-identical by construction).
        inner = self.executor.inner if isinstance(self.executor, WorkerPoolExecutor) else self.executor
        inner_backend = getattr(inner, "backend", None)
        identity = "|".join(
            (
                inner.name,
                inner_backend.name if inner_backend is not None else "golden",
                inner_backend.dtype.str if inner_backend is not None else "<f8",
            )
        )
        self._compute_identity = hashlib.blake2b(
            identity.encode(), digest_size=8
        ).digest()
        self.shard_tiles = resolved.shard_tiles
        self.tile_size = resolved.tile_size
        self.batch_size = resolved.batch_size
        self.optical_diameter_pixels = resolved.optical_diameter_pixels
        # resolved.result_cache is already the byte budget (0 = disabled).
        self.result_cache: MaskResultCache | None = (
            MaskResultCache(resolved.result_cache) if resolved.result_cache else None
        )
        if self.tile_size is not None and self.executor.supports_stitching:
            pool = self.executor.pool_factor
            if self.tile_size % pool:
                raise ValueError(
                    f"tile_size {self.tile_size} must be divisible by the GP pooling factor {pool}"
                )

    @property
    def name(self) -> str:
        return self.executor.name

    def close(self) -> None:
        """Release pooled resources (worker processes); a no-op when serial."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "InferencePipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def plan(
        self,
        masks: np.ndarray,
        batch_size: int | None = None,
        stitch: bool | None = None,
    ) -> ExecutionPlan:
        """The :class:`~repro.pipeline.config.ExecutionPlan` for ``masks``.

        Everything :meth:`run` is about to do, known up front: native vs
        stitched mode, the tile grid and super-batch shape, pooled-vs-serial
        dispatch, and the compute identity the result cache keys on.  The
        plan is serializable (``to_dict``/``from_dict`` round-trip through
        JSON) and :meth:`execute` carries it out — ``run()`` is exactly
        ``execute(plan(masks), masks)``.
        """
        batch4, _ = self._normalize(masks)
        return self._build_plan(batch4, batch_size or self.batch_size, stitch)

    def execute(self, plan: ExecutionPlan, masks: np.ndarray) -> PipelineResult:
        """Carry out a previously built plan over ``masks``.

        The masks must match the plan's ``num_masks`` / ``mask_shape`` and
        the plan must have been built for this engine; anything else raises
        :class:`ValueError` (a plan is not transferable across pipelines
        with different compute identities).
        """
        batch4, _ = self._normalize(masks)
        n = batch4.shape[0]
        if plan.engine != self.name:
            raise ValueError(
                f"plan was built for engine {plan.engine!r}, not {self.name!r}"
            )
        if n != plan.num_masks or batch4.shape[-2:] != plan.mask_shape:
            raise ValueError(
                f"plan covers {plan.num_masks} mask(s) of shape {plan.mask_shape}, "
                f"got {n} of shape {batch4.shape[-2:]}"
            )
        stats = PipelineStats(engine=self.name, mode=plan.mode, num_masks=n)
        if n == 0:
            return PipelineResult(outputs=batch4.copy(), stats=stats)
        robustness = self._robustness_snapshot()
        start = time.perf_counter()
        stitched = plan.mode == "stitched"
        if self.result_cache is None:
            outputs = (
                self._run_stitched(batch4, plan.batch_size, stats)
                if stitched
                else self._run_native(batch4, plan.batch_size, stats)
            )
        else:
            outputs = self._run_cached(batch4, plan.batch_size, stats, stitched)
        stats.seconds = time.perf_counter() - start
        self._record_robustness(stats, robustness)
        return PipelineResult(outputs=outputs, stats=stats)

    def run(
        self,
        masks: np.ndarray,
        batch_size: int | None = None,
        stitch: bool | None = None,
    ) -> PipelineResult:
        """Run the engine over ``masks`` and return predictions + stats.

        ``masks`` may be a single 2-D image ``(H, W)``, a 3-D batch
        ``(N, H, W)`` or a 4-D batch ``(N, 1, H, W)``; ``outputs`` is always
        ``(N, 1, H, W)`` (use :meth:`predict` to mirror the input layout).
        ``stitch=False`` forces the naive whole-image path regardless of size
        (the Table 4 "DOINN" row); ``None`` lets the planner decide.
        Equivalent to :meth:`plan` followed by :meth:`execute`.
        """
        batch4, _ = self._normalize(masks)
        if batch4.shape[0] == 0:
            return PipelineResult(
                outputs=batch4.copy(),
                stats=PipelineStats(engine=self.name, num_masks=0),
            )
        execution_plan = self._build_plan(batch4, batch_size or self.batch_size, stitch)
        return self.execute(execution_plan, batch4)

    def predict(
        self,
        masks: np.ndarray,
        batch_size: int | None = None,
        stitch: bool | None = None,
    ) -> np.ndarray:
        """Predictions with the same array layout as the input masks."""
        batch4, restore = self._normalize(masks)
        outputs = self.run(batch4, batch_size=batch_size, stitch=stitch).outputs
        return restore(outputs)

    def predict_naive(self, masks: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Whole-image predictions with tiling disabled (Table 4 "DOINN" row)."""
        return self.predict(masks, batch_size=batch_size, stitch=False)

    def gp_features(self, mask: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Stitched global-perception feature map of one 2-D mask (eq. (13)).

        Exposed for the large-tile scheme's invariant tests: every core-region
        entry is computed from a training-size window, so the Fourier-unit
        weights only ever see the spectrum they were trained on.
        """
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim != 2:
            raise ValueError("gp_features expects a single 2-D mask image")
        self._require_stitchable()
        self._validate_tiled_size(mask.shape)
        return self._gp_features_one(mask, batch_size or self.batch_size, PipelineStats())

    # ------------------------------------------------------------------ #
    # Incremental (patched) re-simulation plan
    # ------------------------------------------------------------------ #
    def incremental_state(
        self, shape: tuple[int, int], tile_size: int | None = None
    ) -> IncrementalState:
        """Build the dirty-tile state for :meth:`predict_patched` over ``shape``.

        Simulator engines patch at the *aerial* level: the mask is viewed
        through a half-overlapping window grid sized so each window's core
        margin (``tile_size // 4``) covers the optical influence radius —
        windowed re-simulation of dirty windows is then exact (see
        :mod:`repro.pipeline.cache`).  ``tile_size=None`` picks the smallest
        valid window automatically (the whole image when none divides it).

        Stitchable models patch at the *GP-feature* level with the pipeline's
        own ``tile_size`` and stitching margin, bit-identical to
        ``predict(stitch=True)``.  Engines with neither capability raise
        :class:`ValueError`.
        """
        h, w = int(shape[0]), int(shape[1])
        if hasattr(self.executor, "influence_radius"):
            radius = max(int(self.executor.influence_radius), 1)
            if tile_size is None:
                tile_size = choose_patch_tile(h, radius) if h == w else max(h, w)
            specs = tile_grid((h, w), tile_size)
            if len(specs) > 1 and tile_size // 4 < radius:
                raise ValueError(
                    f"patch window {tile_size} too small for influence radius "
                    f"{radius}; need tile_size >= {4 * radius}"
                )
            return IncrementalState(
                mode="aerial",
                shape=(h, w),
                tile_size=tile_size,
                specs=specs,
                margin=tile_size // 4,
                pool=1,
                support=2 * radius + 1,
            )
        if self.executor.supports_stitching and self.tile_size is not None:
            tile_size = tile_size or self.tile_size
            self._validate_tiled_size((h, w))
            pool = self.executor.pool_factor
            margin = max(1, int(np.ceil(self.optical_diameter_pixels / (2 * pool))))
            specs = tile_grid((h, w), tile_size)
            if len(specs) > 1 and margin > (tile_size // pool) // 4:
                raise ValueError(
                    f"stitching margin {margin} exceeds the pooled core budget "
                    f"{(tile_size // pool) // 4}; patched GP ownership would "
                    "not match the scan-order stitch"
                )
            return IncrementalState(
                mode="gp",
                shape=(h, w),
                tile_size=tile_size,
                specs=specs,
                margin=margin,
                pool=pool,
            )
        raise ValueError(
            f"engine {self.name} supports neither aerial patching nor GP core "
            "stitching; incremental re-simulation does not apply"
        )

    def predict_patched(
        self,
        mask: np.ndarray,
        state: IncrementalState,
        candidates: list[int] | None = None,
    ) -> np.ndarray:
        """Prediction of one 2-D mask, re-simulating only its dirty windows.

        ``state`` (from :meth:`incremental_state`) carries the per-window
        content hashes and the cached full-image map of the previous call.
        Windows whose content is unchanged are skipped; dirty windows run
        through the same ``num_workers x batch_size`` super-batch path as the
        stitched plan and their ownership regions are written back into the
        cached map.  ``candidates`` optionally bounds which windows need
        re-hashing (e.g. from the OPC fragment->tile index); windows outside
        it are *trusted* to be unchanged.  A hybrid cost model falls back to
        one native whole-image refresh whenever patching would be slower
        (first call, or a dirty set past the FFT-cost breakeven), so the
        patched plan never loses materially to :meth:`predict`.

        Results match the non-incremental path: bit-identical by construction
        for GP-mode models and for clean/full-refresh calls, and exact up to
        FFT summation order (equal resist images in every pinned equivalence
        run) for patched aerial windows.
        """
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim != 2 or mask.shape != state.shape:
            raise ValueError(
                f"predict_patched expects one 2-D mask of shape {state.shape}, "
                f"got {mask.shape}"
            )
        stats = PipelineStats(engine=self.name, mode="patched", num_masks=1)
        robustness = self._robustness_snapshot()
        start = time.perf_counter()
        counters = state.counters
        dirty = state.dirty_windows(mask, candidates)
        if state.cached_map is not None and not dirty:
            counters.clean_calls += 1
            counters.tiles_skipped += state.n_tiles
        elif state.cached_map is None or state.prefer_native(len(dirty)):
            self._refresh_full(mask, state, stats)
            counters.full_refreshes += 1
            state.record(mask)
        else:
            self._patch_windows(mask, state, dirty, stats)
            counters.patched_calls += 1
            counters.tiles_simulated += len(dirty)
            counters.tiles_skipped += state.n_tiles - len(dirty)
            stats.dirty_tiles = len(dirty)
            state.record(mask, dirty)
        output = self._finalize_patched(mask, state, stats)
        stats.seconds = time.perf_counter() - start
        self._record_robustness(stats, robustness)
        state.last_stats = stats
        if self.result_cache is not None:
            self.result_cache.put(
                self._cache_key(mask, stitched=state.mode == "gp"), output[None]
            )
        return output

    def _refresh_full(self, mask: np.ndarray, state: IncrementalState, stats: PipelineStats) -> None:
        """Rebuild the cached map from the whole mask (native / full stitch)."""
        if state.mode == "aerial":
            state.cached_map = self.executor.run_aerial(mask[None, None])[0, 0]
            stats.num_batches += 1
            return
        tiles, _ = extract_tiles(mask, state.tile_size)
        gp_tiles = self._run_gp_batches(tiles, self.batch_size, stats)
        h, w = state.shape
        state.cached_map = stitch_cores(
            gp_tiles, state.pooled_specs(), (h // state.pool, w // state.pool), state.margin
        )

    def _patch_windows(
        self, mask: np.ndarray, state: IncrementalState, dirty: list[int], stats: PipelineStats
    ) -> None:
        """Re-simulate the dirty windows and splice their ownership regions."""
        t = state.tile_size
        windows = np.stack(
            [mask[s.y0 : s.y0 + t, s.x0 : s.x0 + t] for s in (state.specs[i] for i in dirty)]
        )
        method = "run_aerial" if state.mode == "aerial" else "run_gp"
        outputs = self._run_gp_batches(windows, self.batch_size, stats, method=method)
        ownership = state.ownership()
        for k, i in enumerate(dirty):
            local, target = ownership[i]
            if state.mode == "aerial":
                state.cached_map[target] = outputs[k][0][local]
            else:
                state.cached_map[(slice(None), *target)] = outputs[k][(slice(None), *local)]

    def _finalize_patched(
        self, mask: np.ndarray, state: IncrementalState, stats: PipelineStats
    ) -> np.ndarray:
        """Turn the cached map into the engine's output for this mask."""
        if state.mode == "aerial":
            return self.executor.finalize_patched(state.cached_map)
        output = self.executor.run_reconstruction(state.cached_map[None], mask[None, None])
        stats.num_batches += 1
        return output[0, 0]

    # ------------------------------------------------------------------ #
    # Planning helpers
    # ------------------------------------------------------------------ #
    def _robustness_snapshot(self):
        """Cumulative supervision counters before a run (pooled executors only)."""
        counters = getattr(self.executor, "robustness", None)
        return None if counters is None else (counters, counters.snapshot())

    @staticmethod
    def _record_robustness(stats: PipelineStats, snapshot) -> None:
        """Write this run's share of the supervision counters onto ``stats``."""
        if snapshot is None:
            return
        counters, before = snapshot
        delta = counters.delta(before)
        stats.chunks_retried = delta.chunks_retried
        stats.workers_respawned = delta.workers_respawned
        stats.degraded_runs = delta.degraded_runs
        stats.fault_events = delta.fault_events

    @staticmethod
    def _normalize(masks: np.ndarray):
        """Coerce input to ``(N, 1, H, W)`` plus a layout-restoring closure."""
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim == 2:
            return masks[None, None], lambda out: out[0, 0]
        if masks.ndim == 3:
            return masks[:, None], lambda out: out[:, 0]
        if masks.ndim == 4:
            if masks.shape[1] != 1:
                raise ValueError(f"expected a single mask channel, got shape {masks.shape}")
            return masks, lambda out: out
        raise ValueError(f"masks must be 2-D, 3-D or 4-D, got shape {masks.shape}")

    def _plan_stitched(self, batch4: np.ndarray, stitch: bool | None) -> bool:
        if stitch is False:
            return False
        h, w = batch4.shape[-2:]
        oversized = (
            self.tile_size is not None
            and not self.executor.arbitrary_size
            and max(h, w) > self.tile_size
        )
        if stitch is True:
            self._require_stitchable()
            return True
        return oversized and self.executor.supports_stitching

    def _build_plan(
        self, batch4: np.ndarray, batch_size: int, stitch: bool | None
    ) -> ExecutionPlan:
        """Build the :class:`ExecutionPlan` of one invocation.

        The batch math mirrors :meth:`_run_native` / :meth:`_run_stitched` /
        :meth:`_run_gp_batches` exactly, so an executed run's
        :class:`PipelineStats` match the plan field for field (when the
        result cache is off — cache hits remove batches at execution time).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        n = batch4.shape[0]
        h, w = batch4.shape[-2:]
        common = dict(
            engine=self.name,
            num_masks=n,
            mask_shape=(h, w),
            batch_size=batch_size,
            num_workers=self.num_workers,
            streaming=self.streaming,
            result_cache=self.result_cache is not None,
            compute_identity=self._compute_identity.hex(),
        )
        stitched = n > 0 and self._plan_stitched(batch4, stitch)
        if not stitched:
            return ExecutionPlan(
                mode="native",
                num_batches=-(-n // batch_size) if n else 0,
                **common,
            )
        self._validate_tiled_size((h, w))
        specs = tile_grid((h, w), self.tile_size)
        tiles_per_mask = len(specs)
        total_tiles = n * tiles_per_mask
        sharded = self._shards_tile_stream()
        super_batch = (
            batch_size * max(1, self.executor.num_workers) if sharded else batch_size
        )
        gp_batches = -(-total_tiles // super_batch)
        reconstruction_batches = -(-n // batch_size)
        return ExecutionPlan(
            mode="stitched",
            tile_size=self.tile_size,
            tile_grid=(max(s.row for s in specs) + 1, max(s.col for s in specs) + 1),
            tiles_per_mask=tiles_per_mask,
            num_tiles=total_tiles,
            num_batches=gp_batches + reconstruction_batches,
            super_batch=super_batch,
            sharded_tiles=sharded,
            **common,
        )

    def _require_stitchable(self) -> None:
        if self.tile_size is None:
            raise ValueError("stitched execution requires a tile_size")
        if not self.executor.supports_stitching:
            raise ValueError(f"engine {self.name} does not support GP core stitching")

    def _validate_tiled_size(self, shape: tuple[int, int]) -> None:
        h, w = shape
        if h % self.tile_size or w % self.tile_size:
            raise ValueError(
                f"mask size {(h, w)} must be a multiple of the training tile size "
                f"{self.tile_size}"
            )

    # ------------------------------------------------------------------ #
    # Execution plans
    # ------------------------------------------------------------------ #
    def _cache_key(self, mask2d: np.ndarray, stitched: bool) -> bytes:
        """Cache key of one mask: content hash + execution plan + compute identity.

        The compute-identity suffix (engine name, backend lane, output dtype)
        keeps caches shared across pipelines honest: a float32-lane run can
        never hit a float64 entry (and vice versa), and two different engines
        never alias.
        """
        return hash_array(mask2d) + (b"s" if stitched else b"n") + self._compute_identity

    def _run_cached(
        self, batch4: np.ndarray, batch_size: int, stats: PipelineStats, stitched: bool
    ) -> np.ndarray:
        """Serve exact repeats from the result cache; compute only the misses.

        The miss subset runs as one smaller batch — bit-identical to running
        the full batch because every executor path is partition invariant
        (the same invariance the worker pool's sharding relies on, pinned by
        the parallel equivalence suites).
        """
        cache = self.result_cache
        keys = [self._cache_key(batch4[i, 0], stitched) for i in range(batch4.shape[0])]
        found = [cache.get(key) for key in keys]
        miss = [i for i, value in enumerate(found) if value is None]
        stats.cache_hits = batch4.shape[0] - len(miss)
        stats.cache_misses = len(miss)
        if not miss:
            return np.stack(found)
        sub = np.ascontiguousarray(batch4[miss])
        sub_out = (
            self._run_stitched(sub, batch_size, stats)
            if stitched
            else self._run_native(sub, batch_size, stats)
        )
        for j, i in enumerate(miss):
            cache.put(keys[i], sub_out[j])
            found[i] = sub_out[j]
        return np.stack(found)

    def _run_native(self, batch4: np.ndarray, batch_size: int, stats: PipelineStats) -> np.ndarray:
        outputs = []
        for start in range(0, batch4.shape[0], batch_size):
            outputs.append(self.executor.run_batch(batch4[start : start + batch_size]))
            stats.num_batches += 1
        return np.concatenate(outputs, axis=0)

    def _run_stitched(self, batch4: np.ndarray, batch_size: int, stats: PipelineStats) -> np.ndarray:
        self._require_stitchable()
        n, _, h, w = batch4.shape
        self._validate_tiled_size((h, w))

        # Phase 1: tiled global perception (eq. (13)).  All masks share one
        # tile grid (same size), so their tiles are concatenated into one
        # stream and the GP forwards are batched across it — for a single
        # mask this degenerates to the seed per-mask partitioning exactly.
        per_mask = None
        all_tiles = []
        specs = None
        for i in range(n):
            tiles, specs = extract_tiles(batch4[i, 0], self.tile_size)
            per_mask = tiles.shape[0]
            all_tiles.append(tiles)
        gp_tiles = self._run_gp_batches(np.concatenate(all_tiles, axis=0), batch_size, stats)
        gp = np.stack(
            [
                self._stitch(gp_tiles[i * per_mask : (i + 1) * per_mask], specs, (h, w))
                for i in range(n)
            ]
        )
        # Phase 2: local perception + reconstruction on the full masks, batched
        # across the input stream (eq. (14): both paths are translation
        # invariant, so nothing else changes at the large size).
        outputs = []
        for start in range(0, n, batch_size):
            outputs.append(
                self.executor.run_reconstruction(
                    gp[start : start + batch_size], batch4[start : start + batch_size]
                )
            )
            stats.num_batches += 1
        return np.concatenate(outputs, axis=0)

    def _shards_tile_stream(self) -> bool:
        """Whether the stitched plan dispatches one pooled GP invocation.

        Intra-mask sharding needs a worker pool to shard onto; with
        ``shard_tiles=None`` it engages exactly when the executor is pooled,
        and ``shard_tiles=False`` opts back into the ``batch_size``-chunked
        GP loop (the per-call plan the equivalence tests compare against).
        """
        if self.shard_tiles is False:
            return False
        return isinstance(self.executor, WorkerPoolExecutor) and self.executor.num_workers > 1

    def _run_gp_batches(
        self, tiles: np.ndarray, batch_size: int, stats: PipelineStats, method: str = "run_gp"
    ) -> np.ndarray:
        """Per-tile forwards over a tile stream ``(n, t, t)``.

        ``method`` selects the executor hook: ``run_gp`` (stitched GP plan)
        or ``run_aerial`` (incremental window patching) — both take
        ``(B, 1, t, t)`` and are partition invariant, so the super-batch
        sharding below applies unchanged.
        """
        run = getattr(self.executor, method)
        if self._shards_tile_stream():
            # Pooled invocations of num_workers * batch_size tiles: every
            # tile of every mask — including the tiles of a *single* large
            # mask — shards across the workers, with one barrier and one
            # segment fill per ~batch_size tiles *per worker* instead of per
            # batch_size tiles total.  The super-batch bound keeps the shared
            # segments (and the persistent ring's grow-only capacity) at
            # workers x batch_size tiles however large the layout stream is,
            # and worker-side micro-batching keeps each shard cache-resident.
            # The GP path is partition invariant, so the result is
            # bit-identical to the chunked and serial plans.
            stats.sharded_tiles = True
            stream = batch_size * max(1, self.executor.num_workers)
            gp_outputs = []
            for start in range(0, tiles.shape[0], stream):
                gp_outputs.append(run(tiles[start : start + stream][:, None]))
                stats.num_batches += 1
            stats.num_tiles += tiles.shape[0]
            return gp_outputs[0] if len(gp_outputs) == 1 else np.concatenate(gp_outputs, axis=0)
        gp_outputs = []
        for start in range(0, tiles.shape[0], batch_size):
            gp_outputs.append(run(tiles[start : start + batch_size][:, None]))
            stats.num_batches += 1
        stats.num_tiles += tiles.shape[0]
        return np.concatenate(gp_outputs, axis=0)            # (n, C, tile/p, tile/p)

    def _stitch(self, gp_tiles: np.ndarray, specs, shape: tuple[int, int]) -> np.ndarray:
        """Stitch one mask's pooled GP tile cores back to full size.

        Tile positions are re-expressed at the pooled resolution and only the
        core further than half the optical diameter from any tile edge is
        kept.
        """
        pool = self.executor.pool_factor
        tile = self.tile_size
        pooled_specs = [
            TileSpec(row=s.row, col=s.col, y0=s.y0 // pool, x0=s.x0 // pool, size=tile // pool)
            for s in specs
        ]
        margin = max(1, int(np.ceil(self.optical_diameter_pixels / (2 * pool))))
        h, w = shape
        return stitch_cores(gp_tiles, pooled_specs, (h // pool, w // pool), margin)

    def _gp_features_one(
        self, mask: np.ndarray, batch_size: int, stats: PipelineStats
    ) -> np.ndarray:
        """Tile one mask, run GP in batches, stitch the pooled cores."""
        tiles, specs = extract_tiles(mask, self.tile_size)
        gp_tiles = self._run_gp_batches(tiles, batch_size, stats)
        return self._stitch(gp_tiles, specs, mask.shape)
