"""Batch executors: one uniform interface over models and litho simulators.

The inference pipeline plans *what* to run (tiles, batches, stitching); an
executor defines *how* one batch is run.  Two families exist:

* :class:`ModelExecutor` wraps any :class:`repro.nn.Module`.  Forwards run
  under :func:`repro.nn.eval_mode` + ``no_grad`` so inference never clobbers
  the caller's train/eval state.  With ``compile=True`` the model is compiled
  once into a :class:`repro.nn.fusion.FusedInferenceGraph` (conv->BN->act
  fusion + pad-once buffer cache) and every batch runs the fused graph; fused
  execution stays per-sample, so it composes with
  :class:`~repro.pipeline.parallel.WorkerPoolExecutor` sharding bit-for-bit.
  When the wrapped model exposes the DOINN path decomposition
  (``global_perception`` / ``local_perception`` / ``reconstruction``), the
  executor also exposes the per-path hooks the large-tile stitching plan
  needs (paper §3.2) — compiled or not.
* :class:`SimulatorExecutor` wraps the golden :class:`LithoSimulator`.  It is
  size-agnostic (the Hopkins/SOCS model convolves masks of any size) and
  routes whole batches through the single-FFT aerial-image path, so the SOCS
  transfer functions are computed once and shared by every mask.  Each
  executor owns one :class:`~repro.litho.hopkins.AerialWorkspace`, so the FFT
  scratch buffers of the aerial hot loop are allocated once per executor —
  and, under :class:`~repro.pipeline.parallel.WorkerPoolExecutor`, once per
  worker process (the workspace pickles empty).

:func:`as_executor` adapts a raw model / simulator / executor uniformly; it is
what lets ``InferencePipeline(engine)`` accept any of the three.
"""

from __future__ import annotations

import numpy as np

from ..litho.hopkins import AerialWorkspace
from ..nn import FusedInferenceGraph, Module, Tensor, compile_model, eval_mode, no_grad
from ..nn.backends import DEFAULT_BACKEND, ComputeBackend, get_backend, resolve_backend

__all__ = ["Executor", "ModelExecutor", "SimulatorExecutor", "as_executor"]


class Executor:
    """Interface: run one ``(B, 1, H, W)`` mask batch to predictions."""

    #: Human-readable engine name (used in stats / throughput reports).
    name: str = "executor"
    #: Whether ``run_batch`` accepts masks of any size without tiling.
    arbitrary_size: bool = False
    #: Whether the large-tile GP-stitching plan of §3.2 applies.
    supports_stitching: bool = False

    def run_batch(self, batch: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


class ModelExecutor(Executor):
    """Executor over a learned model (DOINN or any baseline).

    Forwards run in cache-resident **micro-batches**: a deep conv stack holds
    roughly ``32 x H x W`` doubles of activations per sample, and pushing more
    than a couple of megabytes of them through one forward spills the
    per-core cache, making batched inference *slower* per sample than
    ``batch_size=1`` (the bs=4 regression this PR fixes).  ``run_batch`` and
    ``run_reconstruction`` therefore split large batches internally; outputs
    are bit-identical to the unsplit forward because every per-sample op in
    :mod:`repro.nn.functional` is partition-invariant.
    """

    #: Target activation bytes per micro-batch (measured sweet spot: 2 tiles
    #: of 64x64 at ~32 channels on one x86 core).
    MICRO_BATCH_BUDGET_BYTES = 2 * 1024 * 1024
    #: Coarse per-sample activation width estimate used to size micro-batches.
    ACTIVATION_CHANNEL_ESTIMATE = 32
    #: Per-sample estimate for compiled (fused) graphs.  Fused chains keep a
    #: padded entry buffer *and* a padded output scratch buffer resident per
    #: op (the pad-once cache of :class:`repro.nn.fusion.FusedChain`), roughly
    #: doubling the per-sample working set — sizing compiled micro-batches
    #: with the unfused estimate overfilled the cache and made compiled
    #: bs>=2 ~1.3x slower per tile than bs=1 (the regression this fixes).
    FUSED_ACTIVATION_CHANNEL_ESTIMATE = 64

    def __init__(
        self,
        model: Module,
        compile: bool = False,
        backend: "str | ComputeBackend | None" = None,
    ) -> None:
        if not isinstance(model, Module):
            raise TypeError(f"ModelExecutor expects an nn.Module, got {type(model).__name__}")
        # Backend resolution (explicit arg > REPRO_BACKEND > float64) happens
        # here, at the executor boundary — compile_model itself never reads
        # the env var, so direct compiles stay environment-immune.
        requested = backend
        resolved = resolve_backend(backend)
        if isinstance(model, FusedInferenceGraph):
            compile = True
        elif compile:
            model = compile_model(model)
        if isinstance(model, FusedInferenceGraph):
            current = model.backend
            if requested is not None:
                target = get_backend(requested)
                if current is None or current.name != target.name:
                    model.convert(target)
            elif current is None and resolved.name != DEFAULT_BACKEND:
                # Env-selected lane; a pre-converted graph keeps its lane
                # (the caller's explicit compile wins over the environment).
                model.convert(resolved)
            self.backend = model.backend if model.backend is not None else resolved
        else:
            if requested is not None and get_backend(requested).name != DEFAULT_BACKEND:
                raise ValueError(
                    f"backend {get_backend(requested).name!r} requires the compiled "
                    "fused path; pass compile=True"
                )
            # An env-resolved non-default lane is ignored on the unfused path
            # (there is nothing to convert); explicit requests raise above.
            self.backend = get_backend(DEFAULT_BACKEND)
        self.model = model
        self.compiled = bool(compile)
        base = model.source_name if isinstance(model, FusedInferenceGraph) else type(model).__name__
        self.name = f"{base}[compiled]" if self.compiled else base

    def _micro_batch(self, height: int, width: int) -> int:
        """Samples per micro-batch; never 0, however large the tile geometry.

        A single sample whose activations exceed the whole budget (e.g. a
        4096x4096 tile) must still run — the floor division is clamped to 1,
        and a degenerate zero-area geometry cannot divide by zero.  Compiled
        engines budget with the fused working-set estimate (padded scratch
        buffers), so their micro-batches are smaller for the same geometry.
        """
        channels = (
            self.FUSED_ACTIVATION_CHANNEL_ESTIMATE
            if self.compiled
            else self.ACTIVATION_CHANNEL_ESTIMATE
        )
        per_sample = channels * height * width * self.backend.dtype.itemsize
        return max(1, self.MICRO_BATCH_BUDGET_BYTES // max(per_sample, 1))

    @staticmethod
    def _finalize(out: np.ndarray) -> np.ndarray:
        """Executor boundary: predictions leave in float64 whatever the lane.

        Keeps stitching/splicing arithmetic (and the pooled shared-memory
        output specs) dtype-stable across backends; within a lane the cast is
        per-sample and partition invariant, so pooled/sharded plans stay
        bit-identical to serial wherever the lane itself is.
        """
        return out if out.dtype == np.float64 else out.astype(np.float64)

    @property
    def supports_stitching(self) -> bool:
        """True when the model has the GP/LP/IR decomposition of DOINN."""
        return hasattr(self.model, "global_perception") and hasattr(self.model, "reconstruction")

    @property
    def pool_factor(self) -> int:
        """GP pooling factor (resolution of the stitched feature map)."""
        return int(self.model.config.pool_factor)

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        micro = self._micro_batch(batch.shape[-2], batch.shape[-1])
        with eval_mode(self.model), no_grad():
            if batch.shape[0] <= micro:
                return self._finalize(self.model(Tensor(batch)).numpy())
            return self._finalize(
                np.concatenate(
                    [
                        self.model(Tensor(batch[start : start + micro])).numpy()
                        for start in range(0, batch.shape[0], micro)
                    ]
                )
            )

    # -- DOINN path hooks for the large-tile stitching plan ------------- #
    def run_gp(self, tiles: np.ndarray) -> np.ndarray:
        """Global-perception features of a tile batch ``(B, 1, t, t)``.

        Micro-batched like :meth:`run_batch` (bit-identical: the GP path is
        partition invariant), so the stitched plan can hand a whole mask's
        tile stream to one worker shard without spilling the cache.
        """
        micro = self._micro_batch(tiles.shape[-2], tiles.shape[-1])
        with eval_mode(self.model), no_grad():
            if tiles.shape[0] <= micro:
                return self._finalize(self.model.global_perception(Tensor(tiles)).numpy())
            return self._finalize(
                np.concatenate(
                    [
                        self.model.global_perception(Tensor(tiles[start : start + micro])).numpy()
                        for start in range(0, tiles.shape[0], micro)
                    ]
                )
            )

    def run_reconstruction(self, gp: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """LP + image reconstruction on full-size masks with stitched GP maps.

        ``gp`` is ``(B, C, H/p, W/p)``, ``masks`` is ``(B, 1, H, W)``; the LP
        and IR paths are translation invariant, so they run on the full mask
        directly (paper eq. (14)), in the same cache-resident micro-batches
        as :meth:`run_batch`.
        """
        micro = self._micro_batch(masks.shape[-2], masks.shape[-1])
        with eval_mode(self.model), no_grad():
            outputs = []
            for start in range(0, masks.shape[0], micro):
                mask_mb = Tensor(masks[start : start + micro])
                lp = (
                    self.model.local_perception(mask_mb)
                    if getattr(self.model, "local_perception", None) is not None
                    else None
                )
                outputs.append(
                    self.model.reconstruction(Tensor(gp[start : start + micro]), lp).numpy()
                )
            return self._finalize(outputs[0] if len(outputs) == 1 else np.concatenate(outputs))


class SimulatorExecutor(Executor):
    """Executor over the golden Hopkins/SOCS lithography simulator."""

    arbitrary_size = True

    def __init__(self, simulator, output: str = "resist") -> None:
        if output not in ("resist", "aerial"):
            raise ValueError(f"output must be 'resist' or 'aerial', got {output!r}")
        self.simulator = simulator
        self.output = output
        self.name = f"{type(simulator).__name__}[{output}]"
        self.workspace = AerialWorkspace()

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        aerial = self.simulator.aerial(batch[:, 0], workspace=self.workspace)
        if self.output == "aerial":
            return aerial[:, None]
        return self.simulator.resist.develop(aerial)[:, None]

    # -- hooks for the incremental (patched) re-simulation plan --------- #
    @property
    def influence_radius(self) -> int:
        """Pixels a mask edit can reach in the aerial image.

        The Hopkins aerial is a linear convolution with kernels of finite
        support ``s`` (zero-padded FFTs, :mod:`repro.litho.hopkins`), so an
        output pixel depends only on mask pixels within ``(s - 1) // 2``.
        This bounds the core margin the patched plan needs for exact windowed
        re-simulation.
        """
        return (self.simulator.kernels.support - 1) // 2

    def run_aerial(self, tiles: np.ndarray) -> np.ndarray:
        """Aerial intensity of a tile-window batch ``(B, 1, t, t)``.

        Same batched single-FFT path as :meth:`run_batch`, without the resist
        threshold — the patched plan splices these window aerials into a
        cached full-image aerial and develops once at the end.
        """
        return self.simulator.aerial(tiles[:, 0], workspace=self.workspace)[:, None]

    def finalize_patched(self, aerial: np.ndarray) -> np.ndarray:
        """Turn the cached full-image aerial into this executor's output."""
        if self.output == "aerial":
            return aerial.copy()
        return self.simulator.resist.develop(aerial)


def as_executor(
    engine,
    output: str = "resist",
    compile: bool = False,
    backend: "str | ComputeBackend | None" = None,
) -> Executor:
    """Adapt a model, simulator or executor to the :class:`Executor` interface.

    ``compile=True`` compiles a model engine into a fused inference graph
    (see :func:`repro.nn.compile_model`); it is rejected for engines that have
    no fused path rather than silently ignored.  ``backend`` selects the
    compute lane of the compiled graph (see :mod:`repro.nn.backends`); like
    ``compile`` it only applies to raw model engines.
    """
    if isinstance(engine, Executor):
        if compile:
            raise ValueError(
                "compile=True requires a raw model engine; wrap the model with "
                "ModelExecutor(model, compile=True) before building executors"
            )
        if backend is not None:
            raise ValueError(
                "backend= requires a raw model engine; construct "
                "ModelExecutor(model, compile=True, backend=...) directly"
            )
        return engine
    if isinstance(engine, Module):
        return ModelExecutor(engine, compile=compile, backend=backend)
    if hasattr(engine, "aerial") and hasattr(engine, "resist"):
        if compile:
            raise ValueError("compile=True requires a model engine; the golden simulator has no fused path")
        if backend is not None:
            raise ValueError(
                "backend lanes apply to model engines; the golden simulator has no fused path"
            )
        return SimulatorExecutor(engine, output=output)
    raise TypeError(
        f"cannot build an executor from {type(engine).__name__}; expected an "
        "nn.Module, a LithoSimulator or an Executor"
    )
