"""Training callbacks: history recording and console progress."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainingHistory", "ConsoleLogger"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    epoch_losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    validation_miou: list[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def epochs(self) -> int:
        return len(self.epoch_losses)

    def improved(self) -> bool:
        """Whether the loss at the end is lower than after the first epoch."""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


class ConsoleLogger:
    """Minimal progress printer used by the examples."""

    def __init__(self, prefix: str = "train") -> None:
        self.prefix = prefix

    def __call__(self, epoch: int, batch: int, loss: float) -> None:
        print(f"[{self.prefix}] epoch {epoch} batch {batch}: loss {loss:.5f}")
