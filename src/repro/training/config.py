"""Training configuration (paper Table 8).

The paper trains every model with the same recipe:

==========================  =======================
Max Epoch                   10
Initial Learning Rate       0.002
Learning Rate Decay Policy  Step, every 2 epochs
Learning Rate Decay Factor  0.5
Batch Size                  16
Optimizer                   Adam
Weight Decay                0.0001
Loss                        MSE
==========================  =======================

:func:`TrainingConfig.paper` returns exactly those values;
:func:`TrainingConfig.fast` is a scaled-down recipe used by tests and the
reduced-size benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

__all__ = ["TrainingConfig"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run."""

    max_epochs: int = 10
    learning_rate: float = 0.002
    lr_decay_every: int = 2
    lr_decay_factor: float = 0.5
    batch_size: int = 16
    weight_decay: float = 1e-4
    loss: str = "mse"                  # "mse", "bce" or "dice"
    shuffle: bool = True
    augment: bool = False
    log_every: int = 0                 # batches between progress callbacks (0 = off)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("max_epochs and batch_size must be positive")
        if self.loss not in ("mse", "bce", "dice"):
            raise ValueError(f"unknown loss '{self.loss}'")

    @staticmethod
    def paper() -> "TrainingConfig":
        """The exact Table 8 configuration."""
        return TrainingConfig()

    @staticmethod
    def fast(max_epochs: int = 4, batch_size: int = 4) -> "TrainingConfig":
        """A reduced recipe for CPU-scale experiments and tests."""
        return TrainingConfig(
            max_epochs=max_epochs,
            batch_size=batch_size,
            learning_rate=0.004,
            lr_decay_every=2,
        )

    def as_rows(self) -> list[tuple[str, object]]:
        """Rows for reproducing Table 8 in the experiment harness."""
        return [
            ("Max Epoch", self.max_epochs),
            ("Initial Learning Rate", self.learning_rate),
            ("Learning Rate Decay Policy", f"Step, Every {self.lr_decay_every} epochs"),
            ("Learning Rate Decay Factor", self.lr_decay_factor),
            ("Batch Size", self.batch_size),
            ("Optimizer", "Adam"),
            ("Weight Decay", self.weight_decay),
            ("Loss", self.loss.upper()),
        ]

    def to_dict(self) -> dict:
        return asdict(self)
