"""Training loop and configuration (paper Table 8)."""

from .callbacks import ConsoleLogger, TrainingHistory
from .config import TrainingConfig
from .trainer import Trainer

__all__ = ["TrainingConfig", "Trainer", "TrainingHistory", "ConsoleLogger"]
