"""Supervised training loop implementing the paper's Table 8 recipe."""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .. import nn
from ..data.dataloader import DataLoader
from ..data.dataset import MaskResistDataset
from ..data.transforms import RandomFlip
from ..metrics.segmentation import mean_iou
from ..nn import Adam, StepLR, Tensor
from .callbacks import TrainingHistory
from .config import TrainingConfig

__all__ = ["Trainer"]

_LOSSES: dict[str, Callable[[Tensor, Tensor], Tensor]] = {
    "mse": nn.mse_loss,
    "bce": lambda p, t: nn.bce_loss(p * 0.5 + 0.5, t),   # map tanh output to (0, 1)
    "dice": lambda p, t: nn.dice_loss(p * 0.5 + 0.5, t),
}


class Trainer:
    """Train a mask-to-resist model on a :class:`MaskResistDataset`."""

    def __init__(self, model: nn.Module, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = StepLR(
            self.optimizer,
            step_size=self.config.lr_decay_every,
            gamma=self.config.lr_decay_factor,
        )
        self.loss_fn = _LOSSES[self.config.loss]

    # ------------------------------------------------------------------ #
    def fit(
        self,
        train_data: MaskResistDataset,
        validation_data: MaskResistDataset | None = None,
        progress: Callable[[int, int, float], None] | None = None,
    ) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history."""
        config = self.config
        loader = DataLoader(
            train_data,
            batch_size=config.batch_size,
            shuffle=config.shuffle,
            transform=RandomFlip() if config.augment else None,
            rng=np.random.default_rng(config.seed),
        )
        history = TrainingHistory()
        start = time.perf_counter()

        self.model.train()
        for epoch in range(config.max_epochs):
            epoch_loss = 0.0
            batches = 0
            for batch_index, (masks, resists) in enumerate(loader):
                loss = self.train_step(masks, resists)
                epoch_loss += loss
                batches += 1
                if progress is not None and config.log_every and batch_index % config.log_every == 0:
                    progress(epoch, batch_index, loss)
            history.epoch_losses.append(epoch_loss / max(batches, 1))
            history.learning_rates.append(self.optimizer.lr)
            if validation_data is not None:
                history.validation_miou.append(self.validate(validation_data))
            self.scheduler.step()

        history.wall_time = time.perf_counter() - start
        return history

    # ------------------------------------------------------------------ #
    def train_step(self, masks: np.ndarray, resists: np.ndarray) -> float:
        """One optimization step on a batch; returns the scalar loss."""
        self.optimizer.zero_grad()
        prediction = self.model(Tensor(masks))
        loss = self.loss_fn(prediction, Tensor(resists))
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def validate(self, data: MaskResistDataset, batch_size: int = 8, threshold: float = 0.5) -> float:
        """Mean IOU of the model over a dataset (predictions thresholded at 0.5)."""
        self.model.eval()
        scores = []
        with nn.no_grad():
            for start in range(0, len(data), batch_size):
                masks = data.masks[start : start + batch_size]
                resists = data.resists[start : start + batch_size]
                prediction = self.model(Tensor(masks)).numpy()
                for p, g in zip(prediction, resists):
                    scores.append(mean_iou(p[0], g[0], threshold=threshold))
        self.model.train()
        return float(np.mean(scores)) if scores else float("nan")
