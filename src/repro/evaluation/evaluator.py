"""Model evaluation: mPA / mIOU over a dataset (paper Table 2 columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import MaskResistDataset
from ..metrics.contour import contour_distance_stats
from ..metrics.segmentation import mean_iou, mean_pixel_accuracy

__all__ = ["EvaluationResult", "evaluate_predictions", "evaluate_model"]


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated metrics of one model on one dataset."""

    mpa: float
    miou: float
    contour_mean_px: float
    contour_max_px: float
    num_samples: int

    def as_row(self) -> tuple[float, float]:
        """(mPA %, mIOU %) row as reported in the paper's tables."""
        return (100.0 * self.mpa, 100.0 * self.miou)


def evaluate_predictions(
    predictions: np.ndarray, targets: np.ndarray, threshold: float = 0.5
) -> EvaluationResult:
    """Score predicted resist images ``(N, 1, H, W)`` against ground truth."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    if predictions.ndim == 3:
        predictions = predictions[:, None]
        targets = targets[:, None]

    mpas, mious, means, maxes = [], [], [], []
    for prediction, target in zip(predictions, targets):
        mpas.append(mean_pixel_accuracy(prediction[0], target[0], threshold))
        mious.append(mean_iou(prediction[0], target[0], threshold))
        stats = contour_distance_stats(prediction[0], target[0], threshold)
        means.append(stats["mean"])
        maxes.append(stats["max"])
    return EvaluationResult(
        mpa=float(np.mean(mpas)),
        miou=float(np.mean(mious)),
        contour_mean_px=float(np.mean(means)),
        contour_max_px=float(np.max(maxes)),
        num_samples=len(mpas),
    )


def evaluate_model(
    model, data: MaskResistDataset, batch_size: int = 8, threshold: float = 0.5
) -> EvaluationResult:
    """Run a model over a dataset and score its predictions.

    ``model`` may be anything exposing ``predict(masks, batch_size)`` — a
    learned model from :mod:`repro.core` or a
    :class:`repro.pipeline.InferencePipeline` (the batch-first path, which
    also handles oversized masks via tiling + core stitching).
    """
    predictions = model.predict(data.masks, batch_size=batch_size)
    return evaluate_predictions(predictions, data.resists, threshold=threshold)
