"""Evaluation utilities: accuracy scoring and throughput measurement."""

from .evaluator import EvaluationResult, evaluate_model, evaluate_predictions
from .runtime import (
    ThroughputResult,
    measure_model_throughput,
    measure_pipeline_throughput,
    measure_simulator_throughput,
)

__all__ = [
    "EvaluationResult",
    "evaluate_model",
    "evaluate_predictions",
    "ThroughputResult",
    "measure_model_throughput",
    "measure_pipeline_throughput",
    "measure_simulator_throughput",
]
