"""Throughput measurement in µm²/s (paper Figure 6).

The paper compares the simulation throughput of UNet, DAMO, DOINN and the
reference (golden) lithography engine in square micrometres of layout
simulated per second.  The same quantity is measured here for the NumPy
implementations, so the *ratios* between the learned models and the golden
engine are comparable even though absolute numbers reflect CPU execution.

All engines are timed through :class:`repro.pipeline.InferencePipeline`, the
same batch-first execution path production inference uses, with a real
``batch_size`` knob: throughput can be reported per single tile (the seed
configuration) or for batched execution, which is how Figure 6's "orders of
magnitude" headline scales in practice.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from ..pipeline import ExecutionConfig, InferencePipeline

__all__ = [
    "ThroughputResult",
    "measure_model_throughput",
    "measure_pipeline_throughput",
    "measure_simulator_throughput",
]


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one engine."""

    name: str
    um2_per_second: float
    seconds_per_tile: float
    tile_area_um2: float
    runs: int
    batch_size: int = 1

    def speedup_over(self, other: "ThroughputResult") -> float:
        """How many times faster this engine is than ``other``."""
        if other.um2_per_second <= 0:
            return float("inf")
        return self.um2_per_second / other.um2_per_second


def _measure(
    name: str,
    run_once,
    tile_area_um2: float,
    repeats: int,
    warmup: int,
    tiles_per_run: int = 1,
    batch_size: int = 1,
) -> ThroughputResult:
    for _ in range(warmup):
        run_once()
    start = time.perf_counter()
    for _ in range(repeats):
        run_once()
    # Clamp to one timer tick: a smoke run faster than the clock resolution
    # must not divide by zero or report infinite throughput.
    elapsed = max(time.perf_counter() - start, 1e-9)
    per_tile = elapsed / (repeats * tiles_per_run)
    return ThroughputResult(
        name=name,
        um2_per_second=tile_area_um2 / per_tile,
        seconds_per_tile=per_tile,
        tile_area_um2=tile_area_um2,
        runs=repeats,
        batch_size=batch_size,
    )


def _as_batch(mask: np.ndarray) -> np.ndarray:
    """Coerce a mask to the pipeline's ``(N, 1, H, W)`` layout."""
    mask = np.asarray(mask)
    if mask.ndim == 2:
        return mask[None, None]
    if mask.ndim == 3:
        return mask[:, None]
    return mask


def _tile_area_um2(batch: np.ndarray, pixel_size: float) -> float:
    return (batch.shape[-1] * pixel_size / 1000.0) * (batch.shape[-2] * pixel_size / 1000.0)


def measure_pipeline_throughput(
    pipeline: InferencePipeline,
    mask: np.ndarray,
    pixel_size: float,
    name: str | None = None,
    repeats: int = 3,
    warmup: int = 1,
    batch_size: int | None = None,
) -> ThroughputResult:
    """Measure throughput of an inference pipeline on a mask (or mask batch).

    A single 2-D mask is replicated ``batch_size`` times so batched execution
    is timed on the same workload as the per-tile measurement; a 3-D/4-D input
    is timed as-is.
    """
    mask = np.asarray(mask)
    batch = _as_batch(mask)
    batch_size = batch_size or pipeline.batch_size
    if mask.ndim == 2 and batch_size > 1:
        batch = np.repeat(batch, batch_size, axis=0)
    tile_area = _tile_area_um2(batch, pixel_size)

    def run_once():
        pipeline.predict(batch, batch_size=batch_size)

    return _measure(
        name or pipeline.name,
        run_once,
        tile_area,
        repeats,
        warmup,
        tiles_per_run=batch.shape[0],
        batch_size=batch_size,
    )


def _measurement_config(
    config: ExecutionConfig | None, batch_size: int, legacy: dict, caller: str
) -> ExecutionConfig:
    """One-shot pipeline config for a throughput measurement.

    ``legacy`` is the deprecated per-knob kwarg bundle — any use warns, and
    names outside :class:`ExecutionConfig`'s fields raise.
    """
    if legacy:
        warnings.warn(
            f"{caller}({', '.join(sorted(legacy))}=...) keyword knobs are "
            "deprecated; pass config=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    base = config if config is not None else ExecutionConfig()
    return base.merged(batch_size=batch_size, **legacy)


def measure_model_throughput(
    model,
    mask: np.ndarray,
    pixel_size: float,
    name: str | None = None,
    repeats: int = 3,
    warmup: int = 1,
    batch_size: int = 1,
    config: ExecutionConfig | None = None,
    **legacy,
) -> ThroughputResult:
    """Measure inference throughput of a learned model on one mask tile.

    ``batch_size`` controls how many tiles are executed per forward: 1 is the
    seed per-tile configuration; larger values report batched throughput
    (Figure 6's deployment scenario).  Every other execution knob — workers,
    streaming, supervision, compilation, backend lane, BLAS threads — arrives
    as one :class:`~repro.pipeline.ExecutionConfig` (``config=``), which is
    how Figure 6 rows are measured per backend; the old per-knob keywords
    still work through ``**legacy`` but are deprecated.  All of it is ignored
    when an already-built pipeline is passed.  A repeated-measurement loop is
    exactly the workload the streaming ring accelerates: every ``run_once``
    after the first reuses the mapped segments.
    """
    if isinstance(model, InferencePipeline):
        return measure_pipeline_throughput(
            model,
            mask,
            pixel_size,
            name=name or type(model).__name__,
            repeats=repeats,
            warmup=warmup,
            batch_size=batch_size,
        )
    # The pipeline is built for this measurement only: release its worker
    # pool and ring segments on the way out instead of stranding them until
    # interpreter exit.
    cfg = _measurement_config(config, batch_size, legacy, "measure_model_throughput")
    with InferencePipeline(model, config=cfg) as pipeline:
        return measure_pipeline_throughput(
            pipeline,
            mask,
            pixel_size,
            name=name or type(model).__name__,
            repeats=repeats,
            warmup=warmup,
            batch_size=batch_size,
        )


def measure_simulator_throughput(
    simulator,
    mask: np.ndarray,
    name: str = "Ref",
    repeats: int = 3,
    warmup: int = 1,
    batch_size: int = 1,
    config: ExecutionConfig | None = None,
    **legacy,
) -> ThroughputResult:
    """Measure throughput of the golden lithography simulator on one mask tile."""
    cfg = _measurement_config(config, batch_size, legacy, "measure_simulator_throughput")
    with InferencePipeline(simulator, config=cfg) as pipeline:
        return measure_pipeline_throughput(
            pipeline,
            mask,
            simulator.pixel_size,
            name=name,
            repeats=repeats,
            warmup=warmup,
            batch_size=batch_size,
        )
