"""Throughput measurement in µm²/s (paper Figure 6).

The paper compares the simulation throughput of UNet, DAMO, DOINN and the
reference (golden) lithography engine in square micrometres of layout
simulated per second.  The same quantity is measured here for the NumPy
implementations, so the *ratios* between the learned models and the golden
engine are comparable even though absolute numbers reflect CPU execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["ThroughputResult", "measure_model_throughput", "measure_simulator_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one engine."""

    name: str
    um2_per_second: float
    seconds_per_tile: float
    tile_area_um2: float
    runs: int

    def speedup_over(self, other: "ThroughputResult") -> float:
        """How many times faster this engine is than ``other``."""
        if other.um2_per_second <= 0:
            return float("inf")
        return self.um2_per_second / other.um2_per_second


def _measure(name: str, run_once, tile_area_um2: float, repeats: int, warmup: int) -> ThroughputResult:
    for _ in range(warmup):
        run_once()
    start = time.perf_counter()
    for _ in range(repeats):
        run_once()
    elapsed = time.perf_counter() - start
    per_tile = elapsed / repeats
    return ThroughputResult(
        name=name,
        um2_per_second=tile_area_um2 / per_tile,
        seconds_per_tile=per_tile,
        tile_area_um2=tile_area_um2,
        runs=repeats,
    )


def measure_model_throughput(
    model,
    mask: np.ndarray,
    pixel_size: float,
    name: str | None = None,
    repeats: int = 3,
    warmup: int = 1,
) -> ThroughputResult:
    """Measure inference throughput of a learned model on one mask tile."""
    mask = np.asarray(mask)
    tile_area_um2 = (mask.shape[-1] * pixel_size / 1000.0) * (mask.shape[-2] * pixel_size / 1000.0)
    batch = mask[None, None] if mask.ndim == 2 else mask

    def run_once():
        model.predict(batch, batch_size=1)

    return _measure(name or type(model).__name__, run_once, tile_area_um2, repeats, warmup)


def measure_simulator_throughput(
    simulator,
    mask: np.ndarray,
    name: str = "Ref",
    repeats: int = 3,
    warmup: int = 1,
) -> ThroughputResult:
    """Measure throughput of the golden lithography simulator on one mask tile."""
    mask = np.asarray(mask)
    tile_area_um2 = (mask.shape[-1] * simulator.pixel_size / 1000.0) * (
        mask.shape[-2] * simulator.pixel_size / 1000.0
    )

    def run_once():
        simulator.resist_image(mask)

    return _measure(name, run_once, tile_area_um2, repeats, warmup)
