"""Tile extraction for large-tile simulation (paper §3.2, Figure 5).

The large-tile global-perception scheme cuts an ``sH x sW`` mask image into
half-overlapping tiles of the training size ``H x W``; the central *core*
region of each tile (everything further than half the optical diameter from
the tile boundary) is stitched back together to cover the core of the large
tile exactly (paper eq. (13)-(14)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "TileSpec",
    "extract_tiles",
    "stitch_cores",
    "split_image",
    "assemble_image",
    "tile_grid",
]


@dataclass(frozen=True)
class TileSpec:
    """Location of one tile inside a large image.

    ``row``/``col`` index the half-overlapping tile grid; ``y0``/``x0`` are the
    pixel offsets of the tile's top-left corner inside the large image.
    """

    row: int
    col: int
    y0: int
    x0: int
    size: int


def tile_grid(shape: tuple[int, int], tile_size: int) -> list[TileSpec]:
    """Tile specs of the half-overlapping grid, without touching pixel data.

    Row-major scan order, stride ``tile_size // 2`` — exactly the grid (and
    ordering) :func:`extract_tiles` produces.  Exposed separately so planners
    (e.g. the incremental re-simulation state) can reason about the grid
    before any mask exists.
    """
    h, w = shape
    if h % tile_size or w % tile_size:
        raise ValueError(f"image size {(h, w)} is not a multiple of tile size {tile_size}")
    stride = tile_size // 2
    n_rows = (h - tile_size) // stride + 1
    n_cols = (w - tile_size) // stride + 1
    return [
        TileSpec(row=row, col=col, y0=row * stride, x0=col * stride, size=tile_size)
        for row in range(n_rows)
        for col in range(n_cols)
    ]


def extract_tiles(image: np.ndarray, tile_size: int) -> tuple[np.ndarray, list[TileSpec]]:
    """Cut ``image`` into half-overlapping ``tile_size``-sized tiles.

    The stride is ``tile_size // 2`` so consecutive tiles overlap by half, as
    required by the paper's large-tile scheme.  The image must be an integer
    multiple of ``tile_size`` in both dimensions.  The tile copies are
    gathered through one strided window view instead of a per-tile Python
    loop (bit-identical; pinned by ``tests/layout/test_rasterize_tiling.py``).

    Returns
    -------
    tiles:
        Array of shape ``(n_tiles, tile_size, tile_size)``.
    specs:
        Tile locations, in the same order.
    """
    specs = tile_grid(image.shape, tile_size)
    stride = tile_size // 2
    windows = sliding_window_view(image, (tile_size, tile_size))[::stride, ::stride]
    tiles = np.ascontiguousarray(windows.reshape(-1, tile_size, tile_size))
    return tiles, specs


def stitch_cores(
    tiles: np.ndarray,
    specs: list[TileSpec],
    output_shape: tuple[int, int],
    margin: int,
) -> np.ndarray:
    """Stitch the core regions of processed tiles back into a large image.

    ``margin`` is half the optical diameter in pixels (``d / 2`` in the paper):
    only the region further than ``margin`` from a tile edge is trusted.  Tiles
    are written in scan order so each output pixel receives the value from one
    covering tile's core.  The outer ``margin`` ring of the large image cannot
    be covered by any core and keeps the value of the nearest tile.

    ``tiles`` may be 3-D ``(n, t, t)`` or 4-D ``(n, c, t, t)``; the stitched
    output has shape ``output_shape`` or ``(c, *output_shape)`` accordingly.
    """
    has_channels = tiles.ndim == 4
    h, w = output_shape
    if has_channels:
        output = np.zeros((tiles.shape[1], h, w), dtype=tiles.dtype)
    else:
        output = np.zeros((h, w), dtype=tiles.dtype)

    for tile, spec in zip(tiles, specs):
        t = spec.size
        # Core region within the tile; expand to the image border when the
        # tile touches it (no neighbouring tile can cover that ring).
        cy0 = 0 if spec.y0 == 0 else margin
        cx0 = 0 if spec.x0 == 0 else margin
        cy1 = t if spec.y0 + t == h else t - margin
        cx1 = t if spec.x0 + t == w else t - margin
        oy0, ox0 = spec.y0 + cy0, spec.x0 + cx0
        oy1, ox1 = spec.y0 + cy1, spec.x0 + cx1
        if has_channels:
            output[:, oy0:oy1, ox0:ox1] = tile[:, cy0:cy1, cx0:cx1]
        else:
            output[oy0:oy1, ox0:ox1] = tile[cy0:cy1, cx0:cx1]
    return output


def split_image(image: np.ndarray, tile_size: int) -> tuple[np.ndarray, list[TileSpec]]:
    """Cut an image into non-overlapping tiles (utility for batching).

    The copy is a single reshape/transpose instead of a per-tile Python loop;
    output (values, order, dtype) is bit-identical to the loop formulation.
    """
    h, w = image.shape
    if h % tile_size or w % tile_size:
        raise ValueError(f"image size {(h, w)} is not a multiple of tile size {tile_size}")
    n_rows, n_cols = h // tile_size, w // tile_size
    tiles = np.ascontiguousarray(
        image.reshape(n_rows, tile_size, n_cols, tile_size)
        .swapaxes(1, 2)
        .reshape(n_rows * n_cols, tile_size, tile_size)
    )
    specs = [
        TileSpec(row=row, col=col, y0=row * tile_size, x0=col * tile_size, size=tile_size)
        for row in range(n_rows)
        for col in range(n_cols)
    ]
    return tiles, specs


def assemble_image(tiles: np.ndarray, specs: list[TileSpec], output_shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`split_image`."""
    output = np.zeros(output_shape, dtype=tiles.dtype)
    for tile, spec in zip(tiles, specs):
        output[spec.y0 : spec.y0 + spec.size, spec.x0 : spec.x0 + spec.size] = tile
    return output
