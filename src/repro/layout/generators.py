"""Synthetic layout generators standing in for the paper's benchmarks.

The paper's training sets are produced with "an open source layout generator
following the same design rules as designs in [the ISPD-2019 contest]" — i.e.
the authors themselves train on synthetic layouts.  We follow the same recipe:

* :func:`generate_via_layout` — random legal via placements on a routing grid
  (ISPD-2019 and N14 families).
* :func:`generate_metal_layout` — Manhattan routed metal segments on tracks
  (ICCAD-2013 family).
* :func:`generate_layout` — dispatch by design-rule set.
* :func:`generate_large_layout` — a large tile (paper: 64 µm²) assembled from
  the same statistics, used by the large-tile simulation experiment.
"""

from __future__ import annotations

import numpy as np

from .design_rules import DesignRules
from .geometry import Layout, Rect

__all__ = [
    "generate_via_layout",
    "generate_metal_layout",
    "generate_layout",
    "generate_large_layout",
]


def _place_non_overlapping(
    candidates: list[Rect], min_space: float, bounds: Rect, target_area: float
) -> list[Rect]:
    """Greedily keep candidate shapes that respect spacing, until target area."""
    kept: list[Rect] = []
    area = 0.0
    for rect in candidates:
        if area >= target_area:
            break
        if not bounds.contains_rect(rect):
            continue
        grown = rect.expanded(min_space)
        if any(grown.intersects(existing) for existing in kept):
            continue
        kept.append(rect)
        area += rect.area
    return kept


def generate_via_layout(
    rules: DesignRules,
    rng: np.random.Generator,
    tile_size: float | None = None,
    density_scale: float = 1.0,
) -> Layout:
    """Generate a via-layer tile: square contacts on a placement grid.

    Vias are placed at random grid sites; occasional via clusters (doubled or
    lined-up vias, as produced by redundant-via insertion in real flows) are
    included so the generator covers both isolated and dense neighbourhoods.
    """
    size = tile_size or rules.tile_size
    bounds = Rect(0.0, 0.0, size, size)
    target_density = min(0.95, rules.target_density * density_scale)
    target_area = target_density * bounds.area

    sites_per_axis = int(size // rules.pitch)
    candidates: list[Rect] = []
    n_candidates = max(4, int(4 * target_area / max(rules.via_size, 1.0) ** 2))
    xs = rng.integers(0, sites_per_axis, size=n_candidates)
    ys = rng.integers(0, sites_per_axis, size=n_candidates)
    cluster = rng.random(n_candidates)
    for x_site, y_site, c in zip(xs, ys, cluster):
        x0 = x_site * rules.pitch + (rules.pitch - rules.via_size) / 2.0
        y0 = y_site * rules.pitch + (rules.pitch - rules.via_size) / 2.0
        candidates.append(Rect(x0, y0, x0 + rules.via_size, y0 + rules.via_size))
        if c > 0.8 and (x_site + 1) < sites_per_axis:
            # Redundant-via pair in the x direction.
            x0b = x0 + rules.pitch
            candidates.append(Rect(x0b, y0, x0b + rules.via_size, y0 + rules.via_size))

    shapes = _place_non_overlapping(candidates, rules.min_space, bounds, target_area)
    layout = Layout(bounds=bounds, shapes=shapes, name=rules.name)
    return layout


def generate_metal_layout(
    rules: DesignRules,
    rng: np.random.Generator,
    tile_size: float | None = None,
    density_scale: float = 1.0,
) -> Layout:
    """Generate a metal-layer tile: horizontal/vertical wire segments on tracks."""
    size = tile_size or rules.tile_size
    bounds = Rect(0.0, 0.0, size, size)
    target_density = min(0.95, rules.target_density * density_scale)
    target_area = target_density * bounds.area

    n_tracks = int(size // rules.pitch)
    candidates: list[Rect] = []
    n_candidates = max(16, int(10 * target_area / (rules.min_width * rules.max_wire_length)))
    for _ in range(n_candidates):
        horizontal = rng.random() < 0.5
        track = int(rng.integers(0, n_tracks))
        length = float(
            rng.uniform(2.0 * rules.min_width, rules.max_wire_length)
        )
        start = float(rng.uniform(0.0, max(size - length, 1.0)))
        offset = track * rules.pitch + (rules.pitch - rules.min_width) / 2.0
        width = rules.min_width * float(rng.choice([1.0, 1.0, 1.0, 2.0]))
        if horizontal:
            rect = Rect(start, offset, start + length, offset + width)
        else:
            rect = Rect(offset, start, offset + width, start + length)
        if bounds.contains_rect(rect):
            candidates.append(rect)

    shapes = _place_non_overlapping(candidates, rules.min_space, bounds, target_area)
    return Layout(bounds=bounds, shapes=shapes, name=rules.name)


def generate_layout(
    rules: DesignRules,
    rng: np.random.Generator,
    tile_size: float | None = None,
    density_scale: float = 1.0,
) -> Layout:
    """Generate one tile according to the layer type of the rule set."""
    if rules.layer_type == "via":
        return generate_via_layout(rules, rng, tile_size, density_scale)
    if rules.layer_type == "metal":
        return generate_metal_layout(rules, rng, tile_size, density_scale)
    raise ValueError(f"unknown layer type '{rules.layer_type}'")


def generate_large_layout(
    rules: DesignRules,
    rng: np.random.Generator,
    scale: int = 4,
    density_scale: float = 1.5,
) -> Layout:
    """Generate a large tile ``scale x scale`` times the nominal tile size.

    Used for the large-tile simulation experiment (paper §4.6: ten dense
    64 µm² tiles, i.e. ``scale = 4`` relative to the 4 µm² training tiles, with
    above-average via density).
    """
    size = rules.tile_size * scale
    bounds = Rect(0.0, 0.0, size, size)
    layout = Layout(bounds=bounds, name=f"{rules.name}-large")
    for bx in range(scale):
        for by in range(scale):
            sub = generate_layout(rules, rng, tile_size=rules.tile_size, density_scale=density_scale)
            dx, dy = bx * rules.tile_size, by * rules.tile_size
            layout.extend(shape.translated(dx, dy) for shape in sub.shapes)
    return layout
