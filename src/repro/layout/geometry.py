"""Layout geometry primitives.

Coordinates are in nanometres.  Layouts are collections of axis-aligned
rectangles (vias, metal segments, SRAFs), which covers everything the paper's
benchmarks contain: via layers are arrays of square contacts, metal layers are
Manhattan routed wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Rect", "Layout"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[x0, x1) x [y0, y1)`` in nanometres."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def expanded(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) the rectangle on every side."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        x0, y0 = max(self.x0, other.x0), max(self.y0, other.y0)
        x1, y1 = min(self.x1, other.x1), min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def clipped_to(self, bounds: "Rect") -> "Rect | None":
        return self.intersection(bounds)


@dataclass
class Layout:
    """A collection of rectangles on a single layer within a bounding box."""

    bounds: Rect
    shapes: list[Rect] = field(default_factory=list)
    name: str = "layout"

    def add(self, shape: Rect) -> None:
        self.shapes.append(shape)

    def extend(self, shapes: Iterable[Rect]) -> None:
        self.shapes.extend(shapes)

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.shapes)

    @property
    def total_area(self) -> float:
        """Sum of shape areas (shapes are assumed non-overlapping)."""
        return sum(shape.area for shape in self.shapes)

    @property
    def density(self) -> float:
        """Pattern density: shape area divided by the bounding-box area."""
        if self.bounds.area == 0:
            return 0.0
        return self.total_area / self.bounds.area

    def clipped(self, window: Rect, min_area: float = 0.0) -> "Layout":
        """Return a new layout containing the shapes clipped to ``window``.

        Shapes whose clipped area falls below ``min_area`` are dropped; the
        clipped layout is re-referenced to the window's origin.
        """
        clipped = Layout(bounds=Rect(0.0, 0.0, window.width, window.height), name=self.name)
        for shape in self.shapes:
            piece = shape.clipped_to(window)
            if piece is not None and piece.area > min_area:
                clipped.add(piece.translated(-window.x0, -window.y0))
        return clipped

    def window(self, window: Rect) -> "Layout":
        """Alias of :meth:`clipped` kept for readability at call sites."""
        return self.clipped(window)
