"""Layout substrate: geometry, design rules, synthetic generators, rasterization, tiling."""

from .design_rules import DesignRules, ICCAD2013_RULES, ISPD2019_RULES, N14_RULES, rules_for
from .generators import (
    generate_large_layout,
    generate_layout,
    generate_metal_layout,
    generate_via_layout,
)
from .geometry import Layout, Rect
from .rasterize import coverage_rasterize, rasterize, rasterize_rect
from .tiling import TileSpec, assemble_image, extract_tiles, split_image, stitch_cores

__all__ = [
    "DesignRules",
    "ICCAD2013_RULES",
    "ISPD2019_RULES",
    "N14_RULES",
    "rules_for",
    "Layout",
    "Rect",
    "generate_layout",
    "generate_via_layout",
    "generate_metal_layout",
    "generate_large_layout",
    "rasterize",
    "rasterize_rect",
    "coverage_rasterize",
    "TileSpec",
    "extract_tiles",
    "stitch_cores",
    "split_image",
    "assemble_image",
]
