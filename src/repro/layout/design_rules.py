"""Design-rule parameter sets for the synthetic benchmark generators.

The paper evaluates on three benchmark families (Table 1).  The real layouts
are not redistributable, so each family is replaced by a parameterized
generator whose design rules reproduce the salient statistics the paper
relies on:

* **ICCAD-2013** — metal layer (M1) tiles, 32 nm-class rules, moderate density.
* **ISPD-2019** — via layer tiles from a detailed-routing testcase; regular
  via sizes on a coarse grid, low-to-moderate density.
* **N14** — a 14 nm-node via layer; smaller vias, tighter pitch, high density.

All dimensions are in nanometres.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DesignRules", "ICCAD2013_RULES", "ISPD2019_RULES", "N14_RULES", "rules_for"]


@dataclass(frozen=True)
class DesignRules:
    """Minimal design-rule set used by the layout generators."""

    name: str
    layer_type: str            # "metal" or "via"
    tile_size: float           # edge of a square tile in nm (paper: 2000 nm = 4 um^2)
    min_width: float           # minimum feature width
    min_space: float           # minimum spacing between features
    pitch: float               # placement grid pitch
    via_size: float            # via edge length (via layers)
    max_wire_length: float     # maximum metal segment length (metal layers)
    target_density: float      # nominal pattern density

    def __post_init__(self) -> None:
        if self.min_width <= 0 or self.min_space <= 0 or self.pitch <= 0:
            raise ValueError("design-rule dimensions must be positive")
        if not 0.0 < self.target_density < 1.0:
            raise ValueError("target_density must lie in (0, 1)")


ICCAD2013_RULES = DesignRules(
    name="iccad2013",
    layer_type="metal",
    tile_size=2048.0,
    min_width=64.0,
    min_space=64.0,
    pitch=128.0,
    via_size=0.0,
    max_wire_length=1024.0,
    target_density=0.18,
)

ISPD2019_RULES = DesignRules(
    name="ispd2019",
    layer_type="via",
    tile_size=2048.0,
    min_width=56.0,
    min_space=72.0,
    pitch=128.0,
    via_size=56.0,
    max_wire_length=0.0,
    target_density=0.06,
)

N14_RULES = DesignRules(
    name="n14",
    layer_type="via",
    tile_size=2048.0,
    min_width=40.0,
    min_space=48.0,
    pitch=88.0,
    via_size=40.0,
    max_wire_length=0.0,
    target_density=0.12,
)

_RULE_SETS = {
    "iccad2013": ICCAD2013_RULES,
    "ispd2019": ISPD2019_RULES,
    "n14": N14_RULES,
}


def rules_for(benchmark: str) -> DesignRules:
    """Look up the design rules for a benchmark family by name."""
    key = benchmark.lower()
    if key not in _RULE_SETS:
        raise KeyError(f"unknown benchmark '{benchmark}'; available: {sorted(_RULE_SETS)}")
    return _RULE_SETS[key]
