"""Rasterization of rectangle layouts into mask images.

The paper renders 4 µm² tiles as 2000x2000 (1 nm²/pixel, "high resolution")
or 1000x1000 (4 nm²/pixel, "low resolution") binary images.  The pixel size is
a free parameter here so scaled experiments use the same code path.
"""

from __future__ import annotations

import numpy as np

from .geometry import Layout, Rect

__all__ = ["rasterize", "rasterize_rect", "coverage_rasterize"]


def rasterize_rect(
    image: np.ndarray, rect: Rect, pixel_size: float, value: float = 1.0
) -> None:
    """Fill the pixels covered by ``rect`` into ``image`` in place (hard edges)."""
    h, w = image.shape
    x0 = int(np.floor(rect.x0 / pixel_size))
    x1 = int(np.ceil(rect.x1 / pixel_size))
    y0 = int(np.floor(rect.y0 / pixel_size))
    y1 = int(np.ceil(rect.y1 / pixel_size))
    x0, x1 = max(0, x0), min(w, x1)
    y0, y1 = max(0, y0), min(h, y1)
    if x1 > x0 and y1 > y0:
        image[y0:y1, x0:x1] = value


def rasterize(layout: Layout, pixel_size: float = 1.0, image_size: int | None = None) -> np.ndarray:
    """Render a layout into a binary mask image.

    Parameters
    ----------
    layout:
        The layout to render; its bounding box defines the physical extent.
    pixel_size:
        Physical size of one pixel in nanometres (paper: 1 nm or 2 nm).
    image_size:
        Optional explicit output size in pixels; defaults to
        ``bounds / pixel_size``.

    Returns
    -------
    Array of shape ``(H, W)`` with values in {0, 1}; row index is y.
    """
    if image_size is None:
        image_size = int(round(layout.bounds.width / pixel_size))
    image = np.zeros((image_size, image_size), dtype=np.float64)
    for rect in layout.shapes:
        rasterize_rect(image, rect, pixel_size)
    return image


def coverage_rasterize(layout: Layout, pixel_size: float = 1.0, image_size: int | None = None) -> np.ndarray:
    """Anti-aliased rasterization: each pixel holds its covered-area fraction.

    Used when converting layouts at coarse pixel sizes, where hard-edged
    rasterization would alias narrow features away.
    """
    if image_size is None:
        image_size = int(round(layout.bounds.width / pixel_size))
    image = np.zeros((image_size, image_size), dtype=np.float64)
    for rect in layout.shapes:
        x0, x1 = rect.x0 / pixel_size, rect.x1 / pixel_size
        y0, y1 = rect.y0 / pixel_size, rect.y1 / pixel_size
        ix0, ix1 = int(np.floor(x0)), int(np.ceil(x1))
        iy0, iy1 = int(np.floor(y0)), int(np.ceil(y1))
        for iy in range(max(0, iy0), min(image_size, iy1)):
            row_cover = min(y1, iy + 1) - max(y0, iy)
            if row_cover <= 0:
                continue
            for ix in range(max(0, ix0), min(image_size, ix1)):
                col_cover = min(x1, ix + 1) - max(x0, ix)
                if col_cover <= 0:
                    continue
                image[iy, ix] = min(1.0, image[iy, ix] + row_cover * col_cover)
    return image
