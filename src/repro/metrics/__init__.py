"""Evaluation metrics: mIOU/mPA (paper §2.2) and contour distance statistics."""

from .contour import contour_distance_stats, critical_dimension, extract_contour
from .segmentation import (
    confusion_counts,
    iou,
    mean_iou,
    mean_pixel_accuracy,
    pixel_accuracy,
)

__all__ = [
    "iou",
    "pixel_accuracy",
    "mean_iou",
    "mean_pixel_accuracy",
    "confusion_counts",
    "extract_contour",
    "contour_distance_stats",
    "critical_dimension",
]
