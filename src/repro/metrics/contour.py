"""Contour-level metrics: boundary extraction and contour distance statistics.

These complement the pixel metrics of :mod:`repro.metrics.segmentation` with
edge-oriented measurements closer to how silicon rule checks judge a printed
pattern (the "more stringent benchmarking criteria" the paper's conclusion
mentions as future work).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["extract_contour", "contour_distance_stats", "critical_dimension"]


def extract_contour(image: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Return a boolean image marking the boundary pixels of the printed region.

    A boundary pixel is a printed pixel with at least one unprinted 4-neighbour.
    """
    binary = np.asarray(image) >= threshold
    eroded = ndimage.binary_erosion(binary, structure=np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]]))
    return binary & ~eroded


def contour_distance_stats(
    prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5
) -> dict[str, float]:
    """Distance statistics between the predicted and ground-truth contours.

    For every pixel on the predicted contour the Euclidean distance to the
    nearest target-contour pixel is computed (and vice versa); the mean of the
    two directed means is a symmetric Chamfer-style distance, and the maximum
    is a Hausdorff-style worst case.  Distances are in pixels.
    """
    pred_contour = extract_contour(prediction, threshold)
    target_contour = extract_contour(target, threshold)
    if not pred_contour.any() and not target_contour.any():
        return {"mean": 0.0, "max": 0.0}
    if not pred_contour.any() or not target_contour.any():
        diag = float(np.hypot(*prediction.shape))
        return {"mean": diag, "max": diag}

    distance_to_target = ndimage.distance_transform_edt(~target_contour)
    distance_to_pred = ndimage.distance_transform_edt(~pred_contour)
    forward = distance_to_target[pred_contour]
    backward = distance_to_pred[target_contour]
    return {
        "mean": float(0.5 * (forward.mean() + backward.mean())),
        "max": float(max(forward.max(), backward.max())),
    }


def critical_dimension(image: np.ndarray, row: int, threshold: float = 0.5) -> float:
    """Measure the printed width (in pixels) of the feature crossing ``row``.

    Returns the length of the longest printed run on that row — the standard
    1-D critical-dimension (CD) cut used to compare printed and target line
    widths.  Returns 0.0 when nothing prints on the row.
    """
    line = np.asarray(image)[row] >= threshold
    best = 0
    current = 0
    for value in line:
        current = current + 1 if value else 0
        best = max(best, current)
    return float(best)
