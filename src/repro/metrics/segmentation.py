"""Segmentation metrics: mean IOU and mean pixel accuracy (paper §2.2).

The paper treats lithography modeling as two-class pixel classification
(printed contour vs. background) and reports

* ``mIOU = (1/k) * sum_i |P_i ∩ G_i| / |P_i ∪ G_i|`` (Definition 1), and
* ``mPA  = (1/k) * sum_i |P_i ∩ G_i| / |G_i|``        (Definition 2),

averaged over the ``k = 2`` classes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["iou", "pixel_accuracy", "mean_iou", "mean_pixel_accuracy", "confusion_counts"]


def _binarize_pair(prediction: np.ndarray, target: np.ndarray, threshold: float) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction) >= threshold
    target = np.asarray(target) >= threshold
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    return prediction, target


def confusion_counts(prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> dict[str, int]:
    """True/false positive/negative pixel counts for the foreground class."""
    p, g = _binarize_pair(prediction, target, threshold)
    return {
        "tp": int(np.sum(p & g)),
        "fp": int(np.sum(p & ~g)),
        "fn": int(np.sum(~p & g)),
        "tn": int(np.sum(~p & ~g)),
    }


def iou(prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    """Intersection over union of the foreground (printed) class.

    Both images empty counts as a perfect match (IOU = 1).
    """
    p, g = _binarize_pair(prediction, target, threshold)
    union = np.sum(p | g)
    if union == 0:
        return 1.0
    return float(np.sum(p & g) / union)


def pixel_accuracy(prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    """Per-class pixel accuracy of the foreground class (|P ∩ G| / |G|)."""
    p, g = _binarize_pair(prediction, target, threshold)
    total = np.sum(g)
    if total == 0:
        return 1.0
    return float(np.sum(p & g) / total)


def mean_iou(prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    """Two-class mean IOU as defined in the paper (Definition 1)."""
    p, g = _binarize_pair(prediction, target, threshold)
    foreground = iou(p, g)
    background = iou(~p, ~g)
    return 0.5 * (foreground + background)


def mean_pixel_accuracy(prediction: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    """Two-class mean pixel accuracy as defined in the paper (Definition 2)."""
    p, g = _binarize_pair(prediction, target, threshold)
    foreground = pixel_accuracy(p, g)
    background = pixel_accuracy(~p, ~g)
    return 0.5 * (foreground + background)
