"""Deterministic seeding helpers."""

from __future__ import annotations

import random

import numpy as np

__all__ = ["seed_everything"]


def seed_everything(seed: int = 0) -> np.random.Generator:
    """Seed Python's and NumPy's global RNGs and return a fresh Generator.

    All stochastic components in this repository (layout generators, weight
    initialization, data shuffling) accept explicit generators; this helper is
    a convenience for scripts and experiments.
    """
    random.seed(seed)
    np.random.seed(seed)
    return np.random.default_rng(seed)
