"""Shared utilities: seeding, image helpers and plain-text table formatting."""

from .seed import seed_everything
from .image import normalize_image, binarize, downsample, to_ascii
from .tables import format_table

__all__ = [
    "seed_everything",
    "normalize_image",
    "binarize",
    "downsample",
    "to_ascii",
    "format_table",
]
