"""Plain-text table formatting used by the experiment harnesses.

Every experiment reproduces a table or figure from the paper; the harness
prints the regenerated rows with the same column structure so the output can
be compared side by side with the publication (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Format rows of mixed values as an aligned plain-text table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    columns = [list(col) for col in zip(*([list(headers)] + rendered))] if rows else [[h] for h in headers]
    widths = [max(len(v) for v in col) for col in columns]

    def format_row(values: Sequence[str]) -> str:
        return " | ".join(v.ljust(w) for v, w in zip(values, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(format_row(row))
    return "\n".join(lines)
