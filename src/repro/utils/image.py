"""Image helpers shared by the layout, lithography and evaluation code."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_image", "binarize", "downsample", "to_ascii"]


def normalize_image(image: np.ndarray) -> np.ndarray:
    """Scale an image to the [0, 1] range (constant images map to zeros)."""
    image = np.asarray(image, dtype=np.float64)
    low, high = image.min(), image.max()
    if high - low < 1e-12:
        return np.zeros_like(image)
    return (image - low) / (high - low)


def binarize(image: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Threshold an image into a {0, 1} float array."""
    return (np.asarray(image) >= threshold).astype(np.float64)


def downsample(image: np.ndarray, factor: int) -> np.ndarray:
    """Average-pool downsampling of a 2-D image by an integer factor."""
    if factor == 1:
        return np.asarray(image, dtype=np.float64)
    h, w = image.shape
    if h % factor or w % factor:
        raise ValueError(f"image of size {(h, w)} not divisible by factor {factor}")
    return (
        np.asarray(image, dtype=np.float64)
        .reshape(h // factor, factor, w // factor, factor)
        .mean(axis=(1, 3))
    )


def to_ascii(image: np.ndarray, width: int = 64, charset: str = " .:-=+*#%@") -> str:
    """Render an image as ASCII art, used for console visualization of contours."""
    image = normalize_image(image)
    h, w = image.shape
    step = max(1, w // width)
    rows = []
    for i in range(0, h, step * 2):  # *2 compensates for character aspect ratio
        row = image[i, ::step]
        chars = [charset[int(v * (len(charset) - 1))] for v in row]
        rows.append("".join(chars))
    return "\n".join(rows)
