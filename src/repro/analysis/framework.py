"""Core machinery of the repo-specific static-analysis pass.

``repro.analysis`` machine-checks the *conventions* eight PRs of engine work
established — knob reads, shared-memory hygiene, dtype boundaries, hot-path
allocation discipline, exception-handling discipline — as a small pluggable
AST lint framework:

* a **rule registry** (:func:`register_rule`): each rule owns an id like
  ``ENV001``, a one-line title, and ``check_file`` / ``check_project`` hooks;
* **findings** with stable ``path:line: RULE message`` formatting (greppable
  in CI logs; sorted by path, line, rule);
* **suppression pragmas**: a trailing or preceding comment of the form
  ``repro: ok(RULE, reason)`` (with a ``#`` comment marker in front)
  suppresses that rule on that line — the reason is mandatory, and malformed
  pragmas are themselves a finding (PRAGMA001);
* a **baseline** mechanism for incremental adoption elsewhere: a baseline
  file records findings to ignore, keyed by (rule, path, message) so line
  drift doesn't invalidate it.  This repo ships with an *empty* baseline —
  the CI gate runs with zero grandfathered entries.

The rules themselves live in :mod:`repro.analysis.rules`; the CLI in
``repro.analysis.__main__`` (``python -m repro.analysis``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "AnalysisResult",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Rule",
    "analyze",
    "collect_files",
    "format_baseline",
    "get_rule",
    "iter_rules",
    "load_baseline",
    "register_rule",
]

#: Directories scanned when the CLI is given no paths.
DEFAULT_TARGETS = ("src", "benchmarks", "examples", "scripts")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}

#: A well-formed suppression pragma: ``repro: ok(RULE, reason)`` after a
#: ``#``.  The reason is mandatory and must be non-empty; PRAGMA001 flags
#: anything that starts like a pragma but does not parse.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*ok\(\s*(?P<rule>[A-Z][A-Z0-9]*)\s*,\s*(?P<reason>[^)]*?)\s*\)"
)

#: Anything that *looks* like a pragma attempt (used by PRAGMA001 to catch
#: malformed ones that the suppression scan above would silently ignore).
PRAGMA_MARKER_RE = re.compile(r"#\s*repro\s*:")

_BASELINE_HEADER = "# repro.analysis baseline v1"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str      # display path (relative to the analysis root when possible)
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def baseline_key(self) -> str:
        return f"{self.rule}\t{self.path}\t{self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``title`` / ``description`` and override
    ``check_file`` (called once per Python file) and/or ``check_project``
    (called once per run, after every file was parsed — for cross-file
    contracts like the docs/registry sync).
    """

    id: str = ""
    title: str = ""
    description: str = ""

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        return ()

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        return ()


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule under its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _RULES[rule.id] = rule
    return cls


def iter_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    return tuple(_RULES[key] for key in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    return _RULES[rule_id]


def known_rule_ids() -> frozenset[str]:
    return frozenset(_RULES)


class FileContext:
    """One parsed Python file plus the derived lookups rules need."""

    def __init__(self, path: Path, display: str) -> None:
        self.path = path
        self.display = display
        self.source = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.source.splitlines()
        try:
            self.tree: ast.AST | None = ast.parse(self.source)
        except SyntaxError:
            self.tree = None
        self._parents: dict[int, ast.AST] | None = None
        self._pragma_lines: dict[int, set[str]] | None = None
        self._docstring_ids: frozenset[int] | None = None

    # -- derived views (built lazily, once) ----------------------------- #

    @property
    def parents(self) -> dict[int, ast.AST]:
        """``id(child) -> parent`` for every node in the tree."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            if self.tree is not None:
                for parent in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(parent):
                        parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def enclosing_function(self, node: ast.AST) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    @property
    def pragma_lines(self) -> dict[int, set[str]]:
        """``line number -> rule ids suppressed on that line``.

        A pragma suppresses the line it sits on; a pragma on a comment-only
        line also covers the next line, so multi-clause statements can be
        annotated without overlong lines.  Only well-formed pragmas with a
        non-empty reason suppress anything — PRAGMA001 reports the rest.
        """
        if self._pragma_lines is None:
            covered: dict[int, set[str]] = {}
            for lineno, text in enumerate(self.lines, start=1):
                for match in PRAGMA_RE.finditer(text):
                    if not match["reason"].strip():
                        continue
                    covered.setdefault(lineno, set()).add(match["rule"])
                    if text.lstrip().startswith("#"):
                        covered.setdefault(lineno + 1, set()).add(match["rule"])
            self._pragma_lines = covered
        return self._pragma_lines

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.pragma_lines.get(line, ())

    @property
    def docstring_ids(self) -> frozenset[int]:
        """``id()`` of every string constant used as a bare expression.

        Covers real docstrings and block-comment strings — rules that police
        literals (e.g. dtype strings) skip these, since prose mentioning a
        dtype is not a narrowing operation.
        """
        if self._docstring_ids is None:
            ids: set[int] = set()
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if (
                        isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        ids.add(id(node.value))
            self._docstring_ids = frozenset(ids)
        return self._docstring_ids

    def matches_suffix(self, suffixes: Iterable[str]) -> bool:
        """Whether this file's normalized path ends with any given suffix."""
        normalized = self.path.as_posix()
        return any(normalized.endswith(suffix) for suffix in suffixes)

    def finding(self, rule_id: str, node_or_line, message: str) -> Finding:
        line = node_or_line if isinstance(node_or_line, int) else node_or_line.lineno
        return Finding(rule=rule_id, path=self.display, line=line, message=message)


@dataclass
class ProjectContext:
    """The whole analysis run: root directory plus every parsed file."""

    root: Path
    files: list[FileContext] = field(default_factory=list)

    def display_path(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: list[Finding]
    files_scanned: int
    suppressed_baseline: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> str:
        return (
            f"repro.analysis: {len(self.findings)} finding(s) across "
            f"{self.files_scanned} file(s)"
            + (f", {self.suppressed_baseline} baselined" if self.suppressed_baseline else "")
        )


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


def load_baseline(path: Path) -> set[str]:
    """Read a baseline file into a set of finding keys."""
    keys: set[str] = set()
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def format_baseline(findings: Iterable[Finding]) -> str:
    """Serialize findings as a baseline file (stable order, unique keys)."""
    keys = sorted({f.baseline_key() for f in findings})
    return "\n".join([_BASELINE_HEADER, *keys]) + "\n"


def analyze(
    paths: Iterable[Path],
    *,
    root: Path | None = None,
    baseline: set[str] | None = None,
) -> AnalysisResult:
    """Run every registered rule over ``paths``.

    ``root`` anchors display paths and project-level rules (docs lookups);
    it defaults to the current working directory.  ``baseline`` entries are
    filtered out of the result and counted separately.
    """
    # Rules register at import time; import here so `analyze` works however
    # the package is entered.
    from . import rules as _rules  # noqa: F401  (import-for-side-effect)

    root = Path(root) if root is not None else Path.cwd()
    project = ProjectContext(root=root)
    for path in collect_files(paths):
        project.files.append(FileContext(path, project.display_path(path)))

    findings: list[Finding] = []
    for ctx in project.files:
        for rule in iter_rules():
            for finding in rule.check_file(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    for rule in iter_rules():
        findings.extend(rule.check_project(project))

    suppressed_baseline = 0
    if baseline:
        kept = []
        for finding in findings:
            if finding.baseline_key() in baseline:
                suppressed_baseline += 1
            else:
                kept.append(finding)
        findings = kept

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return AnalysisResult(
        findings=findings,
        files_scanned=len(project.files),
        suppressed_baseline=suppressed_baseline,
    )
