"""AST-based invariant linter for the engine's correctness contracts.

Run with ``python -m repro.analysis`` (see ``docs/static_analysis.md`` for
the rule catalogue, pragma syntax, and how to add a rule).  The CI gate in
``scripts/ci.sh`` runs it over ``src/ benchmarks/ examples/ scripts/`` with
an empty baseline — zero findings, zero grandfathered entries.
"""

from .framework import (
    AnalysisResult,
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    analyze,
    collect_files,
    format_baseline,
    get_rule,
    iter_rules,
    load_baseline,
    register_rule,
)
from . import rules as _rules  # noqa: F401  (register the built-in rule set)

__all__ = [
    "AnalysisResult",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Rule",
    "analyze",
    "collect_files",
    "format_baseline",
    "get_rule",
    "iter_rules",
    "load_baseline",
    "register_rule",
]
