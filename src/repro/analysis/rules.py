"""The rule set: the engine's correctness contracts, machine-checked.

Each rule codifies an invariant a previous PR established by convention:

=========  ==============================================================
ENV001     all environment reads go through the knob registry
ENV002     knob registry and ``docs/configuration.md`` stay in exact sync
CONFIG001  execution knobs stay inside ``ExecutionConfig`` on public surfaces
SHM001     shared-memory creation/attachment stays registry-managed
DTYPE001   dtype narrowing stays confined to the backend module
ALLOC001   fused hot-path modules allocate only through the scratch cache
EXC001     broad exception handlers must justify themselves
PRAGMA001  suppression pragmas must be well-formed (hygiene for the above)
=========  ==============================================================

Every rule is suppressible at a specific line with a
``repro: ok(RULE, reason)`` comment pragma — the reason is mandatory, which
turns each suppression into reviewable documentation of *why* the invariant
bends there.  File-level allowlists below are the structural exemptions
(the module that *implements* a contract is naturally allowed to do the
thing it guards); pragmas are for point exemptions.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .framework import (
    FileContext,
    Finding,
    ProjectContext,
    PRAGMA_MARKER_RE,
    PRAGMA_RE,
    Rule,
    known_rule_ids,
    register_rule,
)

__all__ = [
    "AllocDisciplineRule",
    "BroadExceptRule",
    "ConfigSurfaceRule",
    "DocSyncRule",
    "DtypeBoundaryRule",
    "EnvAccessRule",
    "PragmaHygieneRule",
    "SharedMemoryRule",
]


def _dotted(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``np.zeros`` -> "np.zeros")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_rule
class EnvAccessRule(Rule):
    id = "ENV001"
    title = "no os.environ access outside the knob registry"
    description = (
        "Every runtime knob resolves through repro.knobs (the single "
        "os.environ choke point), so knob precedence, parsing and the docs "
        "catalogue cannot fork per call site."
    )

    ALLOWED_FILES = ("repro/knobs.py",)
    BANNED_DOTTED = frozenset({
        "os.environ", "os.environb", "os.getenv", "os.putenv", "os.unsetenv",
    })
    BANNED_OS_NAMES = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.matches_suffix(self.ALLOWED_FILES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
                if name in self.BANNED_DOTTED:
                    yield ctx.finding(
                        self.id, node,
                        f"`{name}` read outside the knob registry; route through "
                        "`repro.knobs` (get_raw / read_flag / read_int / ...)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in self.BANNED_OS_NAMES:
                        yield ctx.finding(
                            self.id, node,
                            f"`from os import {alias.name}` outside the knob "
                            "registry; route through `repro.knobs`",
                        )


@register_rule
class DocSyncRule(Rule):
    id = "ENV002"
    title = "knob registry and docs/configuration.md in exact sync"
    description = (
        "The knob tables in docs/configuration.md are generated from "
        "repro.knobs (scripts/gen_config_docs.py); this rule fails when a "
        "registered knob is undocumented, a documented knob is unregistered, "
        "or a generated table section is stale."
    )

    DOC_RELPATH = "docs/configuration.md"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        from .. import knobs

        doc_path = project.root / self.DOC_RELPATH
        if not doc_path.exists():
            # Not a repo checkout (e.g. linting a fixture corpus): nothing
            # to sync against.
            return
        text = doc_path.read_text(encoding="utf-8")

        documented: dict[str, int] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("| `REPRO_"):
                name = stripped.split("`", 2)[1]
                documented.setdefault(name, lineno)

        registered = set(knobs.knob_names())
        for name in sorted(registered - set(documented)):
            yield Finding(
                rule=self.id, path=self.DOC_RELPATH, line=1,
                message=(
                    f"knob `{name}` is registered in repro.knobs but has no "
                    "table row here (run scripts/gen_config_docs.py)"
                ),
            )
        for name in sorted(set(documented) - registered):
            yield Finding(
                rule=self.id, path=self.DOC_RELPATH, line=documented[name],
                message=(
                    f"table row for `{name}` has no registered knob in "
                    "repro.knobs (stale docs or missing registration)"
                ),
            )

        regenerated, problems = knobs.sync_markdown(text)
        for problem in problems:
            yield Finding(rule=self.id, path=self.DOC_RELPATH, line=1, message=problem)
        if regenerated != text:
            yield Finding(
                rule=self.id, path=self.DOC_RELPATH, line=1,
                message=(
                    "generated knob tables are out of date with repro.knobs "
                    "(run scripts/gen_config_docs.py)"
                ),
            )


@register_rule
class ConfigSurfaceRule(Rule):
    id = "CONFIG001"
    title = "execution knobs stay inside ExecutionConfig on public surfaces"
    description = (
        "The knob sprawl this repo unwound: every execution knob (workers, "
        "streaming, backends, caching, supervision, ...) reaches the public "
        "pipeline/harness/driver surfaces as one ExecutionConfig document, "
        "not as yet another keyword re-declared per signature.  A new knob "
        "parameter on these surfaces forks defaults and precedence again; "
        "add a field to ExecutionConfig instead (deliberate legacy shims "
        "carry a pragma)."
    )

    #: Parameter names that are execution knobs — declaring any of these on
    #: a public signature in the target surfaces is the violation.
    #: (``tile_size`` / ``batch_size`` / ``optical_diameter_pixels`` stay
    #: legal: they double as per-call geometry arguments.)
    KNOB_PARAMS = frozenset({
        "num_workers", "chunk_size", "streaming", "shard_tiles",
        "result_cache", "retry", "backend", "blas_threads", "compile",
        "incremental",
    })
    #: The config-in surfaces: the pipeline entry point, the harness
    #: factories, the experiment drivers and the throughput measurement
    #: API — plus everything under benchmarks/ and examples/, which model
    #: how downstream callers hold the API.  The mechanism layers
    #: (parallel.py, streaming.py, backends.py, supervision.py, config.py
    #: itself) keep their per-knob signatures: they implement one knob each.
    TARGET_FILES = (
        "repro/pipeline/engine.py",
        "repro/experiments/harness.py",
        "repro/experiments/figure6_runtime.py",
        "repro/experiments/table4_large_tile.py",
        "repro/evaluation/runtime.py",
        "repro/opc/engine.py",
    )
    TARGET_DIRS = frozenset({"benchmarks", "examples"})

    def _is_target(self, ctx: FileContext) -> bool:
        if ctx.matches_suffix(self.TARGET_FILES):
            return True
        return any(part in self.TARGET_DIRS for part in ctx.path.parts)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or not self._is_target(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            if name.startswith("test_"):
                continue  # pytest parameters are fixtures, not API knobs
            if name.startswith("_") and name != "__init__":
                continue  # private helpers may thread knobs internally
            if ctx.enclosing_function(node) is not None:
                continue  # closures are implementation detail, not API
            args = node.args
            declared = {
                arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            }
            bad = sorted(declared & self.KNOB_PARAMS)
            if bad:
                yield ctx.finding(
                    self.id, node,
                    f"public signature `{name}` re-declares execution "
                    f"knob(s) {', '.join(bad)}; accept "
                    "`config=ExecutionConfig(...)` instead (a deliberate "
                    "legacy shim needs a `repro: ok(CONFIG001, reason)` "
                    "pragma)",
                )


@register_rule
class SharedMemoryRule(Rule):
    id = "SHM001"
    title = "SharedMemory stays registry-managed"
    description = (
        "/dev/shm hygiene: segments are created only by the streaming "
        "registry (whose atexit hook guarantees unlink), and attach sites "
        "either live in the worker-side segment cache or sit under "
        "try/finally so a failing chunk cannot leak a mapping."
    )

    CREATE_ALLOWED = ("repro/pipeline/streaming.py",)
    ATTACH_ALLOWED = (("repro/pipeline/parallel.py", "_map_segment"),)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.matches_suffix(self.CREATE_ALLOWED):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None or name.split(".")[-1] != "SharedMemory":
                continue
            creates = any(
                kw.arg == "create"
                and not (isinstance(kw.value, ast.Constant) and kw.value.value is False)
                for kw in node.keywords
            )
            if creates:
                yield ctx.finding(
                    self.id, node,
                    "SharedMemory(create=True) outside the streaming registry; "
                    "use repro.pipeline.streaming.create_segment so the atexit "
                    "teardown owns the segment",
                )
                continue
            func = ctx.enclosing_function(node)
            allowed = any(
                ctx.matches_suffix((file_suffix,)) and func is not None and func.name == func_name
                for file_suffix, func_name in self.ATTACH_ALLOWED
            )
            if allowed:
                continue
            under_try_finally = any(
                isinstance(ancestor, ast.Try) and ancestor.finalbody
                for ancestor in ctx.ancestors(node)
            )
            if not under_try_finally:
                yield ctx.finding(
                    self.id, node,
                    "raw SharedMemory attach outside try/finally or the worker "
                    "segment cache; a failure here would leak the mapping",
                )


@register_rule
class DtypeBoundaryRule(Rule):
    id = "DTYPE001"
    title = "dtype narrowing confined to the backend module"
    description = (
        "The executor boundary re-widens to float64; narrowing literals "
        "(np.float32, 'float32', '<f4', ...) outside repro/nn/backends.py "
        "would silently break the boundary contract the fusion equivalence "
        "gates depend on."
    )

    ALLOWED_FILES = ("repro/nn/backends.py", "repro/analysis/rules.py")
    NARROW_ATTRS = frozenset({"float32", "float16", "half", "single"})
    NARROW_STRINGS = frozenset({
        "float32", "float16", "f4", "f2", "<f4", ">f4", "=f4", "<f2", ">f2", "=f2",
    })
    NUMPY_NAMES = frozenset({"np", "numpy"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or ctx.matches_suffix(self.ALLOWED_FILES):
            return
        docstrings = ctx.docstring_ids
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in self.NARROW_ATTRS:
                base = _dotted(node.value)
                if base in self.NUMPY_NAMES:
                    yield ctx.finding(
                        self.id, node,
                        f"dtype-narrowing literal `{base}.{node.attr}` outside "
                        "repro/nn/backends.py; narrowing is the compute "
                        "backend's job (executors re-widen to float64)",
                    )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in self.NARROW_STRINGS
                and id(node) not in docstrings
            ):
                yield ctx.finding(
                    self.id, node,
                    f"dtype-narrowing string {node.value!r} outside "
                    "repro/nn/backends.py; use the backend registry's dtype",
                )


@register_rule
class AllocDisciplineRule(Rule):
    id = "ALLOC001"
    title = "no fresh allocations in the fused hot path"
    description = (
        "repro/nn/functional.py and repro/nn/fusion.py are the fused "
        "per-call hot path; fresh np.zeros/np.empty there (outside the "
        "namespaced scratch-cache helpers) reintroduces the "
        "allocation-per-call bug class PR 8 fixed twice."
    )

    HOT_FILES = ("repro/nn/functional.py", "repro/nn/fusion.py")
    ALLOC_NAMES = frozenset({
        "zeros", "empty", "ones", "full",
        "zeros_like", "empty_like", "ones_like", "full_like",
    })
    NUMPY_NAMES = frozenset({"np", "numpy"})
    ALLOWED_HELPERS = frozenset({"_cached_zeros"})

    def _is_alloc_attr(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr in self.ALLOC_NAMES
            and _dotted(node.value) in self.NUMPY_NAMES
        )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None or not ctx.matches_suffix(self.HOT_FILES):
            return
        called_attrs: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and self._is_alloc_attr(node.func):
                called_attrs.add(id(node.func))
                func = ctx.enclosing_function(node)
                if func is not None and func.name in self.ALLOWED_HELPERS:
                    continue
                yield ctx.finding(
                    self.id, node,
                    f"fresh `np.{node.func.attr}` in a fused hot-path module; "
                    "allocate through the chain's namespaced scratch cache "
                    "(_cached_zeros / buffer handshake) or justify with a pragma",
                )
        # Aliased references (`alloc = np.empty`, called later) would dodge
        # the call check above, so any other mention of an allocator counts.
        for node in ast.walk(ctx.tree):
            if self._is_alloc_attr(node) and id(node) not in called_attrs:
                func = ctx.enclosing_function(node)
                if func is not None and func.name in self.ALLOWED_HELPERS:
                    continue
                yield ctx.finding(
                    self.id, node,
                    f"aliased `np.{node.attr}` allocator in a fused hot-path "
                    "module; allocate through the chain's namespaced scratch "
                    "cache or justify with a pragma",
                )


@register_rule
class BroadExceptRule(Rule):
    id = "EXC001"
    title = "broad exception handlers must justify themselves"
    description = (
        "`except Exception` (or bare except) either masks real bugs or is a "
        "deliberate guarded-teardown/classification site; the deliberate "
        "ones carry a pragma naming why, the rest get narrowed."
    )

    BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, expr: ast.AST | None) -> bool:
        if expr is None:
            return True  # bare except
        if isinstance(expr, ast.Tuple):
            return any(self._is_broad(item) for item in expr.elts)
        name = _dotted(expr)
        return name is not None and name.split(".")[-1] in self.BROAD

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            # A handler that re-raises (bare `raise` at its top level) is a
            # cleanup wrapper, not a swallow — allowed without a pragma.
            if any(isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in node.body):
                continue
            label = "bare except" if node.type is None else "broad exception handler"
            yield ctx.finding(
                self.id, node,
                f"{label} swallows errors; narrow the exception type or "
                "justify with a `repro: ok(EXC001, reason)` pragma",
            )


@register_rule
class PragmaHygieneRule(Rule):
    id = "PRAGMA001"
    title = "suppression pragmas must be well-formed"
    description = (
        "A malformed pragma (missing reason, unknown rule id, bad syntax) "
        "would silently suppress nothing; this rule makes it loud."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for lineno, text in enumerate(ctx.lines, start=1):
            for marker in PRAGMA_MARKER_RE.finditer(text):
                match = PRAGMA_RE.match(text, marker.start())
                if match is None:
                    yield ctx.finding(
                        self.id, lineno,
                        "malformed suppression pragma; expected "
                        "`repro: ok(RULE, reason)`",
                    )
                    continue
                if not match["reason"].strip():
                    yield ctx.finding(
                        self.id, lineno,
                        f"suppression pragma for {match['rule']} has an empty "
                        "reason; name why the invariant bends here",
                    )
                elif match["rule"] not in known_rule_ids():
                    yield ctx.finding(
                        self.id, lineno,
                        f"suppression pragma names unknown rule "
                        f"{match['rule']!r}; known rules: "
                        + ", ".join(sorted(known_rule_ids())),
                    )
