"""CLI entry point: ``python -m repro.analysis [paths ...]``.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse).  Output is one
``path:line: RULE message`` line per finding plus a final summary line —
stable and greppable for CI logs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .framework import DEFAULT_TARGETS, analyze, format_baseline, iter_rules, load_baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-specific static analysis: machine-check the engine's invariants",
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)} under --root)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root for display paths and docs lookups (default: cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="ignore findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings to FILE and exit 0 (incremental adoption)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding output (summary line only)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / target for target in DEFAULT_TARGETS if (root / target).is_dir()]
        if not paths:
            parser.error(f"no default targets ({', '.join(DEFAULT_TARGETS)}) under {root}")

    baseline = load_baseline(Path(args.baseline)) if args.baseline else None
    result = analyze(paths, root=root, baseline=baseline)

    if args.write_baseline:
        Path(args.write_baseline).write_text(format_baseline(result.findings), encoding="utf-8")
        print(
            f"repro.analysis: wrote {len(result.findings)} baseline entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0

    if not args.quiet:
        for finding in result.findings:
            print(finding.format())
    print(result.summary())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
