"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "spectral_scale", "default_rng"]

_DEFAULT_SEED = 0


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy random generator (seeded for reproducibility by default)."""
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def kaiming_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (suitable for ReLU-family activations)."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def spectral_scale(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """Initialization for complex spectral weights stored as ``(..., 2)`` pairs.

    Follows the FNO reference implementation: uniform in ``[0, 1/fan_in)`` for
    both real and imaginary parts.
    """
    scale = 1.0 / max(fan_in, 1)
    return rng.uniform(0.0, scale, size=shape)
