"""Loss functions.

The paper trains every model with a plain mean-squared-error loss on the
predicted resist image (Table 8).  Binary cross-entropy and Dice losses are
also provided because the DAMO-DLS baseline literature uses them and they are
useful for ablation experiments.
"""

from __future__ import annotations

import numpy as np

from .layers import Module
from .tensor import Tensor

__all__ = ["MSELoss", "BCELoss", "DiceLoss", "mse_loss", "bce_loss", "dice_loss"]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between prediction and target."""
    diff = prediction - target
    return (diff * diff).mean()


def bce_loss(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross entropy; ``prediction`` must already be in (0, 1)."""
    p = prediction.clip(eps, 1.0 - eps)
    target = target if isinstance(target, Tensor) else Tensor(target)
    return -(target * p.log() + (1.0 - target) * (1.0 - p).log()).mean()


def dice_loss(prediction: Tensor, target: Tensor, eps: float = 1e-6) -> Tensor:
    """Soft Dice loss (1 - Dice coefficient), computed over the whole batch."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    intersection = (prediction * target).sum()
    union = prediction.sum() + target.sum()
    dice = (intersection * 2.0 + eps) / (union + eps)
    return 1.0 - dice


class MSELoss(Module):
    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mse_loss(prediction, target)


class BCELoss(Module):
    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return bce_loss(prediction, target)


class DiceLoss(Module):
    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return dice_loss(prediction, target)
