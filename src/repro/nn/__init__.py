"""A small NumPy-backed deep-learning framework.

This package replaces PyTorch in the reproduction: it provides autograd
tensors, image layers (convolution, transposed convolution, pooling,
batch normalization), the complex spectral layers used by DOINN and the
baseline FNO, losses, optimizers and serialization.
"""

from . import functional
from .backends import (
    BACKEND_ENV,
    BLAS_THREADS_ENV,
    DEFAULT_BACKEND,
    BackendWorkspace,
    ComputeBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_blas_threads,
    set_blas_threads,
)
from .fusion import (
    CompiledChain,
    FusedChain,
    FusedConvBNAct,
    FusedConvTranspose,
    FusedInferenceGraph,
    FusionFallbackWarning,
    compile_model,
)
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    FNOFourierLayer,
    eval_mode,
    Identity,
    LeakyReLU,
    MaxPool2d,
    Module,
    OptimizedFourierUnit,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    UpsampleNearest2d,
)
from .loss import BCELoss, DiceLoss, MSELoss, bce_loss, dice_loss, mse_loss
from .optim import SGD, Adam, Optimizer, StepLR
from .serialization import load_model, load_state, save_model, save_state
from .spectral import fourier_unit, spectral_conv2d, truncate_spectrum, scatter_spectrum
from .tensor import Tensor, no_grad

__all__ = [
    "functional",
    "BACKEND_ENV",
    "BLAS_THREADS_ENV",
    "DEFAULT_BACKEND",
    "BackendWorkspace",
    "ComputeBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_blas_threads",
    "set_blas_threads",
    "CompiledChain",
    "FusedChain",
    "FusedConvBNAct",
    "FusedConvTranspose",
    "FusedInferenceGraph",
    "FusionFallbackWarning",
    "compile_model",
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "eval_mode",
    "Sequential",
    "Identity",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "UpsampleNearest2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "OptimizedFourierUnit",
    "FNOFourierLayer",
    "MSELoss",
    "BCELoss",
    "DiceLoss",
    "mse_loss",
    "bce_loss",
    "dice_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "save_model",
    "load_model",
    "save_state",
    "load_state",
    "fourier_unit",
    "spectral_conv2d",
    "truncate_spectrum",
    "scatter_spectrum",
]
