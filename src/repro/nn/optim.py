"""Optimizers and learning-rate schedules.

The paper trains with Adam, weight decay 1e-4, initial learning rate 0.002 and
a step decay by 0.5 every 2 epochs (Table 8); :class:`Adam` and :class:`StepLR`
implement exactly that recipe.  A plain :class:`SGD` is included for the
ablation/benchmark harnesses.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR"]


class Optimizer:
    """Base optimizer: holds parameters and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with decoupled-style L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.002,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step
        bias_correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Step learning-rate decay: multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
