"""Fused differentiable operations on 4-D image tensors.

All operations here work on tensors shaped ``(N, C, H, W)`` (batch, channel,
height, width) — the layout used throughout the paper's architecture tables —
and register analytic backward passes with the autograd graph defined in
:mod:`repro.nn.tensor`.

Convolutions are implemented with ``im2col``/``col2im`` so both the forward
and backward passes reduce to dense matrix multiplications, which is the
fastest strategy available with a pure NumPy backend for the small kernel
sizes (3x3 / 4x4) used by DOINN, UNet and DAMO-DLS.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv2d",
    "conv_transpose2d",
    "avg_pool2d",
    "max_pool2d",
    "batch_norm2d",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "upsample_nearest2d",
]


# ---------------------------------------------------------------------- #
# im2col / col2im
# ---------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C * kh * kw, H_out * W_out)``.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)
    cols = np.empty((n, c, kh, kw, h_out, w_out), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * h_out
        for j in range(kw):
            j_end = j + stride * w_out
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, h_out * w_out)


def col2im(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add patches back into an image)."""
    n, c, h, w = image_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, h_out, w_out)
    image = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * h_out
        for j in range(kw):
            j_end = j + stride * w_out
            image[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return image[:, :, padding:-padding, padding:-padding]
    return image


# ---------------------------------------------------------------------- #
# Convolution
# ---------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation, PyTorch convention).

    ``weight`` has shape ``(C_out, C_in, kh, kw)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d: input has {c_in} channels, weight expects {c_in_w}")
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)           # (N, C_in*kh*kw, L)
    w_mat = weight.data.reshape(c_out, -1)                   # (C_out, C_in*kh*kw)
    out = np.einsum("ok,nkl->nol", w_mat, cols)              # (N, C_out, L)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1)
    out = out.reshape(n, c_out, h_out, w_out)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, -1)                # (N, C_out, L)
        if weight.requires_grad:
            grad_w = np.einsum("nol,nkl->ok", grad_mat, cols)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_cols = np.einsum("ok,nol->nkl", w_mat, grad_mat)
            x.accumulate_grad(col2im(grad_cols, x.shape, kh, kw, stride, padding))

    return Tensor.from_op(out, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D transposed convolution (PyTorch convention).

    ``weight`` has shape ``(C_in, C_out, kh, kw)`` and the output spatial size
    is ``(H - 1) * stride - 2 * padding + k``.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv_transpose2d: input has {c_in} channels, weight expects {c_in_w}")
    h_out = (h - 1) * stride - 2 * padding + kh
    w_out = (w - 1) * stride - 2 * padding + kw

    w_mat = weight.data.reshape(c_in, -1)                    # (C_in, C_out*kh*kw)
    x_mat = x.data.reshape(n, c_in, h * w)                   # (N, C_in, H*W)
    cols = np.einsum("ik,nil->nkl", w_mat, x_mat)            # (N, C_out*kh*kw, H*W)
    out = col2im(cols, (n, c_out, h_out, w_out), kh, kw, stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad_cols = im2col(grad, kh, kw, stride, padding)    # (N, C_out*kh*kw, H*W)
        if x.requires_grad:
            grad_x = np.einsum("ik,nkl->nil", w_mat, grad_cols)
            x.accumulate_grad(grad_x.reshape(x.shape))
        if weight.requires_grad:
            grad_w = np.einsum("nil,nkl->ik", x_mat, grad_cols)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))

    return Tensor.from_op(out, parents, backward)


# ---------------------------------------------------------------------- #
# Pooling
# ---------------------------------------------------------------------- #
def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Non-overlapping average pooling (``stride`` defaults to ``kernel_size``)."""
    stride = stride or kernel_size
    if stride != kernel_size:
        raise NotImplementedError("avg_pool2d only supports stride == kernel_size")
    n, c, h, w = x.shape
    if h % kernel_size or w % kernel_size:
        raise ValueError(f"avg_pool2d: spatial size {(h, w)} not divisible by {kernel_size}")
    h_out, w_out = h // kernel_size, w // kernel_size
    reshaped = x.data.reshape(n, c, h_out, kernel_size, w_out, kernel_size)
    out = reshaped.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        scale = 1.0 / (kernel_size * kernel_size)
        expanded = np.repeat(np.repeat(grad, kernel_size, axis=2), kernel_size, axis=3)
        x.accumulate_grad(expanded * scale)

    return Tensor.from_op(out, (x,), backward)


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Non-overlapping max pooling (``stride`` defaults to ``kernel_size``)."""
    stride = stride or kernel_size
    if stride != kernel_size:
        raise NotImplementedError("max_pool2d only supports stride == kernel_size")
    n, c, h, w = x.shape
    if h % kernel_size or w % kernel_size:
        raise ValueError(f"max_pool2d: spatial size {(h, w)} not divisible by {kernel_size}")
    h_out, w_out = h // kernel_size, w // kernel_size
    reshaped = x.data.reshape(n, c, h_out, kernel_size, w_out, kernel_size)
    windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h_out, w_out, -1)
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(grad_windows, argmax[..., None], grad[..., None], axis=-1)
        grad_x = (
            grad_windows.reshape(n, c, h_out, w_out, kernel_size, kernel_size)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        x.accumulate_grad(grad_x)

    return Tensor.from_op(out, (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of the spatial dimensions by ``scale``."""
    out = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)
    n, c, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        reshaped = grad.reshape(n, c, h, scale, w, scale)
        x.accumulate_grad(reshaped.sum(axis=(3, 5)))

    return Tensor.from_op(out, (x,), backward)


# ---------------------------------------------------------------------- #
# Normalization
# ---------------------------------------------------------------------- #
def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel dimension of a 4-D tensor.

    ``running_mean``/``running_var`` are plain arrays owned by the calling
    layer; they are updated in place in training mode.
    """
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_b = mean.reshape(1, c, 1, 1)
    std = np.sqrt(var.reshape(1, c, 1, 1) + eps)
    x_hat = (x.data - mean_b) / std
    out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma.accumulate_grad((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                m = n * h * w
                grad_xhat = grad * g
                term1 = grad_xhat
                term2 = grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
                term3 = x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
                del m  # documented for clarity; means already folded in
                x.accumulate_grad((term1 - term2 - term3) / std)
            else:
                x.accumulate_grad(grad * g / std)

    return Tensor.from_op(out, (x, gamma, beta), backward)


# ---------------------------------------------------------------------- #
# Activations (thin wrappers over Tensor methods for functional style)
# ---------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()
