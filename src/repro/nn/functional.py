"""Fused differentiable operations on 4-D image tensors.

All operations here work on tensors shaped ``(N, C, H, W)`` (batch, channel,
height, width) — the layout used throughout the paper's architecture tables —
and register analytic backward passes with the autograd graph defined in
:mod:`repro.nn.tensor`.

Convolutions reduce to dense matrix multiplications, which is the fastest
strategy available with a pure NumPy backend for the small kernel sizes
(3x3 / 4x4) used by DOINN, UNet and DAMO-DLS.  The hot path is zero-copy:
patches are expressed as a :func:`numpy.lib.stride_tricks.sliding_window_view`
over the (padded) input — a view, not a materialized ``(N, C*kh*kw, L)``
patch matrix — and the contraction against the weights runs as one GEMM via
``np.tensordot``, whose internal packing of the view is the only copy made.
The explicit ``im2col``/``col2im`` pair is kept for the adjoint passes and
for callers that need the patch matrix itself.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided, sliding_window_view

from .tensor import Tensor

__all__ = [
    "conv2d",
    "conv_bn_act",
    "conv_transpose2d",
    "conv_transpose_bn_act",
    "avg_pool2d",
    "max_pool2d",
    "batch_norm2d",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "upsample_nearest2d",
]


# ---------------------------------------------------------------------- #
# im2col / col2im
# ---------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1




def _window_view(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Zero-copy sliding-window view ``(N, C, H_out, W_out, kh, kw)`` of ``x``.

    For ``stride == 1`` this is a pure view of the (padded) input; larger
    strides slice the view, which stays copy-free.  Every conv forward/adjoint
    consumes this view directly, so no ``(N, C*kh*kw, L)`` patch matrix is ever
    materialized on the hot path.
    """
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    return windows


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Built on the sliding-window view: the single copy happens in the final
    ``reshape`` (the transposed view is not contiguous); the seed slice-loop
    implementation is pinned against this one in ``tests/pipeline``.

    Parameters
    ----------
    x:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C * kh * kw, H_out * W_out)``.
    """
    windows = _window_view(x, kh, kw, stride, padding)
    n, c, h_out, w_out = windows.shape[:4]
    return windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, h_out * w_out)


def col2im(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add patches back into an image).

    When ``stride >= kh`` and ``stride >= kw`` the patch windows are disjoint,
    so the scatter-add degenerates to a single vectorized assignment over the
    whole kernel window (a strided 6-D view of the output with no aliasing).
    Overlapping windows keep the per-offset loop: each of the ``kh * kw``
    iterations is a fully vectorized strided add, and overlapping destinations
    cannot be written through one view without undefined aliasing.
    """
    n, c, h, w = image_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, h_out, w_out)
    # repro: ok(ALLOC001, col2im is the autograd/training adjoint, not the fused eval hot path)
    image = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    if stride >= kh and stride >= kw:
        sn, sc, sh, sw = image.strides
        scatter = as_strided(
            image,
            shape=(n, c, h_out, kh, w_out, kw),
            strides=(sn, sc, sh * stride, sh, sw * stride, sw),
        )
        scatter[:] = cols.transpose(0, 1, 4, 2, 5, 3)
    else:
        for i in range(kh):
            i_end = i + stride * h_out
            for j in range(kw):
                j_end = j + stride * w_out
                image[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return image[:, :, padding:-padding, padding:-padding]
    return image


# ---------------------------------------------------------------------- #
# Convolution
# ---------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation, PyTorch convention).

    ``weight`` has shape ``(C_out, C_in, kh, kw)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d: input has {c_in} channels, weight expects {c_in_w}")
    windows = _window_view(x.data, kh, kw, stride, padding)  # view: (N, C_in, HO, WO, kh, kw)
    h_out, w_out = windows.shape[2], windows.shape[3]
    # One GEMM per sample; tensordot's internal packing of the view is the
    # only copy, vs. materializing the full patch matrix with im2col.  The
    # per-sample loop is deliberate, not a fallback: each pack stays
    # cache-resident (a whole-batch pack made bs=4 ~35% slower per sample
    # than bs=1 on the DOINN 32-channel 64x64 tiles), and each sample's GEMM
    # shape is independent of the batch partitioning, so outputs are
    # bit-identical however a stream is batched or sharded across workers
    # (BLAS picks different, differently-rounding kernels per matrix shape).
    # repro: ok(ALLOC001, unfused autograd conv2d; the fused eval path owns the cached buffers)
    out = np.empty((n, c_out, h_out, w_out), dtype=np.result_type(windows, weight.data))
    for i in range(n):
        part = np.tensordot(windows[i], weight.data, axes=([0, 3, 4], [1, 2, 3]))
        out[i] = part.transpose(2, 0, 1)                     # (C_out, HO, WO)
    if bias is not None:
        out += bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            grad_w = np.tensordot(grad, windows, axes=([0, 2, 3], [0, 2, 3]))
            weight.accumulate_grad(grad_w)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            w_mat = weight.data.reshape(c_out, -1)           # (C_out, C_in*kh*kw)
            grad_mat = grad.reshape(n, c_out, -1)            # (N, C_out, L)
            grad_cols = np.matmul(w_mat.T, grad_mat)         # (N, C_in*kh*kw, L)
            x.accumulate_grad(col2im(grad_cols, x.shape, kh, kw, stride, padding))

    return Tensor.from_op(out, parents, backward)


#: Activation kinds understood by :func:`conv_bn_act` /
#: :func:`conv_transpose_bn_act` (and the fused graphs built on them by
#: :mod:`repro.nn.fusion`).
FUSED_ACTIVATIONS = ("identity", "relu", "leaky_relu", "tanh")


def _check_fused_activation(activation: str, negative_slope: float) -> None:
    if activation not in FUSED_ACTIVATIONS:
        raise ValueError(f"unknown fused activation {activation!r}; expected one of {FUSED_ACTIVATIONS}")
    if activation == "leaky_relu" and not 0.0 <= negative_slope < 1.0:
        # The in-place max(x, slope*x) identity below needs slope in [0, 1).
        raise ValueError(f"fused leaky_relu requires 0 <= negative_slope < 1, got {negative_slope}")


def _apply_activation_inplace(arr: np.ndarray, activation: str, negative_slope: float) -> None:
    """Apply a fused activation in place on a cache-hot array."""
    if activation == "leaky_relu":
        # max(x, slope*x) == leaky_relu(x) for slope in [0, 1), in place.
        np.maximum(arr, arr * negative_slope, out=arr)
    elif activation == "relu":
        np.maximum(arr, 0.0, out=arr)
    elif activation == "tanh":
        np.tanh(arr, out=arr)


def conv_bn_act(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    activation: str = "identity",
    negative_slope: float = 0.01,
    input_is_padded: bool = False,
    output_padding: int = 0,
    out: np.ndarray | None = None,
    gemm: np.ndarray | None = None,
    stacked: bool = False,
) -> np.ndarray:
    """Fused inference kernel: conv (+ folded BN affine) (+ activation), one pass.

    This is the eval-mode hot path compiled by :mod:`repro.nn.fusion`: the
    batch-norm affine is folded into ``weight``/``bias`` ahead of time, and the
    activation is applied to each sample's GEMM output tile while it is still
    cache resident — instead of three separate passes (conv, batch norm,
    activation) over a working set that spills the per-core cache.

    Operates on plain ndarrays (no autograd); training forwards keep using
    :func:`conv2d` / :func:`batch_norm2d` unchanged.

    Parameters
    ----------
    input_is_padded:
        The spatial border of ``x`` already carries this op's ``padding``
        zeros (produced by a previous fused op via ``output_padding``), so the
        per-call ``np.pad`` copy is skipped entirely.
    output_padding:
        Emit the result inside a zero border of this width, ready to be
        consumed pad-free by a following conv with ``padding ==
        output_padding`` — the "pad once" half of the fusion win.
    out:
        Optional preallocated ``(N, C_out, H_out + 2*output_padding, W_out +
        2*output_padding)`` buffer whose border is already zero (a fused
        chain's scratch cache); only the interior is written.
    gemm:
        Optional GEMM scratch (a fused chain's buffer cache).  On the
        bordered per-sample path (``output_padding > 0``) it holds one
        sample's ``(C_out, L)`` output tile; on the ``stacked`` path it
        holds the whole batch's ``(N*L, C_out)`` result.  Fully rewritten
        every call, no zero-border contract.
    stacked:
        Stack every sample's patch matrix into one ``(N*L, C_in*kh*kw)``
        GEMM (the threaded-BLAS backend lane) instead of one
        cache-resident GEMM per sample.  Faster when BLAS is threaded, but
        the GEMM shape now depends on ``N``, so results are only
        tolerance-equivalent across batch partitionings — the per-sample
        default stays the bit-identical reference.
    """
    _check_fused_activation(activation, negative_slope)
    x = np.asarray(x)
    weight = np.asarray(weight)
    n, c_in, _, _ = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv_bn_act: input has {c_in} channels, weight expects {c_in_w}")
    if input_is_padded or padding == 0:
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
        if stride > 1:
            windows = windows[:, :, ::stride, ::stride]
    else:
        windows = _window_view(x, kh, kw, stride, padding)
    h_out, w_out = windows.shape[2], windows.shape[3]
    oh, ow = h_out + 2 * output_padding, w_out + 2 * output_padding
    dtype = np.result_type(windows, weight)
    if out is None:
        # repro: ok(ALLOC001, API fallback when no out= buffer is passed; FusedChain always passes its cached one)
        alloc = np.zeros if output_padding else np.empty
        out = alloc((n, c_out, oh, ow), dtype=dtype)
    elif out.shape != (n, c_out, oh, ow) or out.dtype != dtype:
        raise ValueError(
            f"conv_bn_act: out buffer has shape {out.shape} dtype {out.dtype}, "
            f"expected {(n, c_out, oh, ow)} dtype {dtype}"
        )
    # The (C_out, C_in*kh*kw) weight matrix is a free view of the PyTorch
    # weight layout — no per-call weight pack (tensordot repacks it every
    # call).  The patch pack below is the single remaining copy per sample.
    w_mat = weight.reshape(c_out, -1)
    bias_col = None if bias is None else np.asarray(bias).reshape(c_out, 1)
    length = h_out * w_out
    if stacked:
        # Threaded-BLAS lane: one (N*L, C_in*kh*kw) @ (C_in*kh*kw, C_out)
        # GEMM for the whole micro-batch, so a threaded BLAS has enough rows
        # to split across cores.  The transpose/reshape is the single patch
        # pack (same copy count as the per-sample loop, one bigger buffer).
        k_len = c_in * kh * kw
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * length, k_len)
        if gemm is None:
            # repro: ok(ALLOC001, scratch fallback when the caller passes no buffer; FusedChain passes its cached one)
            gemm = np.empty((n * length, c_out), dtype=dtype)
        elif gemm.shape != (n * length, c_out) or gemm.dtype != dtype:
            raise ValueError(
                f"conv_bn_act: gemm buffer has shape {gemm.shape} dtype {gemm.dtype}, "
                f"expected {(n * length, c_out)} dtype {dtype}"
            )
        part = np.matmul(cols, w_mat.T, out=gemm)
        if bias is not None:
            part += np.asarray(bias).reshape(1, c_out)
        _apply_activation_inplace(part, activation, negative_slope)
        out[:, :, output_padding : output_padding + h_out, output_padding : output_padding + w_out] = (
            part.reshape(n, h_out, w_out, c_out).transpose(0, 3, 1, 2)
        )
        return out
    if output_padding:
        # The bordered path cannot GEMM straight into the output interior
        # (the border makes the rows non-contiguous), so it lands in a
        # (C_out, L) scratch first — cached by the fused chain, not a fresh
        # allocation per sample per call.
        if gemm is None:
            # repro: ok(ALLOC001, scratch fallback when the caller passes no buffer; FusedChain passes its cached one)
            gemm = np.empty((c_out, length), dtype=dtype)
        elif gemm.shape != (c_out, length) or gemm.dtype != dtype:
            raise ValueError(
                f"conv_bn_act: gemm buffer has shape {gemm.shape} dtype {gemm.dtype}, "
                f"expected {(c_out, length)} dtype {dtype}"
            )
    for i in range(n):
        # (C_in*kh*kw, L) patch matrix; for 1x1 stride-1 kernels the
        # transpose is trivial and reshape returns a zero-copy view.
        cols = windows[i].transpose(0, 3, 4, 1, 2).reshape(c_in * kh * kw, length)
        if output_padding == 0:
            # One GEMM per sample, written straight into the output buffer;
            # bias/activation run in place on the cache-hot tile.
            part = np.matmul(w_mat, cols, out=out[i].reshape(c_out, length))
        else:
            part = np.matmul(w_mat, cols, out=gemm)
        if bias_col is not None:
            part += bias_col
        _apply_activation_inplace(part, activation, negative_slope)
        if output_padding:
            out[i, :, output_padding : output_padding + h_out, output_padding : output_padding + w_out] = (
                part.reshape(c_out, h_out, w_out)
            )
    return out


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D transposed convolution (PyTorch convention).

    ``weight`` has shape ``(C_in, C_out, kh, kw)`` and the output spatial size
    is ``(H - 1) * stride - 2 * padding + k``.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv_transpose2d: input has {c_in} channels, weight expects {c_in_w}")
    h_out = (h - 1) * stride - 2 * padding + kh
    w_out = (w - 1) * stride - 2 * padding + kw

    # Inference hot path: every step below is either a free view (the weight
    # matrix and flattened-input reshapes, and col2im's crop) or an
    # unavoidable buffer (the GEMM result and the scatter image) — the only
    # per-call allocation beyond those was the bias add, which built a whole
    # fresh output array (`out = out + bias...`); it now adds in place.
    w_mat = weight.data.reshape(c_in, -1)                    # (C_in, C_out*kh*kw)
    x_mat = x.data.reshape(n, c_in, h * w)                   # (N, C_in, H*W)
    cols = np.matmul(w_mat.T, x_mat)                         # (N, C_out*kh*kw, H*W)
    out = col2im(cols, (n, c_out, h_out, w_out), kh, kw, stride, padding)
    if bias is not None:
        out += bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad_cols = im2col(grad, kh, kw, stride, padding)    # (N, C_out*kh*kw, H*W)
        if x.requires_grad:
            grad_x = np.matmul(w_mat, grad_cols)             # (N, C_in, H*W)
            x.accumulate_grad(grad_x.reshape(x.shape))
        if weight.requires_grad:
            grad_w = np.tensordot(x_mat, grad_cols, axes=([0, 2], [0, 2]))
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))

    return Tensor.from_op(out, parents, backward)


def conv_transpose_bn_act(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    activation: str = "identity",
    negative_slope: float = 0.01,
    output_padding: int = 0,
    out: np.ndarray | None = None,
    scatter: np.ndarray | None = None,
) -> np.ndarray:
    """Fused inference kernel: transposed conv (+ folded BN) (+ activation).

    The transposed-conv mirror of :func:`conv_bn_act`, closing the last
    unfused link of the inference graphs compiled by :mod:`repro.nn.fusion`:
    ``weight`` (``(C_in, C_out, kh, kw)``, PyTorch transposed layout) already
    carries the folded eval-mode batch-norm affine, each sample runs one GEMM
    against the ``(C_in, C_out*kh*kw)`` weight matrix (a free view of the
    folded weight), and the column block is scattered back to image layout
    with a vectorized ``col2im``-style strided assignment (non-overlapping
    kernels, e.g. the UNet 2x2/stride-2 up path) or the per-offset
    scatter-add (overlapping kernels, e.g. DOINN's 4x4/stride-2 ``dconv*``).
    Bias and activation are applied in place while the output is cache hot.

    A transposed conv consumes its input unpadded (its ``padding`` *crops*
    the output), so unlike :func:`conv_bn_act` there is no
    ``input_is_padded`` switch; the crop itself is fused — the cropped result
    is emitted directly inside the ``output_padding`` zero border the next
    conv's padding needs, so a ``dconv -> conv`` chain never materializes the
    uncropped image followed by a separate pad copy.

    Operates on plain ndarrays (no autograd); training forwards keep using
    :func:`conv_transpose2d` unchanged.

    Parameters
    ----------
    output_padding:
        Emit the (cropped) result inside a zero border of this width, ready
        to be consumed pad-free by a following conv with ``padding ==
        output_padding`` via its ``input_is_padded`` contract.
    out:
        Optional preallocated ``(N, C_out, H_out + 2*output_padding, W_out +
        2*output_padding)`` buffer whose border is already zero; only the
        interior is written.
    scatter:
        Optional per-sample ``(C_out, H_out + 2*padding, W_out + 2*padding)``
        scratch for the overlapping-kernel scatter (a fused chain's buffer
        cache); it is fully rewritten every sample, so unlike ``out`` it has
        no zero-border contract.  Ignored on the non-overlapping fast path.
    """
    _check_fused_activation(activation, negative_slope)
    x = np.asarray(x)
    weight = np.asarray(weight)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv_transpose_bn_act: input has {c_in} channels, weight expects {c_in_w}")
    h_out = (h - 1) * stride - 2 * padding + kh
    w_out = (w - 1) * stride - 2 * padding + kw
    oh, ow = h_out + 2 * output_padding, w_out + 2 * output_padding
    dtype = np.result_type(x, weight)
    if out is None:
        # repro: ok(ALLOC001, API fallback when no out= buffer is passed; FusedChain always passes its cached one)
        alloc = np.zeros if output_padding else np.empty
        out = alloc((n, c_out, oh, ow), dtype=dtype)
    elif out.shape != (n, c_out, oh, ow) or out.dtype != dtype:
        raise ValueError(
            f"conv_transpose_bn_act: out buffer has shape {out.shape} dtype {out.dtype}, "
            f"expected {(n, c_out, oh, ow)} dtype {dtype}"
        )
    # Non-overlapping, gap-free, crop-free kernels (stride == kh == kw,
    # padding == 0 — the UNet up path) scatter-assign straight into the
    # output buffer; everything else goes through the padded scatter image.
    direct = padding == 0 and stride == kh and stride == kw
    if not direct:
        h_pad, w_pad = h_out + 2 * padding, w_out + 2 * padding
        if scatter is None:
            # repro: ok(ALLOC001, scratch fallback when the caller passes no buffer; FusedChain passes its cached one)
            scatter = np.empty((c_out, h_pad, w_pad), dtype=dtype)
        elif scatter.shape != (c_out, h_pad, w_pad) or scatter.dtype != dtype:
            raise ValueError(
                f"conv_transpose_bn_act: scatter buffer has shape {scatter.shape} dtype "
                f"{scatter.dtype}, expected {(c_out, h_pad, w_pad)} dtype {dtype}"
            )
    # The (C_in, C_out*kh*kw) weight matrix is a free view of the folded
    # weight; BLAS consumes the transpose without a copy.  The per-sample
    # loop keeps each GEMM cache-resident and partition-invariant (outputs
    # are bit-identical however a stream is batched or sharded).
    w_mat = weight.reshape(c_in, c_out * kh * kw)
    bias_arr = None if bias is None else np.asarray(bias)
    x_flat = x.reshape(n, c_in, h * w)
    for i in range(n):
        cols = np.matmul(w_mat.T, x_flat[i])                 # (C_out*kh*kw, H*W)
        tiles = cols.reshape(c_out, kh, kw, h, w)
        if direct:
            # Bias/activation run on the GEMM output while it is cache hot
            # (every output pixel receives exactly one contribution), then
            # one strided assignment writes the kernel tiles into place.
            if bias_arr is not None:
                per_channel = cols.reshape(c_out, kh * kw * h * w)
                per_channel += bias_arr[:, None]
            _apply_activation_inplace(cols, activation, negative_slope)
            interior = out[i, :, output_padding : output_padding + h_out, output_padding : output_padding + w_out]
            sc, sh, sw = interior.strides
            view = as_strided(
                interior,
                shape=(c_out, h, kh, w, kw),
                strides=(sc, sh * stride, sh, sw * stride, sw),
            )
            view[:] = tiles.transpose(0, 3, 1, 4, 2)
            continue
        scatter.fill(0.0)
        if stride >= kh and stride >= kw:
            # Disjoint windows: one vectorized strided assignment (gaps left
            # by stride > k stay zero from the fill).
            sc, sh, sw = scatter.strides
            view = as_strided(
                scatter,
                shape=(c_out, h, kh, w, kw),
                strides=(sc, sh * stride, sh, sw * stride, sw),
            )
            view[:] = tiles.transpose(0, 3, 1, 4, 2)
        else:
            for ki in range(kh):
                i_end = ki + stride * h
                for kj in range(kw):
                    scatter[:, ki:i_end:stride, kj : kj + stride * w : stride] += tiles[:, ki, kj]
        region = scatter[:, padding : padding + h_out, padding : padding + w_out] if padding else scatter
        if bias_arr is not None:
            region += bias_arr[:, None, None]
        _apply_activation_inplace(region, activation, negative_slope)
        out[i, :, output_padding : output_padding + h_out, output_padding : output_padding + w_out] = region
    return out


# ---------------------------------------------------------------------- #
# Pooling
# ---------------------------------------------------------------------- #
def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Non-overlapping average pooling (``stride`` defaults to ``kernel_size``)."""
    stride = stride or kernel_size
    if stride != kernel_size:
        raise NotImplementedError("avg_pool2d only supports stride == kernel_size")
    n, c, h, w = x.shape
    if h % kernel_size or w % kernel_size:
        raise ValueError(f"avg_pool2d: spatial size {(h, w)} not divisible by {kernel_size}")
    h_out, w_out = h // kernel_size, w // kernel_size
    reshaped = x.data.reshape(n, c, h_out, kernel_size, w_out, kernel_size)
    out = reshaped.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        scale = 1.0 / (kernel_size * kernel_size)
        expanded = np.repeat(np.repeat(grad, kernel_size, axis=2), kernel_size, axis=3)
        x.accumulate_grad(expanded * scale)

    return Tensor.from_op(out, (x,), backward)


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Non-overlapping max pooling (``stride`` defaults to ``kernel_size``)."""
    stride = stride or kernel_size
    if stride != kernel_size:
        raise NotImplementedError("max_pool2d only supports stride == kernel_size")
    n, c, h, w = x.shape
    if h % kernel_size or w % kernel_size:
        raise ValueError(f"max_pool2d: spatial size {(h, w)} not divisible by {kernel_size}")
    h_out, w_out = h // kernel_size, w // kernel_size
    reshaped = x.data.reshape(n, c, h_out, kernel_size, w_out, kernel_size)
    windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h_out, w_out, -1)
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        # repro: ok(ALLOC001, max-pool backward is training-only; gradients are not the fused hot path)
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(grad_windows, argmax[..., None], grad[..., None], axis=-1)
        grad_x = (
            grad_windows.reshape(n, c, h_out, w_out, kernel_size, kernel_size)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        x.accumulate_grad(grad_x)

    return Tensor.from_op(out, (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of the spatial dimensions by ``scale``."""
    out = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)
    n, c, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        reshaped = grad.reshape(n, c, h, scale, w, scale)
        x.accumulate_grad(reshaped.sum(axis=(3, 5)))

    return Tensor.from_op(out, (x,), backward)


# ---------------------------------------------------------------------- #
# Normalization
# ---------------------------------------------------------------------- #
def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel dimension of a 4-D tensor.

    ``running_mean``/``running_var`` are plain arrays owned by the calling
    layer; they are updated in place in training mode.
    """
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
        mean_b = mean.reshape(1, c, 1, 1)
        std = np.sqrt(var.reshape(1, c, 1, 1) + eps)
        x_hat = (x.data - mean_b) / std
        out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)
    else:
        # Inference hot path: fold the normalization into one per-channel
        # affine (two array passes instead of four); x_hat is recomputed
        # lazily in backward, which only tests exercise in eval mode.  The
        # mean is snapshotted: running_mean is the layer-owned array and a
        # training forward may mutate it in place before backward runs.
        mean, var = running_mean.copy(), running_var
        std = np.sqrt(var.reshape(1, c, 1, 1) + eps)
        scale = gamma.data.reshape(1, c, 1, 1) / std
        shift = beta.data.reshape(1, c, 1, 1) - mean.reshape(1, c, 1, 1) * scale
        out = x.data * scale + shift
        x_hat = None

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            normalized = (
                x_hat if x_hat is not None else (x.data - mean.reshape(1, c, 1, 1)) / std
            )
            gamma.accumulate_grad((grad * normalized).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                grad_xhat = grad * g
                term1 = grad_xhat
                term2 = grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
                term3 = x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
                x.accumulate_grad((term1 - term2 - term3) / std)
            else:
                x.accumulate_grad(grad * g / std)

    return Tensor.from_op(out, (x, gamma, beta), backward)


# ---------------------------------------------------------------------- #
# Activations (thin wrappers over Tensor methods for functional style)
# ---------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()
