"""Reverse-mode autograd tensor.

This module is the foundation of the :mod:`repro.nn` deep-learning framework.
It provides a small, NumPy-backed :class:`Tensor` with define-by-run automatic
differentiation, covering the operations needed by the DOINN model and its
baselines (element-wise arithmetic, matrix multiplication, reductions,
reshaping, slicing, padding and concatenation).  Convolution, pooling and
spectral operations are implemented as fused primitives in
:mod:`repro.nn.functional` and :mod:`repro.nn.spectral` and plug into the same
graph through :func:`Tensor.from_op`.

The design intentionally mirrors the user-facing behaviour of PyTorch tensors
(``requires_grad``, ``backward``, ``grad``) so that the model code in
:mod:`repro.core` reads like the architecture description in the paper.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = [True]


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation and inference to avoid building the autograd graph,
    matching ``torch.no_grad`` semantics.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded for differentiation."""
    return _GRAD_ENABLED[0]


def _to_array(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        # repro: ok(DTYPE001, dtype equality check that accepts caller-provided float32 arrays; nothing narrows here)
        if data.dtype == np.float64 or data.dtype == np.float32:
            return data
        if np.issubdtype(data.dtype, np.complexfloating):
            return data
        return data.astype(np.float64)
    return np.asarray(data, dtype=np.float64)


def _sum_to_shape(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (produced with broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _prev: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = _to_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._prev: tuple[Tensor, ...] = tuple(_prev) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a tensor produced by a fused operation.

        ``backward`` receives the upstream gradient and is responsible for
        accumulating into each parent via :meth:`accumulate_grad`.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parents)
            out._backward = backward
        return out

    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False, rng: np.random.Generator | None = None) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Gradient plumbing
    # ------------------------------------------------------------------ #
    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into this tensor if it requires gradients."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            grad = _sum_to_shape(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True) if not np.iscomplexobj(grad) else grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (for scalar losses it is simply 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad)
            other.accumulate_grad(grad)

        return Tensor.from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(-grad)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad)
            other.accumulate_grad(-grad)

        return Tensor.from_op(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * other.data)
            other.accumulate_grad(grad * self.data)

        return Tensor.from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / other.data)
            other.accumulate_grad(-grad * self.data / (other.data ** 2))

        return Tensor.from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other.accumulate_grad(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor.from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / self.data)

        return Tensor.from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * np.sign(self.data))

        return Tensor.from_op(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = (self.data >= low) & (self.data <= high)
            self.accumulate_grad(grad * mask)

        return Tensor.from_op(out_data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            self_mask = self.data >= other.data
            self.accumulate_grad(grad * self_mask)
            other.accumulate_grad(grad * (~self_mask))

        return Tensor.from_op(out_data, (self, other), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * (self.data > 0.0))

        return Tensor.from_op(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * np.where(self.data > 0.0, 1.0, negative_slope))

        return Tensor.from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * (1.0 - out_data ** 2))

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(g, self.data.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                expanded = np.broadcast_to(g, self.data.shape)
            self.accumulate_grad(expanded)

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, (tuple, list)):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is None:
                mask = self.data == self.data.max()
                count = mask.sum()
                self.accumulate_grad(np.broadcast_to(g, self.data.shape) * mask / count)
            else:
                full = self.data.max(axis=axis, keepdims=True)
                mask = self.data == full
                count = mask.sum(axis=axis, keepdims=True)
                if not keepdims:
                    g = np.expand_dims(g, axis)
                self.accumulate_grad(np.broadcast_to(g, self.data.shape) * mask / count)

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(np.asarray(grad).reshape(self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(np.asarray(grad).transpose(inverse))

        return Tensor.from_op(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self.accumulate_grad(full)

        return Tensor.from_op(out_data, (self,), backward)

    def pad2d(self, pad: int | tuple[int, int, int, int]) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions.

        ``pad`` is either a single int applied to all four sides or a tuple
        ``(top, bottom, left, right)``.
        """
        if isinstance(pad, int):
            top = bottom = left = right = pad
        else:
            top, bottom, left, right = pad
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(top, bottom), (left, right)]
        out_data = np.pad(self.data, pad_width)
        h, w = self.data.shape[-2], self.data.shape[-1]

        def backward(grad: np.ndarray) -> None:
            sl = [slice(None)] * (self.data.ndim - 2) + [slice(top, top + h), slice(left, left + w)]
            self.accumulate_grad(np.asarray(grad)[tuple(sl)])

        return Tensor.from_op(out_data, (self,), backward)

    @staticmethod
    def cat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, end)
                tensor.accumulate_grad(grad[tuple(sl)])

        return Tensor.from_op(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for i, tensor in enumerate(tensors):
                tensor.accumulate_grad(np.take(grad, i, axis=axis))

        return Tensor.from_op(out_data, tuple(tensors), backward)
