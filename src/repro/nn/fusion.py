"""Eval-mode operator-fusion compiler for the conv->BN->LeakyReLU hot path.

PR 2 profiling showed ~50% of model-forward time going to the per-sample
pad+pack in ``conv2d`` — the padded input is re-read k^2 times per conv and
re-padded between the two convolutions of every VGG block — while the
eval-mode conv -> batch-norm -> LeakyReLU chain makes three separate passes
over a working set that thrashes the single-core cache.  This module compiles
that chain away:

* :class:`FusedConvBNAct` — one fused op: a convolution whose weights/bias
  carry the folded eval-mode batch-norm affine, with the activation applied on
  the GEMM output tile while it is cache resident
  (:func:`repro.nn.functional.conv_bn_act`).
* :class:`FusedConvTranspose` — the transposed-conv mirror
  (:func:`repro.nn.functional.conv_transpose_bn_act`): one GEMM per sample
  against the precomputed ``(C_in, C_out*kh*kw)`` folded weight matrix plus a
  vectorized ``col2im`` scatter, so the decoder/upsampling half of a model
  (DOINN's ``dconv1-3``, the UNet up path) compiles into the same chains as
  its convolutions.
* :class:`FusedChain` — a straight-line sequence of fused ops sharing a
  **pad-once buffer cache**: each op emits its result directly inside the zero
  border the *next* op's padding needs, so consecutive same-geometry convs in
  a VGG block consume one padded buffer instead of re-padding (and the scratch
  buffers themselves are reused across calls of the same geometry).
* :func:`compile_model` — walks a :class:`~repro.nn.layers.Module` tree
  (``Sequential`` runs, the DOINN/UNet/FNO/DAMO blocks, bare ``Conv2d`` /
  ``ConvTranspose2d`` layers, and the method-level chains models declare via
  ``fusion_rewrites()``), folds every declared chain, and returns a
  :class:`FusedInferenceGraph`.

Transposed-conv fusion contract (the ``output_padding`` crop-fold):

A transposed convolution consumes its input **unpadded** — its ``padding``
hyper-parameter crops the scattered output instead of padding the input — so
inside a chain a ``FusedConvTranspose`` declares ``input_pad == 0`` (the
preceding op emits a borderless buffer) while still *emitting* its cropped
result inside the zero border the next conv's padding needs
(``output_padding``).  The crop is folded into that emission: the kernel
writes ``scattered[:, padding:-padding, padding:-padding]`` straight into the
interior of the next op's pre-zeroed entry buffer, so a ``dconv -> conv``
link (DOINN's ``dconvN -> vggN`` runs, the UNet bottleneck -> first-up chain)
costs neither a separate crop copy nor a re-pad — the pad-once /
``input_is_padded`` handshake extends through the whole decoder.
Overlapping transposed kernels (stride < k) additionally keep a per-geometry
scatter scratch in the chain's buffer cache; it is fully rewritten every
sample, so it carries no zero-border contract (and its cache key is
namespaced apart from the bordered buffers).

The compiled artifact is a **deep copy**: the source model's parameters,
buffers, train/eval flags and autograd behaviour are untouched (pinned by the
equivalence suite in ``tests/nn/test_fusion.py``), and the fold snapshots the
batch-norm running statistics at compile time — recompile after loading new
weights.  Fused graphs are inference only: running one in training mode or
under an autograd-tracked input raises.

Declaration protocol (the "fusion metadata" the layers/models expose):

``fusible_chain()``
    A module whose *entire* forward is a conv chain returns an ordered list of
    ``(conv, bn_or_None, activation_or_None)`` steps (``VGGBlock``, UNet's
    ``_DoubleConv``, DAMO's ``_ConvBlock``, a bare ``Conv2d``).
``fusion_rewrites()``
    A module whose forward is only *partially* a chain maps helper-method
    names to chain steps (e.g. DOINN's refine tail, the UNet/DAMO/FNO output
    heads); the compiler shadows each method with the fused kernel.
``fusion_refresh()``
    Called after a module's children were rewritten so cached child lists
    (e.g. ``UNet.encoders``) can be rebuilt.
``BatchNorm2d.fold_inference_affine()`` / ``*.fusion_activation()``
    Per-layer folding metadata consumed when a chain is built.
"""

from __future__ import annotations

import copy
import warnings

import numpy as np

from . import functional as F
from .backends import (
    FFT_MIN_KERNEL_AREA,
    BackendWorkspace,
    ComputeBackend,
    fft_conv_transpose_bn_act,
    get_backend,
)
from .layers import BatchNorm2d, Conv2d, ConvTranspose2d, Identity, Module, Sequential
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "FusedConvBNAct",
    "FusedConvTranspose",
    "FusedChain",
    "CompiledChain",
    "FusedInferenceGraph",
    "FusionFallbackWarning",
    "build_chain",
    "compile_model",
]


class FusionFallbackWarning(UserWarning):
    """A declared fusible chain could not be compiled; the module runs unfused.

    Raised as a *warning*, not an error: an unsupported layer mid-chain (an
    activation without fusion metadata, a BatchNorm whose width does not
    match, a layer that is neither a conv nor a transposed conv) silently
    degrading to unfused execution is exactly the failure mode this
    surfaces.  ``module_path`` names the offending module inside the
    compiled copy (e.g. ``"DOINN.reconstruction"``), ``reason`` carries the
    chain-construction error.  The same ``(module_path, reason)`` pairs are
    recorded on :attr:`FusedInferenceGraph.fallbacks` for programmatic checks.
    """

    def __init__(self, module_path: str, reason: str) -> None:
        super().__init__(
            f"cannot fuse {module_path}: {reason}; the module falls back to "
            "unfused execution"
        )
        self.module_path = module_path
        self.reason = reason


# ---------------------------------------------------------------------- #
# Fused ops and chains
# ---------------------------------------------------------------------- #
class FusedConvBNAct:
    """One fused inference op: conv + folded BN affine + activation.

    ``weight``/``bias`` already carry the batch-norm fold; ``activation`` is
    one of :data:`repro.nn.functional.FUSED_ACTIVATIONS`.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int = 1,
        padding: int = 0,
        activation: str = "identity",
        negative_slope: float = 0.0,
        label: str = "",
    ) -> None:
        if activation not in F.FUSED_ACTIVATIONS:
            raise ValueError(f"unknown fused activation {activation!r}")
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias)
        if self.weight.ndim != 4:
            raise ValueError(f"fused conv weight must be 4-D, got shape {self.weight.shape}")
        self.stride = int(stride)
        self.padding = int(padding)
        self.activation = activation
        self.negative_slope = float(negative_slope)
        self.label = label

    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    @property
    def kernel_size(self) -> tuple[int, int]:
        return self.weight.shape[2], self.weight.shape[3]

    # -- chain-op interface (shared with FusedConvTranspose) ------------- #
    @property
    def input_pad(self) -> int:
        """Zero-border width this op wants its input buffer to carry."""
        return self.padding

    def output_shape(self, input_shape: tuple, output_padding: int) -> tuple:
        """Output buffer shape for an input buffer that carries ``input_pad``."""
        n, _, hp, wp = input_shape
        kh, kw = self.kernel_size
        h_out = (hp - kh) // self.stride + 1
        w_out = (wp - kw) // self.stride + 1
        return (n, self.out_channels, h_out + 2 * output_padding, w_out + 2 * output_padding)

    def scratch_shape(self, input_shape: tuple, backend: ComputeBackend | None = None):
        """Per-sample scatter scratch this op needs (convolutions need none)."""
        return None

    def gemm_shape(
        self, input_shape: tuple, output_padding: int, backend: ComputeBackend | None = None
    ):
        """GEMM scratch this op needs from the chain's buffer cache.

        The stacked-BLAS lane lands the whole batch in one ``(N*L, C_out)``
        result; the bordered per-sample path (``output_padding > 0``) lands
        each sample's ``(C_out, L)`` tile in scratch before the strided copy
        into the zero-bordered output.  The borderless per-sample default
        GEMMs straight into the output buffer and needs none.
        """
        n, _, hp, wp = input_shape
        kh, kw = self.kernel_size
        h_out = (hp - kh) // self.stride + 1
        w_out = (wp - kw) // self.stride + 1
        length = h_out * w_out
        if backend is not None and backend.stacked_gemm:
            return (n * length, self.out_channels)
        if output_padding:
            return (self.out_channels, length)
        return None

    def apply(
        self,
        buf,
        out=None,
        output_padding: int = 0,
        scratch=None,
        gemm=None,
        backend: ComputeBackend | None = None,
        workspace: BackendWorkspace | None = None,
    ):
        return F.conv_bn_act(
            buf,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            activation=self.activation,
            negative_slope=self.negative_slope,
            input_is_padded=True,
            output_padding=output_padding,
            out=out,
            gemm=gemm,
            stacked=backend is not None and backend.stacked_gemm,
        )

    @classmethod
    def from_modules(cls, conv: Conv2d, bn: BatchNorm2d | None = None, act=None) -> "FusedConvBNAct":
        """Fold one declared ``(conv, bn, activation)`` step into a fused op."""
        if not isinstance(conv, Conv2d):
            raise TypeError(
                f"fused chain steps start from Conv2d or ConvTranspose2d layers, "
                f"got {type(conv).__name__}"
            )
        weight, bias = _fold_bn(conv, bn, channel_axis=0)
        activation, slope = _fusion_activation(act)
        return cls(
            weight,
            bias,
            stride=conv.stride,
            padding=conv.padding,
            activation=activation,
            negative_slope=slope,
            label=f"conv{'+bn' if bn is not None else ''}{'+' + activation if act is not None else ''}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c_out, c_in, kh, kw = self.weight.shape
        return (
            f"FusedConvBNAct({c_in}->{c_out}, k={kh}x{kw}, s={self.stride}, "
            f"p={self.padding}, act={self.activation})"
        )


def _fold_bn(layer, bn: BatchNorm2d | None, channel_axis: int) -> tuple[np.ndarray, np.ndarray | None]:
    """Fold an eval-mode BatchNorm affine into a (de)conv's weight and bias.

    ``channel_axis`` locates the output-channel axis of the weight layout:
    0 for ``Conv2d`` (``(C_out, C_in, kh, kw)``), 1 for ``ConvTranspose2d``
    (``(C_in, C_out, kh, kw)``).
    """
    weight = layer.weight.data
    bias = None if layer.bias is None else layer.bias.data
    if bn is None:
        return weight, bias
    if not isinstance(bn, BatchNorm2d):
        raise TypeError(f"expected BatchNorm2d after conv, got {type(bn).__name__}")
    if bn.num_features != layer.out_channels:
        raise ValueError(
            f"cannot fold BatchNorm2d({bn.num_features}) into {type(layer).__name__} "
            f"with {layer.out_channels} output channels"
        )
    scale, shift = bn.fold_inference_affine()
    expand = [None] * weight.ndim
    expand[channel_axis] = slice(None)
    weight = weight * scale[tuple(expand)]
    bias = shift if bias is None else bias * scale + shift
    return weight, bias


def _fusion_activation(act) -> tuple[str, float]:
    if act is None:
        return "identity", 0.0
    fusion_activation = getattr(act, "fusion_activation", None)
    if fusion_activation is None:
        raise TypeError(f"{type(act).__name__} declares no fusion_activation()")
    return fusion_activation()


class FusedConvTranspose:
    """One fused inference op: transposed conv + folded BN affine + activation.

    ``weight`` is the PyTorch transposed layout ``(C_in, C_out, kh, kw)``
    with the batch-norm fold already applied along the output-channel axis;
    execution is :func:`repro.nn.functional.conv_transpose_bn_act` (one GEMM
    per sample against the ``(C_in, C_out*kh*kw)`` weight matrix plus a
    vectorized scatter).  Inside a :class:`FusedChain` it consumes its input
    borderless (``input_pad == 0`` — a transposed conv's ``padding`` crops
    the output instead of padding the input) and emits the cropped result
    inside the next op's zero border.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int = 1,
        padding: int = 0,
        activation: str = "identity",
        negative_slope: float = 0.0,
        label: str = "",
    ) -> None:
        if activation not in F.FUSED_ACTIVATIONS:
            raise ValueError(f"unknown fused activation {activation!r}")
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias)
        if self.weight.ndim != 4:
            raise ValueError(f"fused deconv weight must be 4-D, got shape {self.weight.shape}")
        self.stride = int(stride)
        self.padding = int(padding)
        self.activation = activation
        self.negative_slope = float(negative_slope)
        self.label = label

    #: A transposed conv consumes unpadded input; ``padding`` crops its output.
    input_pad = 0

    @property
    def out_channels(self) -> int:
        return self.weight.shape[1]

    @property
    def kernel_size(self) -> tuple[int, int]:
        return self.weight.shape[2], self.weight.shape[3]

    def output_shape(self, input_shape: tuple, output_padding: int) -> tuple:
        n, _, h, w = input_shape
        kh, kw = self.kernel_size
        h_out = (h - 1) * self.stride - 2 * self.padding + kh
        w_out = (w - 1) * self.stride - 2 * self.padding + kw
        return (n, self.out_channels, h_out + 2 * output_padding, w_out + 2 * output_padding)

    def _uses_fft(self, backend: ComputeBackend | None) -> bool:
        """FFT-domain lane engages on large kernels only (area >= threshold);
        small up-convs stay on the direct scatter path where the strided
        assignment is already cheaper than three FFTs."""
        kh, kw = self.kernel_size
        return backend is not None and backend.fft_deconv and kh * kw >= FFT_MIN_KERNEL_AREA

    def scratch_shape(self, input_shape: tuple, backend: ComputeBackend | None = None):
        """Per-sample scatter image for overlapping/cropped kernels.

        The non-overlapping crop-free fast path (``stride == kh == kw``,
        ``padding == 0`` — the UNet up path) scatters straight into the
        output buffer and needs no scratch; the FFT-domain lane keeps its
        own scratch in the chain's :class:`BackendWorkspace`.
        """
        if self._uses_fft(backend):
            return None
        kh, kw = self.kernel_size
        if self.padding == 0 and self.stride == kh and self.stride == kw:
            return None
        _, c_out, h_out, w_out = self.output_shape(input_shape, 0)
        return (c_out, h_out + 2 * self.padding, w_out + 2 * self.padding)

    def gemm_shape(
        self, input_shape: tuple, output_padding: int, backend: ComputeBackend | None = None
    ):
        """Transposed convs GEMM against the flattened input — no scratch."""
        return None

    def apply(
        self,
        buf,
        out=None,
        output_padding: int = 0,
        scratch=None,
        gemm=None,
        backend: ComputeBackend | None = None,
        workspace: BackendWorkspace | None = None,
    ):
        if self._uses_fft(backend):
            return fft_conv_transpose_bn_act(
                buf,
                self.weight,
                self.bias,
                stride=self.stride,
                padding=self.padding,
                activation=self.activation,
                negative_slope=self.negative_slope,
                output_padding=output_padding,
                out=out,
                workspace=workspace,
            )
        return F.conv_transpose_bn_act(
            buf,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            activation=self.activation,
            negative_slope=self.negative_slope,
            output_padding=output_padding,
            out=out,
            scatter=scratch,
        )

    @classmethod
    def from_modules(
        cls, deconv: ConvTranspose2d, bn: BatchNorm2d | None = None, act=None
    ) -> "FusedConvTranspose":
        """Fold one declared ``(deconv, bn, activation)`` step into a fused op."""
        if not isinstance(deconv, ConvTranspose2d):
            raise TypeError(
                f"FusedConvTranspose folds ConvTranspose2d layers, got {type(deconv).__name__}"
            )
        weight, bias = _fold_bn(deconv, bn, channel_axis=1)
        activation, slope = _fusion_activation(act)
        return cls(
            weight,
            bias,
            stride=deconv.stride,
            padding=deconv.padding,
            activation=activation,
            negative_slope=slope,
            label=f"dconv{'+bn' if bn is not None else ''}{'+' + activation if act is not None else ''}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c_in, c_out, kh, kw = self.weight.shape
        return (
            f"FusedConvTranspose({c_in}->{c_out}, k={kh}x{kw}, s={self.stride}, "
            f"p={self.padding}, act={self.activation})"
        )


class FusedChain:
    """A straight-line sequence of fused ops with a pad-once buffer cache.

    Every op emits its output inside the zero border the next op's
    ``input_pad`` requires (transposed convs request a borderless input and
    fold their output crop into the emission), so the chain pads exactly once
    (on entry) no matter how many operations it contains.  Intermediate
    buffers (and the entry pad buffer) are cached per geometry and reused
    across calls — their borders are zeroed once at allocation and never
    written again; only the final op allocates a fresh array, which is handed
    to the caller.  Cache keys are namespaced by buffer family (``"in"`` /
    ``"out"`` / ``"scatter"``) *and* carry the full shape including the batch
    dimension, so one compiled engine serving interleaved batch sizes (the
    ragged final shards of a streamed tile sweep) can never hand a buffer of
    one geometry to a call of another.
    """

    #: Cached working buffers per chain before the oldest entry is evicted —
    #: bounds resident memory when a long-lived graph serves many distinct
    #: geometries (batch remainders, varying tile sizes) while keeping the
    #: steady-state reuse of typical workloads (a few geometries per chain).
    MAX_CACHED_BUFFERS = 32

    #: Compute backend the chain runs under (None = the float64 default
    #: path); set by :meth:`convert`.  Class-level so chains pickled before
    #: the backend attribute existed keep working.
    backend: ComputeBackend | None = None

    def __init__(self, ops, label: str = "", backend: ComputeBackend | None = None) -> None:
        self.ops: list = list(ops)  # FusedConvBNAct | FusedConvTranspose
        if not self.ops:
            raise ValueError("a fused chain needs at least one op")
        self.label = label
        self.backend = backend
        self._scratch: dict = {}
        self._workspace = BackendWorkspace()

    def __len__(self) -> int:
        return len(self.ops)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_scratch"] = {}  # per-process working buffers, never shipped
        return state

    # -- backend conversion --------------------------------------------- #
    def convert(self, backend: ComputeBackend) -> None:
        """Switch the chain to ``backend``, casting folded weights in place.

        ``astype(copy=False)`` keeps same-dtype conversions (float64 <->
        blas <-> fft) free; the scratch cache is dropped because its keyed
        dtypes may no longer match.  Precision narrowing is one-way — the
        graph-level :meth:`FusedInferenceGraph.convert` guards against
        widening a narrowed graph.
        """
        dtype = backend.dtype
        for op in self.ops:
            op.weight = op.weight.astype(dtype, copy=False)
            if op.bias is not None:
                op.bias = op.bias.astype(dtype, copy=False)
        self.backend = backend
        self._scratch = {}
        self._workspace = BackendWorkspace()

    # -- buffer cache --------------------------------------------------- #
    def _cached_zeros(self, key: tuple, shape: tuple, dtype) -> np.ndarray:
        """A zero-bordered scratch buffer, reused across same-geometry calls.

        Only the interior of a cached buffer is ever rewritten, so the border
        stays zero from the one allocation.  Once :data:`MAX_CACHED_BUFFERS`
        distinct geometries accumulate, only the least-recently-used entry
        is evicted (hits refresh recency), so the steady-state buffers of an
        alternating-geometry workload survive a stream of one-off shapes
        instead of the whole cache thrashing.  Buffers still referenced by
        an in-flight run stay alive through their local references;
        re-allocated ones start zeroed again.
        """
        buf = self._scratch.get(key)
        if buf is None:
            while len(self._scratch) >= self.MAX_CACHED_BUFFERS:
                self._scratch.pop(next(iter(self._scratch)))
            buf = np.zeros(shape, dtype=dtype)
        else:
            del self._scratch[key]  # re-insert below: dict order is recency
        self._scratch[key] = buf
        return buf

    def _padded_input(self, x: np.ndarray, pad: int, dtype=None) -> np.ndarray:
        n, c, h, w = x.shape
        target = x.dtype if dtype is None else np.dtype(dtype)
        key = ("in", n, c, h, w, pad, target.str)
        buf = self._cached_zeros(key, (n, c, h + 2 * pad, w + 2 * pad), target)
        buf[:, :, pad : pad + h, pad : pad + w] = x  # casts to the lane dtype
        return buf

    def _output_buffer(self, index: int, shape: tuple, dtype) -> np.ndarray:
        return self._cached_zeros(("out", index, shape, np.dtype(dtype).str), shape, dtype)

    def _scatter_buffer(self, index: int, shape: tuple, dtype) -> np.ndarray:
        # Scatter scratch is fully rewritten per sample — it shares the cache
        # for reuse/bounding but has no zero-border contract; its "scatter"
        # namespace keeps it from ever aliasing a bordered "out" buffer of
        # the same op index and coincidentally equal shape.
        return self._cached_zeros(("scatter", index, shape, np.dtype(dtype).str), shape, dtype)

    def _gemm_buffer(self, index: int, shape: tuple, dtype) -> np.ndarray:
        # GEMM scratch (bordered conv tiles, stacked-BLAS results) is fully
        # rewritten every call; like "scatter" it has no zero-border contract
        # and its own namespace.
        return self._cached_zeros(("gemm", index, shape, np.dtype(dtype).str), shape, dtype)

    # -- execution ------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """Run the chain on an ndarray batch ``(N, C, H, W)`` (inference only)."""
        ops = self.ops
        backend = self.backend
        entry_pad = ops[0].input_pad
        x = np.asarray(x)
        target = None if backend is None else backend.dtype
        if entry_pad:
            buf = self._padded_input(x, entry_pad, dtype=target)
        elif target is not None and x.dtype != target:
            # Borderless entry into a non-native lane: one cached cast buffer
            # (the float32 lane's only extra copy over the float64 path).
            n, c, h, w = x.shape
            buf = self._cached_zeros(("in", n, c, h, w, 0, target.str), x.shape, target)
            buf[...] = x
        else:
            buf = x
        workspace = self._workspace
        for index, op in enumerate(ops):
            nxt = ops[index + 1] if index + 1 < len(ops) else None
            out_pad = nxt.input_pad if nxt is not None else 0
            dtype = np.result_type(buf, op.weight)
            out = None
            if nxt is not None:
                out = self._output_buffer(index, op.output_shape(buf.shape, out_pad), dtype)
            scratch_shape = op.scratch_shape(buf.shape, backend=backend)
            scratch = (
                self._scatter_buffer(index, scratch_shape, dtype)
                if scratch_shape is not None
                else None
            )
            gemm_shape = op.gemm_shape(buf.shape, out_pad, backend=backend)
            gemm = (
                self._gemm_buffer(index, gemm_shape, dtype)
                if gemm_shape is not None
                else None
            )
            buf = op.apply(
                buf,
                out=out,
                output_padding=out_pad,
                scratch=scratch,
                gemm=gemm,
                backend=backend,
                workspace=workspace,
            )
        return buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FusedChain({self.label or 'chain'}, ops={len(self.ops)})"


def _normalize_steps(steps) -> list[tuple]:
    normalized = []
    for step in steps:
        if isinstance(step, (tuple, list)):
            conv, bn, act = (tuple(step) + (None, None))[:3]
        else:
            conv, bn, act = step, None, None
        normalized.append((conv, bn, act))
    return normalized


def _fuse_step(conv, bn, act):
    """Fold one chain step, dispatching on the conv family."""
    if isinstance(conv, ConvTranspose2d):
        return FusedConvTranspose.from_modules(conv, bn, act)
    return FusedConvBNAct.from_modules(conv, bn, act)


def build_chain(steps, label: str = "") -> FusedChain:
    """Fold declared ``(conv, bn, activation)`` steps into a :class:`FusedChain`.

    The conv element of a step may be a :class:`~repro.nn.layers.Conv2d` or a
    :class:`~repro.nn.layers.ConvTranspose2d`; chains may mix both freely
    (e.g. DOINN's ``dconvN -> vggN`` decoder runs).
    """
    normalized = _normalize_steps(steps)
    ops = [_fuse_step(conv, bn, act) for conv, bn, act in normalized]
    return FusedChain(ops, label=label)


# ---------------------------------------------------------------------- #
# Module-tree rewriting
# ---------------------------------------------------------------------- #
def _check_inference(training: bool, x) -> None:
    if training:
        raise RuntimeError(
            "fused inference graphs run in eval mode only (the batch-norm fold "
            "snapshots running statistics); call .eval() or recompile"
        )
    if is_grad_enabled() and isinstance(x, Tensor) and x.requires_grad:
        raise RuntimeError(
            "fused inference graphs do not build an autograd graph; run them "
            "under repro.nn.no_grad() (training forwards use the unfused model)"
        )


class CompiledChain(Module):
    """A module whose forward is one :class:`FusedChain` (inference only)."""

    def __init__(self, chain: FusedChain, source: str = "") -> None:
        super().__init__()
        self.chain = chain
        self.source = source
        self.training = False

    def forward(self, x: Tensor) -> Tensor:
        _check_inference(self.training, x)
        return Tensor(self.chain.run(x.data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledChain({self.source or self.chain.label}, ops={len(self.chain)})"


class _FusedMethod:
    """Picklable callable installed as an instance attribute by a
    ``fusion_rewrites()`` declaration, shadowing the eval-path helper method
    it replaces on the compiled copy."""

    def __init__(self, chain: FusedChain, owner: Module) -> None:
        self.chain = chain
        self.owner = owner

    def __call__(self, x: Tensor) -> Tensor:
        _check_inference(self.owner.training, x)
        return Tensor(self.chain.run(x.data))


def _rewrite_sequential(seq: Sequential, chains: list, consumed: set) -> None:
    """Fuse maximal ``(Conv2d|ConvTranspose2d) [-> BatchNorm2d] [-> act]`` runs.

    The first position of a run becomes a :class:`CompiledChain`; the
    remaining positions become :class:`~repro.nn.layers.Identity` so the
    Sequential's order (and train/eval walking) is preserved.
    """
    names = list(seq._order)
    mods = [getattr(seq, name) for name in names]
    runs: list[dict] = []
    current: dict | None = None
    i = 0
    while i < len(mods):
        module = mods[i]
        if isinstance(module, (Conv2d, ConvTranspose2d)) and id(module) not in consumed:
            bn = act = None
            j = i + 1
            if j < len(mods) and isinstance(mods[j], BatchNorm2d) and mods[j].num_features == module.out_channels:
                bn = mods[j]
                j += 1
            if (
                j < len(mods)
                and not isinstance(mods[j], (Conv2d, ConvTranspose2d))
                and getattr(mods[j], "fusion_activation", None) is not None
            ):
                act = mods[j]
                j += 1
            step = (module, bn, act)
            indices = list(range(i, j))
            if current is not None and current["end"] == i:
                current["steps"].append(step)
                current["indices"].extend(indices)
                current["end"] = j
            else:
                current = {"start": i, "end": j, "steps": [step], "indices": indices}
                runs.append(current)
            i = j
        else:
            current = None
            i += 1
    for run in runs:
        chain = build_chain(run["steps"], label=f"Sequential[{run['start']}:{run['end']}]")
        chains.append(chain)
        consumed.update(id(conv) for conv, _, _ in run["steps"])
        for index in run["indices"]:
            if index == run["start"]:
                setattr(seq, names[index], CompiledChain(chain, source="Sequential"))
            else:
                setattr(seq, names[index], Identity())


def _try_build_chain(steps, label: str, path: str, fallbacks: list) -> FusedChain | None:
    """Build a declared chain, degrading to a warned fallback on failure.

    A chain broken by an unsupported layer mid-chain (a transposed conv, a
    BatchNorm whose width does not match, ...) must neither crash the compile
    nor vanish silently: the module keeps its original unfused implementation
    and a :class:`FusionFallbackWarning` names the module path and the reason.
    """
    try:
        return build_chain(steps, label=label)
    except (TypeError, ValueError) as exc:
        fallbacks.append((path, str(exc)))
        warnings.warn(FusionFallbackWarning(path, str(exc)), stacklevel=3)
        return None


def _rewrite_tree(module: Module, chains: list, consumed: set, path: str, fallbacks: list) -> None:
    rewrites = getattr(module, "fusion_rewrites", None)
    if rewrites is not None:
        for method_name, steps in rewrites().items():
            steps = _normalize_steps(steps)
            chain = _try_build_chain(
                steps,
                f"{type(module).__name__}.{method_name}",
                f"{path}.{method_name}",
                fallbacks,
            )
            if chain is None:
                continue  # the method keeps its original unfused implementation
            object.__setattr__(module, method_name, _FusedMethod(chain, module))
            consumed.update(id(conv) for conv, _, _ in steps)
            chains.append(chain)
    if isinstance(module, Sequential):
        _rewrite_sequential(module, chains, consumed)
    for name, child in list(module._modules.items()):
        if isinstance(child, (CompiledChain, Identity)):
            continue
        child_path = f"{path}.{name}"
        declared = getattr(child, "fusible_chain", None)
        if declared is not None:
            steps = _normalize_steps(declared())
            if all(id(conv) in consumed for conv, _, _ in steps):
                continue  # already folded into a parent-level rewrite
            chain = _try_build_chain(steps, type(child).__name__, child_path, fallbacks)
            if chain is None:
                # Salvage what the broken declaration hid: grandchildren may
                # still declare healthy chains of their own.
                _rewrite_tree(child, chains, consumed, child_path, fallbacks)
                continue
            consumed.update(id(conv) for conv, _, _ in steps)
            chains.append(chain)
            setattr(module, name, CompiledChain(chain, source=type(child).__name__))
        else:
            _rewrite_tree(child, chains, consumed, child_path, fallbacks)
    refresh = getattr(module, "fusion_refresh", None)
    if refresh is not None:
        refresh()


class FusedInferenceGraph(Module):
    """The compiled artifact: a rewritten model copy plus its fused chains.

    Behaves as a drop-in eval-mode :class:`~repro.nn.layers.Module` — the
    DOINN path hooks (``global_perception`` / ``local_perception`` /
    ``reconstruction`` / ``config``) proxy into the rewritten copy, so the
    large-tile stitching plan and the worker pool compose with a compiled
    engine exactly as with a raw model.
    """

    def __init__(
        self,
        module: Module,
        chains: list[FusedChain],
        source_name: str,
        fallbacks: list[tuple[str, str]] | None = None,
    ) -> None:
        super().__init__()
        self.module = module
        self.chains = list(chains)
        self.source_name = source_name
        #: ``(module_path, reason)`` for every declared chain that could not
        #: be compiled and fell back to unfused execution (each one also
        #: raised a :class:`FusionFallbackWarning` at compile time).
        self.fallbacks = list(fallbacks or [])
        self.eval()

    #: Compute backend the graph's chains run under (None = the float64
    #: default); set by :meth:`convert`.  Class-level for forward/backward
    #: pickle compatibility.
    backend: ComputeBackend | None = None

    def forward(self, x: Tensor) -> Tensor:
        return self.module(x)

    def convert(self, backend) -> "FusedInferenceGraph":
        """Switch every fused chain to ``backend`` (name or instance), in place.

        Same-dtype lane changes (float64 <-> blas <-> fft) are free and
        reversible.  Narrowing to float32 casts the folded weights in place;
        once narrowed, converting to a wider-dtype lane raises — the lost
        precision cannot be recovered, recompile from the source model.
        """
        backend = get_backend(backend)
        current = self.backend
        if (
            current is not None
            and current.dtype != backend.dtype
            and current.dtype.itemsize < backend.dtype.itemsize
        ):
            raise ValueError(
                f"cannot convert a {current.name} graph to the {backend.name} backend: "
                f"the folded weights were already narrowed to {current.dtype}; "
                "recompile from the source model instead"
            )
        for chain in self.chains:
            chain.convert(backend)
        self.backend = backend
        return self

    @property
    def num_fused_ops(self) -> int:
        return sum(len(chain) for chain in self.chains)

    # -- DOINN stitching-path proxies (AttributeError when absent, so
    #    hasattr-based capability checks see exactly the wrapped model) ---- #
    @property
    def config(self):
        return self.module.config

    @property
    def global_perception(self):
        return self.module.global_perception

    @property
    def local_perception(self):
        return self.module.local_perception

    @property
    def reconstruction(self):
        return self.module.reconstruction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FusedInferenceGraph({self.source_name}, chains={len(self.chains)}, "
            f"fused_ops={self.num_fused_ops})"
        )


def compile_model(model: Module, backend=None) -> FusedInferenceGraph:
    """Compile a model into an eval-mode :class:`FusedInferenceGraph`.

    The source model is deep-copied first and never mutated: its parameters,
    buffers and training behaviour stay exactly as they were (the equivalence
    suite pins both directions).  The fold snapshots the current weights and
    batch-norm running statistics — recompile after ``load_state_dict``.

    ``backend`` (a name or :class:`~repro.nn.backends.ComputeBackend`)
    converts the compiled graph onto that compute lane.  Deliberately an
    explicit argument only — ``compile_model`` never consults
    ``REPRO_BACKEND`` (the pipeline/executor layer resolves the env var), so
    direct compiles stay deterministic under any environment.
    """
    if isinstance(model, FusedInferenceGraph):
        if backend is not None:
            model.convert(backend)
        return model
    if not isinstance(model, Module):
        raise TypeError(f"compile_model expects an nn.Module, got {type(model).__name__}")
    source_name = type(model).__name__
    rewritten = copy.deepcopy(model)
    chains: list[FusedChain] = []
    consumed: set[int] = set()
    fallbacks: list[tuple[str, str]] = []
    declared = getattr(rewritten, "fusible_chain", None)
    chain = (
        _try_build_chain(_normalize_steps(declared()), source_name, source_name, fallbacks)
        if declared is not None
        else None
    )
    if chain is not None:
        chains.append(chain)
        rewritten = CompiledChain(chain, source=source_name)
    else:
        _rewrite_tree(rewritten, chains, consumed, source_name, fallbacks)
    graph = FusedInferenceGraph(rewritten, chains, source_name, fallbacks=fallbacks)
    if backend is not None:
        graph.convert(backend)
    return graph
