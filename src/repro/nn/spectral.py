"""Differentiable spectral (Fourier-domain) operations.

These primitives implement the frequency-domain computation at the heart of
the paper:

* :func:`fourier_unit` — the **Optimized Fourier Unit** of DOINN
  (paper eq. (11)):  FFT of the (pooled) mask, truncation to the ``k`` lowest
  frequency modes, complex channel lifting, per-mode complex mixing, inverse
  FFT back to the spatial domain.
* :func:`spectral_conv2d` — the spectral convolution used inside a *baseline*
  FNO Fourier layer (paper eq. (10)), where gradients must also flow through
  the FFT of the layer input because Fourier units are stacked.

Complex weights are stored as real tensors with a trailing dimension of size
two ``(..., 2)`` holding the real and imaginary parts, so the rest of the
framework (optimizers, serialization) never has to deal with complex dtypes.
The backward passes are derived analytically (adjoint of the DFT plus the
product rule for complex multiplications) and are validated against finite
differences in ``tests/nn/test_spectral.py``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .tensor import Tensor

__all__ = [
    "truncation_indices",
    "truncate_spectrum",
    "scatter_spectrum",
    "fourier_unit",
    "spectral_conv2d",
]


@lru_cache(maxsize=None)
def _truncation_mesh(height: int, width: int, modes: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoized broadcastable index mesh of the retained low-frequency block.

    Every Fourier-unit forward *and* backward gathers/scatters the same
    ``(2*modes) x (2*modes)`` block for a given spectrum size, so the index
    arrays are built once per ``(H, W, modes)`` and reused across all calls
    (the repeated-inference hot path of the pipeline).  The cached arrays are
    marked read-only so no caller can corrupt the shared copy.
    """
    if 2 * modes > height or 2 * modes > width:
        raise ValueError(
            f"modes={modes} too large for spectrum of size {(height, width)}; "
            f"need 2*modes <= min(H, W)"
        )
    rows = np.concatenate([np.arange(0, modes), np.arange(height - modes, height)])
    cols = np.concatenate([np.arange(0, modes), np.arange(width - modes, width)])
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


def truncation_indices(height: int, width: int, modes: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the ``modes`` lowest frequencies kept by truncation.

    Following the FNO convention, the lowest ``modes`` non-negative and
    ``modes`` negative frequencies are kept along each axis, giving a
    ``(2 * modes) x (2 * modes)`` retained block.  Results are cached per
    ``(height, width, modes)`` and returned read-only.
    """
    return _truncation_mesh(height, width, modes)


def truncate_spectrum(spectrum: np.ndarray, modes: int) -> np.ndarray:
    """Keep only the lowest-frequency block of a full 2-D spectrum."""
    rows, cols = _truncation_mesh(spectrum.shape[-2], spectrum.shape[-1], modes)
    return spectrum[..., rows[:, None], cols[None, :]]


def scatter_spectrum(block: np.ndarray, height: int, width: int, modes: int) -> np.ndarray:
    """Adjoint of :func:`truncate_spectrum`: embed a block into a zero spectrum."""
    rows, cols = _truncation_mesh(height, width, modes)
    full_shape = block.shape[:-2] + (height, width)
    full = np.zeros(full_shape, dtype=block.dtype)
    full[..., rows[:, None], cols[None, :]] = block
    return full


def _as_complex(weight: np.ndarray) -> np.ndarray:
    """View an ``(..., 2)`` real weight as a complex array."""
    return weight[..., 0] + 1j * weight[..., 1]


def _as_pair(value: np.ndarray) -> np.ndarray:
    """Stack a complex array into an ``(..., 2)`` real array."""
    return np.stack([value.real, value.imag], axis=-1)


def fourier_unit(
    x: Tensor,
    lift_weight: Tensor,
    mix_weight: Tensor,
    modes: int,
) -> Tensor:
    """Optimized Fourier Unit of DOINN (paper eq. (11)), without activation.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)`` (for DOINN ``C_in`` is 1: the
        average-pooled mask).
    lift_weight:
        Channel-lift weights of shape ``(C_in, C_out, 2)`` (complex, stored as
        a real/imaginary pair).  This is ``W_P`` in the paper.
    mix_weight:
        Per-mode mixing weights of shape ``(C_out, C_out, 2*modes, 2*modes, 2)``.
        This is ``W_R`` in the paper.
    modes:
        Number of low-frequency modes kept per axis (the paper keeps 50).

    Returns
    -------
    Real tensor of shape ``(N, C_out, H, W)``.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, _ = lift_weight.shape
    if c_in != c_in_w:
        raise ValueError(f"fourier_unit: input has {c_in} channels, lift weight expects {c_in_w}")
    mh, mw = mix_weight.shape[2], mix_weight.shape[3]
    if mh != 2 * modes or mw != 2 * modes:
        raise ValueError(
            f"fourier_unit: mix weight spatial shape {(mh, mw)} does not match 2*modes={2 * modes}"
        )

    wp = _as_complex(lift_weight.data)                       # (C_in, C_out)
    wr = _as_complex(mix_weight.data)                        # (C_out, C_out, mh, mw)

    spectrum = np.fft.fft2(x.data, axes=(-2, -1))
    x_hat = truncate_spectrum(spectrum, modes)               # (N, C_in, mh, mw)
    lifted = np.einsum("bixy,io->boxy", x_hat, wp)           # (N, C_out, mh, mw)
    mixed = np.einsum("bixy,ioxy->boxy", lifted, wr)         # (N, C_out, mh, mw)
    full = scatter_spectrum(mixed, h, w, modes)
    out = np.fft.ifft2(full, axes=(-2, -1)).real             # (N, C_out, H, W)

    def backward(grad: np.ndarray) -> None:
        # Adjoint of "take the real part of an inverse FFT" is a forward FFT
        # scaled by 1/(H*W); see DESIGN.md (spectral adjoints).
        grad_full = np.fft.fft2(grad, axes=(-2, -1)) / (h * w)
        grad_mixed = truncate_spectrum(grad_full, modes)     # (N, C_out, mh, mw)
        if mix_weight.requires_grad:
            grad_wr = np.einsum("boxy,bixy->ioxy", grad_mixed, np.conj(lifted))
            mix_weight.accumulate_grad(_as_pair(grad_wr))
        grad_lifted = np.einsum("boxy,ioxy->bixy", grad_mixed, np.conj(wr))
        if lift_weight.requires_grad:
            grad_wp = np.einsum("boxy,bixy->io", grad_lifted, np.conj(x_hat))
            lift_weight.accumulate_grad(_as_pair(grad_wp))
        if x.requires_grad:
            grad_hat = np.einsum("boxy,io->bixy", grad_lifted, np.conj(wp))
            grad_spectrum = scatter_spectrum(grad_hat, h, w, modes)
            grad_x = (h * w) * np.fft.ifft2(grad_spectrum, axes=(-2, -1)).real
            x.accumulate_grad(grad_x)

    return Tensor.from_op(out, (x, lift_weight, mix_weight), backward)


def spectral_conv2d(x: Tensor, mix_weight: Tensor, modes: int) -> Tensor:
    """Spectral convolution of a baseline FNO Fourier layer (paper eq. (10)).

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``; gradients flow through its FFT so
        Fourier layers can be stacked.
    mix_weight:
        Weights of shape ``(C_in, C_out, 2*modes, 2*modes, 2)``.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out = mix_weight.shape[0], mix_weight.shape[1]
    if c_in != c_in_w:
        raise ValueError(f"spectral_conv2d: input has {c_in} channels, weight expects {c_in_w}")

    wr = _as_complex(mix_weight.data)                        # (C_in, C_out, mh, mw)
    spectrum = np.fft.fft2(x.data, axes=(-2, -1))
    x_hat = truncate_spectrum(spectrum, modes)               # (N, C_in, mh, mw)
    mixed = np.einsum("bixy,ioxy->boxy", x_hat, wr)          # (N, C_out, mh, mw)
    full = scatter_spectrum(mixed, h, w, modes)
    out = np.fft.ifft2(full, axes=(-2, -1)).real

    def backward(grad: np.ndarray) -> None:
        grad_full = np.fft.fft2(grad, axes=(-2, -1)) / (h * w)
        grad_mixed = truncate_spectrum(grad_full, modes)
        if mix_weight.requires_grad:
            grad_wr = np.einsum("boxy,bixy->ioxy", grad_mixed, np.conj(x_hat))
            mix_weight.accumulate_grad(_as_pair(grad_wr))
        if x.requires_grad:
            grad_hat = np.einsum("boxy,ioxy->bixy", grad_mixed, np.conj(wr))
            grad_spectrum = scatter_spectrum(grad_hat, h, w, modes)
            grad_x = (h * w) * np.fft.ifft2(grad_spectrum, axes=(-2, -1)).real
            x.accumulate_grad(grad_x)

    return Tensor.from_op(out, (x, mix_weight), backward)
