"""Neural-network layers (modules) built on the autograd tensor.

The module system follows PyTorch's ``nn.Module`` conventions closely so the
model definitions in :mod:`repro.core` map one-to-one onto the architecture
tables in the paper's appendix (Tables 5-7).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .spectral import fourier_unit, spectral_conv2d
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "eval_mode",
    "Sequential",
    "Identity",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "UpsampleNearest2d",
    "OptimizedFourierUnit",
    "FNOFourierLayer",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, "Module"] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self.training = True

    # -- registration ------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, getattr(self, name)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters (paper: model size)."""
        return sum(p.size for p in self.parameters())

    # -- state -------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state["buffer." + name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"missing parameter '{name}' in state dict")
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)
        for name, _ in self.named_buffers():
            key = "buffer." + name
            if key in state:
                buf = self._find_buffer_owner(name)
                buf_name = name.split(".")[-1]
                stored = getattr(buf, buf_name)
                stored[...] = state[key]

    def _find_buffer_owner(self, dotted_name: str) -> "Module":
        parts = dotted_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        return module

    # -- forward ------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


@contextmanager
def eval_mode(module: Module):
    """Temporarily switch a module to evaluation mode.

    Unlike a bare ``module.eval()`` / ``module.train()`` pair, this restores
    each submodule's *prior* ``training`` flag on exit (even on exceptions),
    so inference helpers never clobber the caller's train/eval state — e.g. a
    model evaluated mid-training stays in training mode afterwards, and an
    already-eval'd production model is not flipped back to training.
    """
    prior = [(child, child.training) for child in module.modules()]
    module.eval()
    try:
        yield module
    finally:
        for child, training in prior:
            child.training = training


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (getattr(self, name) for name in self._order)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Conv2d(Module):
    """2-D convolution layer (cross-correlation), PyTorch weight layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or init.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    # -- fusion metadata ----------------------------------------------- #
    def fusible_chain(self):
        """A bare convolution is a one-step fused chain (no BN, no activation).

        Consumed by :func:`repro.nn.fusion.compile_model`, which rewrites
        declared chains into :class:`~repro.nn.fusion.FusedChain` kernels.
        """
        return [(self, None, None)]


class ConvTranspose2d(Module):
    """2-D transposed convolution layer used by the image-reconstruction path."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or init.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((in_channels, out_channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    # -- fusion metadata ----------------------------------------------- #
    def fusible_chain(self):
        """A bare transposed convolution is a one-step fused chain.

        Consumed by :func:`repro.nn.fusion.compile_model` (the UNet up-path
        deconvs compile this way); the fused op is a
        :class:`~repro.nn.fusion.FusedConvTranspose`.
        """
        return [(self, None, None)]


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    # -- fusion metadata ----------------------------------------------- #
    def fold_inference_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """Eval-mode normalization as one per-channel affine ``x*scale + shift``.

        Snapshot of the current running statistics, computed with the same
        arithmetic as the eval branch of :func:`repro.nn.functional.batch_norm2d`;
        :mod:`repro.nn.fusion` folds it into the preceding convolution's
        weights and bias at compile time.
        """
        std = np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data / std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift


class AvgPool2d(Module):
    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class UpsampleNearest2d(Module):
    def __init__(self, scale: int) -> None:
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def fusion_activation(self) -> tuple[str, float]:
        """Fusion metadata: apply ReLU on the fused conv's output tile."""
        return ("relu", 0.0)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)

    def fusion_activation(self) -> tuple[str, float]:
        """Fusion metadata: apply LeakyReLU on the fused conv's output tile."""
        return ("leaky_relu", self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def fusion_activation(self) -> tuple[str, float]:
        """Fusion metadata: apply tanh on the fused conv's output tile."""
        return ("tanh", 0.0)


class OptimizedFourierUnit(Module):
    """The Optimized Fourier Unit of DOINN (paper Figure 3(b), eq. (11)).

    A single FFT on the input image, truncation to the lowest ``modes``
    frequencies, a channel-lifting complex linear map (``LiftChannel`` in
    Table 5), a per-mode complex mixing (``MatMul`` in Table 5), and an
    inverse FFT followed by a LeakyReLU activation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes: int,
        negative_slope: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = modes
        self.negative_slope = negative_slope
        rng = rng or init.default_rng()
        self.lift_weight = Parameter(
            init.spectral_scale((in_channels, out_channels, 2), in_channels, rng)
        )
        self.mix_weight = Parameter(
            init.spectral_scale(
                (out_channels, out_channels, 2 * modes, 2 * modes, 2), out_channels, rng
            )
        )

    def forward(self, x: Tensor) -> Tensor:
        out = fourier_unit(x, self.lift_weight, self.mix_weight, self.modes)
        return out.leaky_relu(self.negative_slope)


class FNOFourierLayer(Module):
    """A baseline FNO Fourier layer (paper Figure 3(a), eq. (7)-(10)).

    ``v_{t+1} = sigma(L v_t + IFFT(R . FFT(v_t)))`` where ``L`` is a 1x1
    convolution bypass and ``R`` mixes the retained frequency modes.
    """

    def __init__(
        self,
        channels: int,
        modes: int,
        negative_slope: float = 0.1,
        use_bypass: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.modes = modes
        self.negative_slope = negative_slope
        self.use_bypass = use_bypass
        rng = rng or init.default_rng()
        self.mix_weight = Parameter(
            init.spectral_scale((channels, channels, 2 * modes, 2 * modes, 2), channels, rng)
        )
        if use_bypass:
            self.bypass = Conv2d(channels, channels, kernel_size=1, bias=True, rng=rng)
        else:
            self.bypass = None

    def forward(self, x: Tensor) -> Tensor:
        spectral = spectral_conv2d(x, self.mix_weight, self.modes)
        if self.bypass is not None:
            spectral = spectral + self.bypass(x)
        return spectral.leaky_relu(self.negative_slope)
