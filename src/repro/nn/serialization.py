"""Saving and loading model weights as compressed ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state", "save_model", "load_model"]


def save_state(state: dict[str, np.ndarray], path: str | Path) -> Path:
    """Save a state dictionary to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Load a state dictionary previously written by :func:`save_state`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def save_model(model: Module, path: str | Path) -> Path:
    """Serialize a module's parameters and buffers."""
    return save_state(model.state_dict(), path)


def load_model(model: Module, path: str | Path) -> Module:
    """Load parameters and buffers into ``model`` in place and return it."""
    model.load_state_dict(load_state(path))
    return model
