"""Pluggable compute backends for the fused inference kernels.

The fused eval kernels (:func:`repro.nn.functional.conv_bn_act` /
:func:`~repro.nn.functional.conv_transpose_bn_act`) run single-threaded
float64 GEMMs by default — the bit-identical reference lane.  This module
adds a small registry of alternative *compute backends* that slot into the
op-polymorphic :class:`repro.nn.fusion.FusedChain` seam:

``float64``
    The default.  Today's per-sample float64 GEMM path, bit-identical to
    the unfused eval graph (<= 1e-12 zoo-wide gate).
``float32``
    Folded weights/biases are cast to float32 at conversion time and the
    whole chain runs in float32 — roughly half the memory traffic on a
    memory-bound path.  Equivalence is held to a *calibrated* per-model
    tolerance (see ``tests/nn/test_fusion.py``), not the 1e-12 gate.
``blas``
    Threaded BLAS batching: each micro-batch's per-sample patch matrices
    are stacked into one ``(N*L, C_in*k*k) @ (C_in*k*k, C_out)`` GEMM so
    BLAS threads can tile the machine.  Same float64 dtype, but the
    different GEMM shapes round differently, so this lane is
    tolerance-equivalent (not bit-identical) and *not* partition
    invariant.
``fft``
    FFT-domain transposed convolution for the large-kernel deconv /
    spectral layers (kernel area >= :data:`FFT_MIN_KERNEL_AREA`), reusing
    the ``AerialWorkspace`` scratch idiom from ``litho/hopkins.py``.
    Per-sample, so it stays partition invariant; float64 dtype with an
    FFT-roundoff tolerance.

Selection precedence (the repo-wide knob idiom): explicit ``backend=``
argument > ``REPRO_BACKEND`` env var > ``float64`` default.  The env var
only engages on the compiled fused path (``compile=True`` pipelines /
executors); ``compile_model`` itself never consults the environment, so
the fusion equivalence suites stay deterministic under any env.

BLAS thread capping: ``REPRO_BLAS_THREADS`` / the ``blas_threads`` knob on
:class:`repro.pipeline.parallel.ParallelConfig` caps the BLAS pool via a
ctypes shim (no ``threadpoolctl`` dependency), so ``workers x BLAS
threads`` does not oversubscribe the machine.  Defaults: 1 thread per
pooled worker, leave-the-library-alone when serial.  Knob catalogue:
``docs/configuration.md``.
"""

from __future__ import annotations

import ctypes
import functools
import glob
import os
from dataclasses import dataclass, field

import numpy as np

from .. import knobs

try:  # pragma: no cover - exercised indirectly; scipy ships in the image
    from scipy import fft as _sp_fft
except ImportError:  # pragma: no cover - fallback for scipy-less installs
    _sp_fft = None

__all__ = [
    "BACKEND_ENV",
    "BLAS_THREADS_ENV",
    "DEFAULT_BACKEND",
    "FFT_MIN_KERNEL_AREA",
    "BackendWorkspace",
    "ComputeBackend",
    "available_backends",
    "fft_conv_transpose_bn_act",
    "get_backend",
    "get_blas_threads",
    "register_backend",
    "resolve_backend",
    "resolve_blas_threads",
    "set_blas_threads",
]

BACKEND_ENV = "REPRO_BACKEND"
BLAS_THREADS_ENV = "REPRO_BLAS_THREADS"
DEFAULT_BACKEND = "float64"

#: Minimum kernel area (kh*kw) for the FFT deconv path to engage.  The
#: DOINN 4x4 deconv stacks qualify; UNet's 2x2 up-convs stay on the direct
#: scatter path where im2col-free strided assignment is already cheap.
FFT_MIN_KERNEL_AREA = 16


@dataclass(frozen=True)
class ComputeBackend:
    """One compute lane for the fused kernels.

    ``dtype_str`` is the working dtype of the whole fused chain;
    ``stacked_gemm`` routes conv GEMMs through the batched ``(N*L, K)``
    stacking (threaded-BLAS lane); ``fft_deconv`` routes large-kernel
    transposed convs through the FFT-domain path.
    """

    name: str
    dtype_str: str
    stacked_gemm: bool = False
    fft_deconv: bool = False
    description: str = ""

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.dtype_str)


_REGISTRY: dict[str, ComputeBackend] = {}


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Register (or replace) a backend under its ``name``."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str | ComputeBackend) -> ComputeBackend:
    """Look up a backend by name (``ComputeBackend`` passes through)."""
    if isinstance(name, ComputeBackend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown compute backend {name!r}; valid backends: {valid}"
        ) from None


def resolve_backend(backend: str | ComputeBackend | None = None) -> ComputeBackend:
    """Resolve the active backend: explicit arg > ``REPRO_BACKEND`` > default."""
    if backend is not None:
        return get_backend(backend)
    raw = knobs.get_raw(BACKEND_ENV)
    if raw is None or raw == "":
        return _REGISTRY[DEFAULT_BACKEND]
    if raw not in _REGISTRY:
        valid = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"{BACKEND_ENV}={raw!r} is not a registered compute backend; "
            f"valid backends: {valid}"
        )
    return _REGISTRY[raw]


register_backend(
    ComputeBackend(
        name="float64",
        dtype_str="<f8",
        description="per-sample float64 GEMMs; bit-identical reference lane",
    )
)
register_backend(
    ComputeBackend(
        name="float32",
        dtype_str="<f4",
        description="float32 inference lane; calibrated tolerance, ~half the memory traffic",
    )
)
register_backend(
    ComputeBackend(
        name="blas",
        dtype_str="<f8",
        stacked_gemm=True,
        description="stacked (N*L, K) GEMM per micro-batch so BLAS threads batch across samples",
    )
)
register_backend(
    ComputeBackend(
        name="fft",
        dtype_str="<f8",
        fft_deconv=True,
        description="FFT-domain transposed conv for large-kernel deconv/spectral layers",
    )
)


# --------------------------------------------------------------------------
# BLAS thread capping (ctypes shim; no threadpoolctl dependency)
# --------------------------------------------------------------------------

#: Candidate exported symbol names across OpenBLAS builds.  NumPy's bundled
#: scipy-openblas prefixes the public API; plain builds export the bare
#: names; ``openblas_set_num_threads_local`` is the thread-local variant
#: some builds expose instead of the global setter.
_SET_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads_64_",
    "scipy_openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
    "openblas_set_num_threads_local",
)
_GET_SYMBOLS = (
    "scipy_openblas_get_num_threads64_",
    "scipy_openblas_get_num_threads_64_",
    "scipy_openblas_get_num_threads",
    "openblas_get_num_threads64_",
    "openblas_get_num_threads",
)


def _openblas_paths() -> list[str]:
    """Candidate OpenBLAS shared-object paths: mapped libs, then numpy.libs."""
    paths: list[str] = []
    try:
        with open("/proc/self/maps", "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                path = line.rstrip("\n").partition("/")[2]
                if not path:
                    continue
                path = "/" + path
                base = os.path.basename(path).lower()
                if "openblas" in base and path not in paths:
                    paths.append(path)
    except OSError:  # pragma: no cover - /proc-less platforms
        pass
    if not paths:
        libs_dir = os.path.join(os.path.dirname(np.__file__), "..", "numpy.libs")
        for path in sorted(glob.glob(os.path.join(libs_dir, "*openblas*"))):
            paths.append(os.path.abspath(path))
    return paths


@functools.lru_cache(maxsize=1)
def _blas_library() -> ctypes.CDLL | None:
    """The process's OpenBLAS handle, or None when no library was found."""
    for path in _openblas_paths():
        try:
            return ctypes.CDLL(path)
        except OSError:  # pragma: no cover - unloadable candidate
            continue
    return None  # pragma: no cover - non-OpenBLAS numpy builds


def _find_symbol(lib: ctypes.CDLL, candidates: tuple[str, ...]):
    for name in candidates:
        try:
            return getattr(lib, name)
        except AttributeError:
            continue
    return None


def set_blas_threads(n: int) -> bool:
    """Cap the BLAS thread pool at ``n`` threads.

    Returns True when a setter symbol was found and called, False when the
    library (or symbol) is unavailable — callers degrade gracefully.  This
    runtime call is the reliable path for pool workers: with the fork start
    method the BLAS library is already initialized when the worker starts,
    so environment variables like ``OPENBLAS_NUM_THREADS`` are too late.
    """
    if n < 1:
        raise ValueError(f"BLAS thread count must be >= 1, got {n}")
    lib = _blas_library()
    if lib is None:
        return False
    fn = _find_symbol(lib, _SET_SYMBOLS)
    if fn is None:
        return False
    fn.argtypes = [ctypes.c_int]
    fn.restype = None
    fn(int(n))
    return True


def get_blas_threads() -> int | None:
    """Current BLAS thread count, or None when it cannot be queried."""
    lib = _blas_library()
    if lib is None:
        return None
    fn = _find_symbol(lib, _GET_SYMBOLS)
    if fn is None:
        return None
    fn.argtypes = []
    fn.restype = ctypes.c_int
    return int(fn())


def resolve_blas_threads(blas_threads: int | None = None, num_workers: int = 0) -> int:
    """Resolve the BLAS thread cap: explicit > ``REPRO_BLAS_THREADS`` > default.

    The default is 1 when running under a worker pool (``num_workers > 1``)
    so ``workers x BLAS threads`` never oversubscribes, and 0 (meaning
    "leave the library alone") when serial.  Returns the resolved cap; 0
    disables capping.
    """
    if blas_threads is not None:
        if blas_threads < 0:
            raise ValueError(f"blas_threads must be >= 0, got {blas_threads}")
        return int(blas_threads)
    value = knobs.read_int(BLAS_THREADS_ENV, minimum=0)
    if value is not None:
        return value
    return 1 if num_workers > 1 else 0


# --------------------------------------------------------------------------
# Backend workspace (AerialWorkspace idiom from litho/hopkins.py)
# --------------------------------------------------------------------------


class BackendWorkspace:
    """Reusable scratch + kernel-spectrum cache for backend kernels.

    Mirrors ``litho.hopkins.AerialWorkspace``: buffers are keyed by
    ``(key, shape, dtype)`` and allocated uninitialized; the workspace
    pickles empty so chains ship cheaply to pool workers, which rebuild
    their scratch on first use.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self._spectra: dict[tuple, tuple] = {}

    def buffer(self, key: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        cache_key = (key, shape, np.dtype(dtype).str)
        buf = self._buffers.get(cache_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[cache_key] = buf
        return buf

    def spectrum(self, key: tuple, weight: np.ndarray, builder) -> np.ndarray:
        """Cache ``builder(weight)`` keyed by ``key`` + the weight's identity.

        ``id(weight)`` can be reused after garbage collection, so the cached
        entry keeps a strong reference to the weight it was built from and
        is recomputed whenever the stored weight is not the argument.
        """
        cache_key = key + (id(weight),)
        entry = self._spectra.get(cache_key)
        if entry is not None and entry[0] is weight:
            return entry[1]
        value = builder(weight)
        self._spectra[cache_key] = (weight, value)
        return value

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self._buffers = {}
        self._spectra = {}


# --------------------------------------------------------------------------
# FFT-domain transposed convolution
# --------------------------------------------------------------------------


def _rfft2(a: np.ndarray, s: tuple[int, int]) -> np.ndarray:
    if _sp_fft is not None:
        return _sp_fft.rfft2(a, s=s)
    return np.fft.rfft2(a, s=s)


def _irfft2(a: np.ndarray, s: tuple[int, int]) -> np.ndarray:
    if _sp_fft is not None:
        return _sp_fft.irfft2(a, s=s)
    return np.fft.irfft2(a, s=s)


def _fast_len(n: int) -> int:
    if _sp_fft is not None:
        return _sp_fft.next_fast_len(n)
    return n


def fft_conv_transpose_bn_act(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
    activation: str = "identity",
    negative_slope: float = 0.01,
    output_padding: int = 0,
    out: np.ndarray | None = None,
    workspace: BackendWorkspace | None = None,
) -> np.ndarray:
    """FFT-domain equivalent of ``conv_transpose_bn_act``.

    A transposed convolution is the full (non-flipped) linear convolution
    of the zero-upsampled input with the kernel, cropped by ``padding`` on
    each side.  Per-sample rfft2 with the channel contraction done by one
    einsum over the input-channel axis — partition invariant, so pooled
    and sharded runs stay bit-identical to serial within this lane.
    """
    from .functional import _apply_activation_inplace, _check_fused_activation

    _check_fused_activation(activation, negative_slope)
    x = np.asarray(x)
    weight = np.asarray(weight)
    n, c_in, h, w = x.shape
    wc_in, c_out, kh, kw = weight.shape
    if wc_in != c_in:
        raise ValueError(
            f"fft_conv_transpose_bn_act: weight expects {wc_in} input channels, got {c_in}"
        )
    dtype = np.result_type(x, weight)
    h_up = (h - 1) * stride + 1
    w_up = (w - 1) * stride + 1
    h_out = (h - 1) * stride - 2 * padding + kh
    w_out = (w - 1) * stride - 2 * padding + kw
    full_h = h_up + kh - 1
    full_w = w_up + kw - 1
    out_shape = (n, c_out, h_out + 2 * output_padding, w_out + 2 * output_padding)
    if out is None:
        out = np.zeros(out_shape, dtype=dtype)
    else:
        if out.shape != out_shape:
            raise ValueError(
                f"fft_conv_transpose_bn_act: out buffer has shape {out.shape}, "
                f"expected {out_shape}"
            )
        out.fill(0.0)

    if workspace is None:
        workspace = BackendWorkspace()
    fh = _fast_len(full_h)
    fw = _fast_len(full_w)
    up = workspace.buffer("fft_up", (n, c_in, h_up, w_up), dtype)
    up.fill(0.0)
    up[:, :, ::stride, ::stride] = x
    w_spec = workspace.spectrum(
        ("fft_w", weight.shape, (fh, fw)),
        weight,
        lambda wt: _rfft2(wt.astype(dtype, copy=False), (fh, fw)),
    )
    x_spec = _rfft2(up, (fh, fw))
    full = _irfft2(np.einsum("nihw,iohw->nohw", x_spec, w_spec), (fh, fw))
    region = full[:, :, padding : padding + h_out, padding : padding + w_out]
    part = out[
        :,
        :,
        output_padding : output_padding + h_out,
        output_padding : output_padding + w_out,
    ]
    part[...] = region
    if bias is not None:
        part += np.asarray(bias).reshape(1, c_out, 1, 1)
    _apply_activation_inplace(part, activation, negative_slope)
    return out
