"""The Dual-band Optics-Inspired Neural Network (DOINN).

DOINN (paper §3.1, Figure 4) combines

* a **global perception** (GP) path — average pooling + an optimized Fourier
  unit that resembles the physical imaging equation (eq. (11)),
* a **local perception** (LP) path — strided convolutions capturing
  high-frequency mask detail, and
* an **image reconstruction** (IR) path — transposed convolutions with skip
  concatenations and refinement convolutions producing the resist image.

The default configuration reproduces the appendix architecture (Tables 5-7) at
a configurable input size; ``DOINNConfig.paper()`` gives the exact published
configuration (2048x2048 input, 16 GP channels, 50 retained modes, ~1.3 M
parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import Tensor
from .paths import GlobalPerception, ImageReconstruction, LocalPerception

__all__ = ["DOINNConfig", "DOINN"]


@dataclass(frozen=True)
class DOINNConfig:
    """Hyper-parameters of a DOINN instance.

    The ablation switches correspond to Table 3 of the paper:

    =====  =================================================================
    Row    Configuration
    =====  =================================================================
    1      ``use_refine=False, use_lp=False, use_skips=False`` (GP only)
    2      ``use_refine=True,  use_lp=False, use_skips=False`` (GP + IR)
    3      ``use_refine=True,  use_lp=True,  use_skips=False`` (GP + IR + LP)
    4      ``use_refine=True,  use_lp=True,  use_skips=True``  (full DOINN)
    =====  =================================================================
    """

    gp_channels: int = 16
    lp_base_channels: int = 4
    modes: int = 8
    pool_factor: int = 8
    use_lp: bool = True
    use_skips: bool = True
    use_refine: bool = True
    seed: int = 0

    @staticmethod
    def paper() -> "DOINNConfig":
        """The exact configuration published in the paper's appendix."""
        return DOINNConfig(gp_channels=16, lp_base_channels=4, modes=25, pool_factor=8)

    @staticmethod
    def scaled(image_size: int, gp_channels: int = 16, lp_base_channels: int = 4) -> "DOINNConfig":
        """A configuration scaled to a smaller input size.

        The number of retained modes is chosen as large as the pooled spectrum
        allows (up to the paper's 25-per-sign-axis), so the GP path keeps the
        same relative bandwidth.
        """
        pooled = image_size // 8
        modes = max(2, min(25, pooled // 2))
        return DOINNConfig(gp_channels=gp_channels, lp_base_channels=lp_base_channels, modes=modes)

    def ablation(self, row: int) -> "DOINNConfig":
        """Return the configuration of one Table 3 ablation row (1-4)."""
        flags = {
            1: (False, False, False),
            2: (True, False, False),
            3: (True, True, False),
            4: (True, True, True),
        }
        if row not in flags:
            raise ValueError("ablation row must be 1, 2, 3 or 4")
        use_refine, use_lp, use_skips = flags[row]
        return DOINNConfig(
            gp_channels=self.gp_channels,
            lp_base_channels=self.lp_base_channels,
            modes=self.modes,
            pool_factor=self.pool_factor,
            use_lp=use_lp,
            use_skips=use_skips,
            use_refine=use_refine,
            seed=self.seed,
        )


class DOINN(nn.Module):
    """Dual-band optics-inspired neural network for lithography modeling."""

    def __init__(self, config: DOINNConfig | None = None) -> None:
        super().__init__()
        self.config = config or DOINNConfig()
        rng = np.random.default_rng(self.config.seed)

        self.global_perception = GlobalPerception(
            channels=self.config.gp_channels,
            modes=self.config.modes,
            pool_factor=self.config.pool_factor,
            rng=rng,
        )
        if self.config.use_lp:
            self.local_perception = LocalPerception(self.config.lp_base_channels, rng=rng)
            lp_channels = self.local_perception.channels
        else:
            self.local_perception = None
            lp_channels = (0, 0, 0)
        self.reconstruction = ImageReconstruction(
            gp_channels=self.config.gp_channels,
            lp_channels=lp_channels,
            base_channels=self.config.lp_base_channels,
            use_lp=self.config.use_lp,
            use_skips=self.config.use_skips,
            use_refine=self.config.use_refine,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        """Predict the resist image for mask images ``(N, 1, H, W)``.

        ``H`` and ``W`` must be divisible by 8 (the GP pooling factor) and at
        least ``16 * modes`` so the retained frequency block fits.
        """
        gp = self.global_perception(x)
        lp = self.local_perception(x) if self.local_perception is not None else None
        return self.reconstruction(gp, lp)

    def predict(self, masks: np.ndarray, batch_size: int = 8) -> np.ndarray:
        """Inference helper: numpy masks ``(N, 1, H, W)`` -> resist predictions.

        Runs under :func:`repro.nn.eval_mode`, restoring the prior train/eval
        state afterwards.
        """
        outputs = []
        with nn.eval_mode(self), nn.no_grad():
            for start in range(0, masks.shape[0], batch_size):
                batch = Tensor(masks[start : start + batch_size])
                outputs.append(self.forward(batch).numpy())
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    def summary(self, image_size: int = 2048) -> list[dict]:
        """Per-path layer summary matching the appendix tables (5-7).

        Returns a list of rows with keys ``path``, ``layer`` and ``output``;
        spatial sizes are derived for the given ``image_size``.
        """
        pooled = image_size // self.config.pool_factor
        gp_rows = [
            {"path": "GP", "layer": "AvePooling", "output": (pooled, pooled, 1)},
            {"path": "GP", "layer": "FFT", "output": (pooled, pooled // 2 + 1, 1)},
            {"path": "GP", "layer": "LiftChannel", "output": (pooled, pooled // 2 + 1, self.config.gp_channels)},
            {"path": "GP", "layer": "MatMul", "output": (pooled, pooled // 2 + 1, self.config.gp_channels)},
            {"path": "GP", "layer": "iFFT", "output": (pooled, pooled, self.config.gp_channels)},
        ]
        rows = list(gp_rows)
        if self.local_perception is not None:
            c1, c2, c3 = self.local_perception.channels
            rows += [
                {"path": "LP", "layer": "conv1+vgg1", "output": (image_size // 2, image_size // 2, c1)},
                {"path": "LP", "layer": "conv2+vgg2", "output": (image_size // 4, image_size // 4, c2)},
                {"path": "LP", "layer": "conv3+vgg3", "output": (image_size // 8, image_size // 8, c3)},
            ]
        base = self.config.lp_base_channels
        rows += [
            {"path": "IR", "layer": "dconv1+vgg4", "output": (image_size // 4, image_size // 4, base * 4)},
            {"path": "IR", "layer": "dconv2+vgg5", "output": (image_size // 2, image_size // 2, base * 2)},
            {"path": "IR", "layer": "dconv3+vgg6", "output": (image_size, image_size, base)},
            {"path": "IR", "layer": "refine+output", "output": (image_size, image_size, 1)},
        ]
        return rows
