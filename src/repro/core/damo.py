"""DAMO-DLS baseline: a nested-UNet (UNet++) deep lithography simulator.

DAMO [10] builds its deep lithography simulator on a nested UNet generator
(UNet++ style dense skip pathways) trained adversarially.  For the accuracy
and runtime comparisons of the paper only the generator matters, so this
module implements the nested-UNet generator; it is deliberately heavier than
DOINN (the paper reports 18 M parameters vs. DOINN's 1.3 M — here the ratio is
preserved at scaled width).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["DAMODLS"]


class _ConvBlock(nn.Module):
    """Two 3x3 convolutions with batch norm and LeakyReLU."""

    def __init__(self, in_channels: int, out_channels: int, rng=None) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.act = nn.LeakyReLU(0.2)

    def forward(self, x: Tensor) -> Tensor:
        x = self.act(self.bn1(self.conv1(x)))
        return self.act(self.bn2(self.conv2(x)))

    def fusible_chain(self):
        """The whole block is one conv->BN->LeakyReLU fused chain (x2)."""
        return [(self.conv1, self.bn1, self.act), (self.conv2, self.bn2, self.act)]


class DAMODLS(nn.Module):
    """Nested-UNet (UNet++) generator with two nesting levels.

    Node ``x_{i,j}`` denotes the block at encoder depth ``i`` and nesting
    level ``j``; every node receives the upsampled deeper feature and all
    same-depth predecessors (dense skips), following the UNet++ topology used
    by DAMO's deep lithography simulator.
    """

    def __init__(self, base_channels: int = 12, in_channels: int = 1, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        c0, c1, c2 = base_channels, base_channels * 2, base_channels * 4

        self.pool = nn.MaxPool2d(2)
        self.up = nn.UpsampleNearest2d(2)

        # Backbone column (j = 0).
        self.x00 = _ConvBlock(in_channels, c0, rng=rng)
        self.x10 = _ConvBlock(c0, c1, rng=rng)
        self.x20 = _ConvBlock(c1, c2, rng=rng)

        # First nesting level (j = 1).
        self.x01 = _ConvBlock(c0 + c1, c0, rng=rng)
        self.x11 = _ConvBlock(c1 + c2, c1, rng=rng)

        # Second nesting level (j = 2).
        self.x02 = _ConvBlock(c0 * 2 + c1, c0, rng=rng)

        self.head = nn.Conv2d(c0, 1, 1, rng=rng)
        self.tanh = nn.Tanh()

    def forward(self, x: Tensor) -> Tensor:
        x00 = self.x00(x)
        x10 = self.x10(self.pool(x00))
        x20 = self.x20(self.pool(x10))

        x01 = self.x01(Tensor.cat([x00, self.up(x10)], axis=1))
        x11 = self.x11(Tensor.cat([x10, self.up(x20)], axis=1))
        x02 = self.x02(Tensor.cat([x00, x01, self.up(x11)], axis=1))
        return self._head(x02)

    def _head(self, x: Tensor) -> Tensor:
        return self.tanh(self.head(x))

    def fusion_rewrites(self):
        """Fuse the 1x1 output conv with its tanh head."""
        return {"_head": [(self.head, None, self.tanh)]}

    def predict(self, masks: np.ndarray, batch_size: int = 4) -> np.ndarray:
        """Inference helper mirroring :meth:`repro.core.doinn.DOINN.predict`."""
        outputs = []
        with nn.eval_mode(self), nn.no_grad():
            for start in range(0, masks.shape[0], batch_size):
                outputs.append(self.forward(Tensor(masks[start : start + batch_size])).numpy())
        return np.concatenate(outputs, axis=0)
