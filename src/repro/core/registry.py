"""Model registry: build any of the compared models by name.

Used by the experiment harnesses so a benchmark row like
``("UNet", "DAMO-DLS", "Ours")`` maps directly onto model constructors.
"""

from __future__ import annotations

from typing import Callable

from ..nn import Module
from .damo import DAMODLS
from .doinn import DOINN, DOINNConfig
from .fno import BaselineFNO
from .unet import UNet

__all__ = ["create_model", "available_models", "model_size"]


def _build_doinn(image_size: int, **kwargs) -> DOINN:
    kwargs.setdefault("gp_channels", 16)
    kwargs.setdefault("lp_base_channels", 4)
    config = kwargs.pop("config", None) or DOINNConfig.scaled(image_size, **kwargs)
    return DOINN(config)


def _build_unet(image_size: int, **kwargs) -> UNet:
    kwargs.setdefault("base_channels", 8)
    kwargs.setdefault("depth", 3)
    return UNet(**kwargs)


def _build_damo(image_size: int, **kwargs) -> DAMODLS:
    kwargs.setdefault("base_channels", 12)
    return DAMODLS(**kwargs)


def _build_fno(image_size: int, **kwargs) -> BaselineFNO:
    kwargs.setdefault("width", 8)
    kwargs.setdefault("modes", max(2, min(16, image_size // 8)))
    return BaselineFNO(**kwargs)


_REGISTRY: dict[str, Callable[..., Module]] = {
    "doinn": _build_doinn,
    "unet": _build_unet,
    "damo-dls": _build_damo,
    "fno": _build_fno,
}

_ALIASES = {
    "ours": "doinn",
    "damo": "damo-dls",
    "damodls": "damo-dls",
}


def available_models() -> list[str]:
    """Names accepted by :func:`create_model`."""
    return sorted(_REGISTRY)


def create_model(name: str, image_size: int = 128, **kwargs) -> Module:
    """Instantiate a model by name, scaled for ``image_size`` inputs."""
    key = name.lower().replace("_", "-")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    return _REGISTRY[key](image_size=image_size, **kwargs)


def model_size(model: Module) -> int:
    """Number of trainable parameters (paper: "20x smaller model size")."""
    return model.num_parameters()
