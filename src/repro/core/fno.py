"""Baseline FNO lithography model (paper Figure 3(a)).

A direct application of the Fourier Neural Operator to mask-to-resist
translation: lift the input with a 1x1 convolution, apply a stack of Fourier
layers (spectral convolution + bypass, eq. (7)-(10)), and project back to one
output channel.  The paper argues this baseline is wasteful because every
layer repeats full FFTs at mask resolution — the cost comparison is
reproduced by ``benchmarks/bench_fourier_unit_cost.py``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["BaselineFNO"]


class BaselineFNO(nn.Module):
    """Stacked-Fourier-unit baseline (P -> Fourier layers -> Q)."""

    def __init__(
        self,
        width: int = 8,
        modes: int = 8,
        num_layers: int = 4,
        use_bypass: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        rng = np.random.default_rng(seed)
        self.width = width
        self.modes = modes
        self.num_layers = num_layers

        self.lift = nn.Conv2d(1, width, 1, rng=rng)
        self.layers = []
        for i in range(num_layers):
            layer = nn.FNOFourierLayer(width, modes, use_bypass=use_bypass, rng=rng)
            setattr(self, f"fourier{i}", layer)
            self.layers.append(layer)
        self.project1 = nn.Conv2d(width, width * 2, 1, rng=rng)
        self.project2 = nn.Conv2d(width * 2, 1, 1, rng=rng)
        self.relu = nn.ReLU()
        self.tanh = nn.Tanh()

    def forward(self, x: Tensor) -> Tensor:
        x = self.lift(x)
        for layer in self.layers:
            x = layer(x)
        return self._project(x)

    def _project(self, x: Tensor) -> Tensor:
        return self.tanh(self.project2(self.relu(self.project1(x))))

    def fusion_rewrites(self):
        """Fuse the two 1x1 projection convs with their activations."""
        return {
            "_project": [
                (self.project1, None, self.relu),
                (self.project2, None, self.tanh),
            ]
        }

    def fusion_refresh(self) -> None:
        """Rebuild the cached Fourier-layer list after chain rewriting."""
        self.layers = [getattr(self, f"fourier{i}") for i in range(self.num_layers)]

    def predict(self, masks: np.ndarray, batch_size: int = 8) -> np.ndarray:
        """Inference helper mirroring :meth:`repro.core.doinn.DOINN.predict`."""
        outputs = []
        with nn.eval_mode(self), nn.no_grad():
            for start in range(0, masks.shape[0], batch_size):
                outputs.append(self.forward(Tensor(masks[start : start + batch_size])).numpy())
        return np.concatenate(outputs, axis=0)
