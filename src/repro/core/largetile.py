"""Large-tile simulation scheme (paper §3.2, eq. (12)-(14), Figure 5).

A DOINN trained on ``H x W`` tiles degrades when applied directly to an
``sH x sW`` mask because the Fourier-unit weights were trained for the
spectrum of the smaller tile.  :class:`LargeTileSimulator` restores full
quality via the half-overlapping tile / core-stitching scheme.

Since the batch-first refactor this class is a thin compatibility wrapper
over :class:`repro.pipeline.InferencePipeline`, which owns the tiling plan,
the batched global-perception execution and the core stitching.  New code
should use the pipeline directly (it also accepts mask batches and exposes
execution stats); this wrapper keeps the original single-mask API:

* :meth:`predict` — the large-tile scheme (pipeline ``stitch`` plan),
* :meth:`predict_naive` — the whole mask straight through the DOINN
  (paper Table 4, "DOINN" row; pipeline native plan).

Inference runs under :func:`repro.nn.eval_mode`, so the model's train/eval
state is restored afterwards instead of being clobbered to training mode.
"""

from __future__ import annotations

import numpy as np

from ..pipeline import InferencePipeline
from .doinn import DOINN

__all__ = ["LargeTileSimulator"]


class LargeTileSimulator:
    """Apply a trained DOINN to masks larger than its training tile size."""

    def __init__(
        self,
        model: DOINN,
        train_tile_size: int,
        optical_diameter_pixels: int = 16,
        batch_size: int = 8,
    ) -> None:
        if train_tile_size % model.config.pool_factor:
            raise ValueError("train_tile_size must be divisible by the GP pooling factor")
        self.model = model
        self.train_tile_size = train_tile_size
        self.optical_diameter_pixels = optical_diameter_pixels
        self.pipeline = InferencePipeline(
            model,
            tile_size=train_tile_size,
            batch_size=batch_size,
            optical_diameter_pixels=optical_diameter_pixels,
        )

    # ------------------------------------------------------------------ #
    def _gp_features_tiled(self, mask: np.ndarray) -> np.ndarray:
        """Large-tile global perception (paper eq. (13)): tile, run GP, stitch cores."""
        return self.pipeline.gp_features(mask)

    # ------------------------------------------------------------------ #
    def predict(self, mask: np.ndarray) -> np.ndarray:
        """Predict the resist image of a large mask with core stitching."""
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ValueError("predict expects a single 2-D mask image")
        return self.pipeline.predict(mask, stitch=True)

    def predict_naive(self, mask: np.ndarray) -> np.ndarray:
        """Feed the large mask straight through the DOINN (paper Table 4, "DOINN" row)."""
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ValueError("predict_naive expects a single 2-D mask image")
        return self.pipeline.predict(mask, stitch=False)
