"""Large-tile simulation scheme (paper §3.2, eq. (12)-(14), Figure 5).

A DOINN trained on ``H x W`` tiles degrades when applied directly to an
``sH x sW`` mask because the Fourier-unit weights were trained for the
spectrum of the smaller tile.  The scheme implemented here restores full
quality:

1. cut the large mask into half-overlapping tiles of the training size,
2. run only the **global perception** path on those tiles (in batches),
3. stitch the *core* regions of the GP feature maps back to the large size
   (everything within half an optical diameter of a tile boundary is
   discarded, exactly as eq. (13)-(14) prescribe),
4. run the local perception and image reconstruction paths on the full large
   mask — convolutions are translation invariant, so nothing else changes.
"""

from __future__ import annotations

import numpy as np

from ..layout.tiling import extract_tiles, stitch_cores
from ..nn import Tensor, no_grad
from .doinn import DOINN

__all__ = ["LargeTileSimulator"]


class LargeTileSimulator:
    """Apply a trained DOINN to masks larger than its training tile size."""

    def __init__(self, model: DOINN, train_tile_size: int, optical_diameter_pixels: int = 16) -> None:
        if train_tile_size % model.config.pool_factor:
            raise ValueError("train_tile_size must be divisible by the GP pooling factor")
        self.model = model
        self.train_tile_size = train_tile_size
        self.optical_diameter_pixels = optical_diameter_pixels

    # ------------------------------------------------------------------ #
    def _gp_features_tiled(self, mask: np.ndarray) -> np.ndarray:
        """Large-tile global perception (paper eq. (13)): tile, run GP, stitch cores."""
        tile = self.train_tile_size
        pool = self.model.config.pool_factor
        tiles, specs = extract_tiles(mask, tile)

        gp_outputs = []
        with no_grad():
            for start in range(0, tiles.shape[0], 8):
                batch = Tensor(tiles[start : start + 8][:, None])
                gp_outputs.append(self.model.global_perception(batch).numpy())
        gp_tiles = np.concatenate(gp_outputs, axis=0)            # (n, C, tile/8, tile/8)

        # Re-express tile positions at the pooled (1/8) resolution.
        pooled_specs = [
            type(spec)(row=spec.row, col=spec.col, y0=spec.y0 // pool, x0=spec.x0 // pool, size=tile // pool)
            for spec in specs
        ]
        margin = max(1, int(np.ceil(self.optical_diameter_pixels / (2 * pool))))
        h, w = mask.shape
        return stitch_cores(gp_tiles, pooled_specs, (h // pool, w // pool), margin)

    # ------------------------------------------------------------------ #
    def predict(self, mask: np.ndarray) -> np.ndarray:
        """Predict the resist image of a large mask with core stitching."""
        if mask.ndim != 2:
            raise ValueError("predict expects a single 2-D mask image")
        h, w = mask.shape
        if h % self.train_tile_size or w % self.train_tile_size:
            raise ValueError(
                f"mask size {(h, w)} must be a multiple of the training tile size "
                f"{self.train_tile_size}"
            )
        self.model.eval()
        gp = self._gp_features_tiled(mask)
        with no_grad():
            x = Tensor(mask[None, None])
            lp = (
                self.model.local_perception(x)
                if self.model.local_perception is not None
                else None
            )
            out = self.model.reconstruction(Tensor(gp[None]), lp)
        self.model.train()
        return out.numpy()[0, 0]

    def predict_naive(self, mask: np.ndarray) -> np.ndarray:
        """Feed the large mask straight through the DOINN (paper Table 4, "DOINN" row)."""
        if mask.ndim != 2:
            raise ValueError("predict_naive expects a single 2-D mask image")
        self.model.eval()
        with no_grad():
            out = self.model(Tensor(mask[None, None]))
        self.model.train()
        return out.numpy()[0, 0]
