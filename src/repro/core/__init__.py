"""The paper's primary contribution (DOINN) and the compared baselines."""

from .damo import DAMODLS
from .doinn import DOINN, DOINNConfig
from .fno import BaselineFNO
from .largetile import LargeTileSimulator
from .paths import GlobalPerception, ImageReconstruction, LocalPerception, VGGBlock
from .registry import available_models, create_model, model_size
from .unet import UNet

__all__ = [
    "DOINN",
    "DOINNConfig",
    "UNet",
    "DAMODLS",
    "BaselineFNO",
    "LargeTileSimulator",
    "GlobalPerception",
    "LocalPerception",
    "ImageReconstruction",
    "VGGBlock",
    "create_model",
    "available_models",
    "model_size",
]
