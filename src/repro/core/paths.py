"""The three perception/reconstruction paths of DOINN (paper Figure 4, Tables 5-7).

* :class:`GlobalPerception` — average pooling followed by the Optimized
  Fourier Unit; captures low-frequency (semantic) mask content in the
  frequency domain (Table 5).
* :class:`LocalPerception` — stacked strided convolutions + VGG blocks;
  captures high-frequency edge/detail content (Table 6).
* :class:`ImageReconstruction` — transposed convolutions with skip
  concatenations followed by single-stride refinement convolutions; rebuilds
  the resist image at mask resolution (Table 7).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["VGGBlock", "GlobalPerception", "LocalPerception", "ImageReconstruction"]


class VGGBlock(nn.Module):
    """Two 3x3 convolutions with batch normalization and LeakyReLU(0.2).

    This is the "vgg" block of the paper's appendix tables (VGG-style stacked
    convolutions [23]).
    """

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.act = nn.LeakyReLU(0.2)

    def forward(self, x: Tensor) -> Tensor:
        x = self.act(self.bn1(self.conv1(x)))
        x = self.act(self.bn2(self.conv2(x)))
        return x

    def fusible_chain(self):
        """The whole block is one conv->BN->LeakyReLU fused chain (x2)."""
        return [(self.conv1, self.bn1, self.act), (self.conv2, self.bn2, self.act)]


class GlobalPerception(nn.Module):
    """GP path: AvgPool(/8) -> FFT -> truncation -> lift -> mix -> iFFT (Table 5)."""

    def __init__(
        self,
        channels: int = 16,
        modes: int = 8,
        pool_factor: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.modes = modes
        self.pool_factor = pool_factor
        self.pool = nn.AvgPool2d(pool_factor)
        self.fourier_unit = nn.OptimizedFourierUnit(1, channels, modes=modes, negative_slope=0.1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Map a mask ``(N, 1, H, W)`` to GP features ``(N, C, H/8, W/8)``."""
        return self.fourier_unit(self.pool(x))


class LocalPerception(nn.Module):
    """LP path: three stride-2 convolutions, each followed by a VGG block (Table 6).

    Produces three feature maps at 1/2, 1/4 and 1/8 of the input resolution;
    the finest two feed the skip concatenations of the reconstruction path.
    """

    def __init__(self, base_channels: int = 4, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        c1, c2, c3 = base_channels, base_channels * 2, base_channels * 4
        self.channels = (c1, c2, c3)
        self.conv1 = nn.Conv2d(1, c1, 4, stride=2, padding=1, rng=rng)
        self.vgg1 = VGGBlock(c1, c1, rng=rng)
        self.conv2 = nn.Conv2d(c1, c2, 4, stride=2, padding=1, rng=rng)
        self.vgg2 = VGGBlock(c2, c2, rng=rng)
        self.conv3 = nn.Conv2d(c2, c3, 4, stride=2, padding=1, rng=rng)
        self.vgg3 = VGGBlock(c3, c3, rng=rng)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor, Tensor]:
        """Return (half-, quarter-, eighth-resolution) feature maps."""
        f1 = self._stage1(x)
        f2 = self._stage2(f1)
        f3 = self._stage3(f2)
        return f1, f2, f3

    # Each stage (strided conv + VGG block) is a straight-line conv chain, so
    # the compiler can run it as one fused kernel with a single entry pad.
    def _stage1(self, x: Tensor) -> Tensor:
        return self.vgg1(self.conv1(x))

    def _stage2(self, x: Tensor) -> Tensor:
        return self.vgg2(self.conv2(x))

    def _stage3(self, x: Tensor) -> Tensor:
        return self.vgg3(self.conv3(x))

    def fusion_rewrites(self):
        """Fuse each downsampling conv together with its VGG block."""
        def stage(conv, vgg):
            return [(conv, None, None), (vgg.conv1, vgg.bn1, vgg.act), (vgg.conv2, vgg.bn2, vgg.act)]

        return {
            "_stage1": stage(self.conv1, self.vgg1),
            "_stage2": stage(self.conv2, self.vgg2),
            "_stage3": stage(self.conv3, self.vgg3),
        }


class ImageReconstruction(nn.Module):
    """IR path: transposed convolutions with skips + refinement convs (Table 7)."""

    def __init__(
        self,
        gp_channels: int = 16,
        lp_channels: tuple[int, int, int] = (4, 8, 16),
        base_channels: int = 4,
        use_lp: bool = True,
        use_skips: bool = True,
        use_refine: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.use_lp = use_lp
        self.use_skips = use_skips and use_lp
        self.use_refine = use_refine
        c1, c2, c3 = lp_channels
        d1, d2, d3 = base_channels * 4, base_channels * 2, base_channels

        in1 = gp_channels + (c3 if use_lp else 0)
        self.dconv1 = nn.ConvTranspose2d(in1, d1, 4, stride=2, padding=1, rng=rng)
        self.vgg4 = VGGBlock(d1, d1, rng=rng)

        in2 = d1 + (c2 if self.use_skips else 0)
        self.dconv2 = nn.ConvTranspose2d(in2, d2, 4, stride=2, padding=1, rng=rng)
        self.vgg5 = VGGBlock(d2, d2, rng=rng)

        in3 = d2 + (c1 if self.use_skips else 0)
        self.dconv3 = nn.ConvTranspose2d(in3, d3, 4, stride=2, padding=1, rng=rng)
        self.vgg6 = VGGBlock(d3, d3, rng=rng)

        if use_refine:
            self.refine1 = nn.Conv2d(d3, d1 * 2, 3, stride=1, padding=1, rng=rng)
            self.refine2 = nn.Conv2d(d1 * 2, d1, 3, stride=1, padding=1, rng=rng)
            self.refine3 = nn.Conv2d(d1, d1, 3, stride=1, padding=1, rng=rng)
            self.output = nn.Conv2d(d1, 1, 3, stride=1, padding=1, rng=rng)
        else:
            self.output = nn.Conv2d(d3, 1, 3, stride=1, padding=1, rng=rng)
        self.relu = nn.ReLU()
        self.tanh = nn.Tanh()

    def forward(
        self,
        gp_features: Tensor,
        lp_features: tuple[Tensor, Tensor, Tensor] | None = None,
    ) -> Tensor:
        """Reconstruct the resist image from GP (and optionally LP) features."""
        if self.use_lp:
            if lp_features is None:
                raise ValueError("ImageReconstruction configured with use_lp=True requires lp_features")
            f1, f2, f3 = lp_features
            x = Tensor.cat([gp_features, f3], axis=1)
        else:
            x = gp_features

        x = self._up1(x)
        if self.use_skips:
            x = Tensor.cat([x, f2], axis=1)
        x = self._up2(x)
        if self.use_skips:
            x = Tensor.cat([x, f1], axis=1)
        x = self._up3(x)
        return self._refine_tail(x)

    # Each decoder stage (stride-2 transposed conv + VGG block) is a
    # straight-line chain — the skip concatenations happen *before* the
    # dconv, never between it and its VGG block — so the compiler runs it as
    # one fused kernel: the dconv's output crop lands directly inside the
    # zero border vgg conv1's padding needs (no crop copy, no re-pad).
    def _up1(self, x: Tensor) -> Tensor:
        return self.vgg4(self.dconv1(x))

    def _up2(self, x: Tensor) -> Tensor:
        return self.vgg5(self.dconv2(x))

    def _up3(self, x: Tensor) -> Tensor:
        return self.vgg6(self.dconv3(x))

    def _refine_tail(self, x: Tensor) -> Tensor:
        """Refinement convs + output head — a straight-line fusible chain."""
        if self.use_refine:
            x = self.relu(self.refine1(x))
            x = self.relu(self.refine2(x))
            x = self.relu(self.refine3(x))
        return self.tanh(self.output(x))

    def fusion_rewrites(self):
        """Fuse the ``dconvN -> vggN`` decoder stages and the refine tail."""

        def up(dconv, vgg):
            return [(dconv, None, None), (vgg.conv1, vgg.bn1, vgg.act), (vgg.conv2, vgg.bn2, vgg.act)]

        steps = []
        if self.use_refine:
            steps += [
                (self.refine1, None, self.relu),
                (self.refine2, None, self.relu),
                (self.refine3, None, self.relu),
            ]
        steps.append((self.output, None, self.tanh))
        return {
            "_up1": up(self.dconv1, self.vgg4),
            "_up2": up(self.dconv2, self.vgg5),
            "_up3": up(self.dconv3, self.vgg6),
            "_refine_tail": steps,
        }
