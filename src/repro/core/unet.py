"""UNet baseline (Ronneberger et al. [28] in the paper's Table 2).

A standard encoder-decoder UNet with skip connections, scaled by
``base_channels`` and ``depth`` so the comparison against DOINN can be run at
reduced image sizes while preserving the architecture family.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["UNet"]


class _DoubleConv(nn.Module):
    """(conv 3x3, BN, ReLU) x 2 — the standard UNet block."""

    def __init__(self, in_channels: int, out_channels: int, rng=None) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn1(self.conv1(x)))
        return self.relu(self.bn2(self.conv2(x)))

    def fusible_chain(self):
        """The whole block is one conv->BN->ReLU fused chain (x2)."""
        return [(self.conv1, self.bn1, self.relu), (self.conv2, self.bn2, self.relu)]


class UNet(nn.Module):
    """UNet for mask-to-resist image translation."""

    def __init__(
        self,
        base_channels: int = 8,
        depth: int = 3,
        in_channels: int = 1,
        out_channels: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = depth
        rng = np.random.default_rng(seed)

        channels = [base_channels * (2**i) for i in range(depth + 1)]
        self.encoders = []
        self.pools = []
        prev = in_channels
        for i in range(depth):
            encoder = _DoubleConv(prev, channels[i], rng=rng)
            setattr(self, f"enc{i}", encoder)
            self.encoders.append(encoder)
            pool = nn.MaxPool2d(2)
            setattr(self, f"pool{i}", pool)
            self.pools.append(pool)
            prev = channels[i]

        self.bottleneck = _DoubleConv(prev, channels[depth], rng=rng)

        self.upconvs = []
        self.decoders = []
        prev = channels[depth]
        for i in reversed(range(depth)):
            upconv = nn.ConvTranspose2d(prev, channels[i], 2, stride=2, padding=0, rng=rng)
            setattr(self, f"up{i}", upconv)
            self.upconvs.append(upconv)
            decoder = _DoubleConv(channels[i] * 2, channels[i], rng=rng)
            setattr(self, f"dec{i}", decoder)
            self.decoders.append(decoder)
            prev = channels[i]

        self.head = nn.Conv2d(prev, out_channels, 1, rng=rng)
        self.tanh = nn.Tanh()

    def forward(self, x: Tensor) -> Tensor:
        skips = []
        for encoder, pool in zip(self.encoders, self.pools):
            x = encoder(x)
            skips.append(x)
            x = pool(x)
        x = self._bottleneck_up(x)
        for i, (upconv, decoder, skip) in enumerate(zip(self.upconvs, self.decoders, reversed(skips))):
            if i:
                x = upconv(x)
            x = decoder(Tensor.cat([x, skip], axis=1))
        return self._head(x)

    def _bottleneck_up(self, x: Tensor) -> Tensor:
        """Bottleneck double conv + the first up-path transposed conv.

        The only decoder link with no skip concatenation in the middle, so it
        is a straight-line ``conv -> conv -> deconv`` fusible chain; the
        remaining up-path deconvs sit between concatenations and compile
        standalone via ``ConvTranspose2d.fusible_chain()``.
        """
        return getattr(self, f"up{self.depth - 1}")(self.bottleneck(x))

    def _head(self, x: Tensor) -> Tensor:
        return self.tanh(self.head(x))

    def fusion_rewrites(self):
        """Fuse the bottleneck->first-up chain and the 1x1 tanh output head."""
        bottleneck = self.bottleneck
        first_up = getattr(self, f"up{self.depth - 1}")
        return {
            "_bottleneck_up": [
                (bottleneck.conv1, bottleneck.bn1, bottleneck.relu),
                (bottleneck.conv2, bottleneck.bn2, bottleneck.relu),
                (first_up, None, None),
            ],
            "_head": [(self.head, None, self.tanh)],
        }

    def fusion_refresh(self) -> None:
        """Rebuild the cached encoder/decoder lists after chain rewriting."""
        self.encoders = [getattr(self, f"enc{i}") for i in range(self.depth)]
        self.pools = [getattr(self, f"pool{i}") for i in range(self.depth)]
        self.upconvs = [getattr(self, f"up{i}") for i in reversed(range(self.depth))]
        self.decoders = [getattr(self, f"dec{i}") for i in reversed(range(self.depth))]

    def predict(self, masks: np.ndarray, batch_size: int = 8) -> np.ndarray:
        """Inference helper mirroring :meth:`repro.core.doinn.DOINN.predict`."""
        outputs = []
        with nn.eval_mode(self), nn.no_grad():
            for start in range(0, masks.shape[0], batch_size):
                outputs.append(self.forward(Tensor(masks[start : start + batch_size])).numpy())
        return np.concatenate(outputs, axis=0)
